"""Mergeable sufficient statistics for streaming and sharded audits.

Every battery metric (demographic parity, equal opportunity, equalized
odds, the conditional variants, disparate impact, the power notes, the
significance tests) is a function of *joint contingency counts*: how
many rows fall in each cell of (protected values × stratum × label ×
prediction).  Counts are additive, so an :class:`AuditAccumulator` that
maintains them can ingest data chunk by chunk, :meth:`merge` with
accumulators built on other chunks, processes, or shards, and
serialise/restore its state as JSON — and the audit computed from the
merged counts is *exactly* the audit of the concatenated data.

:meth:`materialize` reconstructs a canonical dataset (one run of rows
per cell, cells in deterministic repr-sorted order) whose audit report
is byte-identical to the in-memory :class:`~repro.core.audit.FairnessAudit`
on the original rows, because every battery statistic is
row-order-invariant: group rates are exact integer ratios, binary means
are integer sums over counts, and the z-tests/power notes read only
group counts.  The one battery member outside the counts model is
``calibration_within_groups`` (it needs continuous scores); streaming
audits skip it exactly as an in-memory audit without ``probabilities``
does.

State files are written through the robustness layer's atomic
checkpoint writer and carry a fingerprint of the accumulator layout, so
a stream interrupted mid-ingest resumes from its last checkpoint and
state written under a different layout is refused.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.data.dataset import TabularDataset
from repro.data.schema import Column, ColumnKind, ColumnRole, Schema
from repro.exceptions import AuditError, CheckpointError
from repro.observability.metrics import get_metrics
from repro.robustness.checkpoint import load_checkpoint, save_checkpoint

__all__ = ["AuditAccumulator"]

#: accumulator state format version (bumped on layout changes)
STATE_VERSION = 1


def _scalar(value):
    """Numpy scalar → plain Python (cell keys must hash and JSON-encode)."""
    return value.item() if hasattr(value, "item") else value


class AuditAccumulator:
    """Additive audit state over ``(y_true, predictions, protected)`` chunks.

    Parameters
    ----------
    protected:
        Ordered protected-attribute names; the order fixes the audit's
        attribute iteration (match the source schema's order to get
        byte-identical reports).
    strata:
        Optional legitimate conditioning column tracked alongside the
        protected values (enables the conditional metrics downstream).
    label:
        Name of the ground-truth column in the reconstructed dataset;
        ``None`` for streams that carry predictions but no labels.
    audits_labels:
        ``True`` for a *data audit* — the stream carries labels only and
        the audit evaluates them directly (chunks must not pass
        ``predictions``).

    Examples
    --------
    >>> acc = AuditAccumulator(["sex"], label="hired")
    >>> acc.ingest(y_true=[1, 0], predictions=[1, 1],
    ...            protected={"sex": ["f", "m"]})
    2
    >>> acc.n_rows
    2
    """

    def __init__(
        self,
        protected,
        *,
        strata: str | None = None,
        label: str | None = "outcome",
        audits_labels: bool = False,
    ):
        self.protected = tuple(protected)
        if not self.protected:
            raise AuditError("accumulator requires protected attributes")
        self.strata = strata
        self.label = label
        self.audits_labels = bool(audits_labels)
        if self.audits_labels and self.label is None:
            raise AuditError("a data audit (audits_labels) requires a label")
        self._cells: dict[tuple, int] = {}
        self.n_rows = 0
        self.chunks_ingested = 0

    # -- layout --------------------------------------------------------------

    @property
    def _dims(self) -> tuple[str, ...]:
        """Cell-key axes, in order: protected, strata, label, prediction."""
        dims = list(self.protected)
        if self.strata is not None:
            dims.append("__strata__")
        if self.label is not None:
            dims.append("__label__")
        if not self.audits_labels:
            dims.append("__prediction__")
        return tuple(dims)

    def layout(self) -> dict:
        """The identity of this accumulator's cell space."""
        return {
            "protected": list(self.protected),
            "strata": self.strata,
            "label": self.label,
            "audits_labels": self.audits_labels,
        }

    def fingerprint(self) -> str:
        """sha256 of the layout — merge/resume compatibility key."""
        return hashlib.sha256(
            json.dumps(self.layout(), sort_keys=True).encode()
        ).hexdigest()

    # -- ingest --------------------------------------------------------------

    def ingest(
        self, y_true=None, predictions=None, protected=None, strata=None
    ) -> int:
        """Add one chunk of aligned arrays; returns the rows ingested.

        ``protected`` maps each configured attribute name to its values;
        ``y_true``/``predictions``/``strata`` follow the accumulator's
        layout (a data audit takes ``y_true`` only; a label-free stream
        takes ``predictions`` only).
        """
        if protected is None:
            raise AuditError("ingest requires the protected value arrays")
        columns: list[np.ndarray] = []
        for name in self.protected:
            if name not in protected:
                raise AuditError(f"chunk is missing protected column {name!r}")
            columns.append(np.asarray(protected[name]))
        if self.strata is not None:
            if strata is None:
                raise AuditError(
                    f"accumulator tracks strata {self.strata!r} but the "
                    "chunk passed none"
                )
            columns.append(np.asarray(strata))
        elif strata is not None:
            raise AuditError("accumulator tracks no strata column")
        if self.label is not None:
            if y_true is None:
                raise AuditError("accumulator tracks labels; pass y_true")
            columns.append(np.asarray(y_true))
        elif y_true is not None:
            raise AuditError("accumulator tracks no label column")
        if self.audits_labels:
            if predictions is not None:
                raise AuditError(
                    "a data audit evaluates the labels themselves; "
                    "do not pass predictions"
                )
        else:
            if predictions is None:
                raise AuditError("pass the predictions to audit")
            columns.append(np.asarray(predictions))

        n = len(columns[0])
        for arr in columns:
            if arr.ndim != 1 or len(arr) != n:
                raise AuditError(
                    "chunk arrays must be 1-D and share one length"
                )
        if n == 0:
            return 0
        with get_metrics().timer("streaming.chunk_ingest"):
            self._count(columns, n)
        self.n_rows += n
        self.chunks_ingested += 1
        metrics = get_metrics()
        metrics.counter("streaming.chunks_ingested").inc()
        metrics.counter("streaming.rows_ingested").inc(n)
        return n

    def ingest_dataset(self, chunk: TabularDataset, predictions=None) -> int:
        """Ingest one :class:`~repro.data.dataset.TabularDataset` chunk.

        Columns are pulled by the accumulator's configured names; for a
        model audit ``predictions`` is the aligned binary array (or
        ``None`` for a data audit).
        """
        return self.ingest(
            y_true=(
                chunk.column(self.label) if self.label is not None else None
            ),
            predictions=predictions,
            protected={name: chunk.column(name) for name in self.protected},
            strata=(
                chunk.column(self.strata)
                if self.strata is not None
                else None
            ),
        )

    def ingest_counts(self, items) -> int:
        """Fold pre-aggregated ``(cell_key, count)`` pairs; returns rows.

        The monitoring fleet's fast path: chunks are encoded once into
        joint-contingency code space (:func:`repro.kernel.codes.encode`
        over fleet-persistent category tables +
        :func:`repro.kernel.contingency.combined_codes` + one bincount)
        and the resulting sparse cells land here without any per-row
        Python work.  Cell keys must be tuples of plain Python scalars
        in this accumulator's :attr:`_dims` order — exactly what
        :meth:`ingest` would have produced for the same rows, so counts
        folded through either path are interchangeable.
        """
        total = 0
        cells = self._cells
        for key, count in items:
            count = int(count)
            if count < 0:
                raise AuditError(
                    f"cell {key!r} has negative count {count}"
                )
            if count:
                cells[key] = cells.get(key, 0) + count
                total += count
        self.n_rows += total
        self.chunks_ingested += 1
        metrics = get_metrics()
        metrics.counter("streaming.chunks_ingested").inc()
        metrics.counter("streaming.rows_ingested").inc(total)
        return total

    def copy(self) -> "AuditAccumulator":
        """An independent accumulator with identical counts.

        Cell values are ints, so a shallow dict copy is a full copy;
        the fleet uses this to pin each stream's window-base state
        before computing the next :meth:`diff`.
        """
        clone = AuditAccumulator(
            self.protected,
            strata=self.strata,
            label=self.label,
            audits_labels=self.audits_labels,
        )
        clone.restore(self.snapshot())
        return clone

    def snapshot(self) -> tuple:
        """The mutable counting state, cheaply copied.

        Supervised ingest takes one before each attempt so a retry after
        an error that escaped mid-count (cells partially incremented)
        starts from exact pre-attempt state instead of double-counting.
        Cell values are ints, so a shallow dict copy is a full copy.
        """
        return dict(self._cells), self.n_rows, self.chunks_ingested

    def restore(self, state: tuple) -> None:
        """Reset the counting state to a :meth:`snapshot`."""
        cells, n_rows, chunks_ingested = state
        self._cells = dict(cells)
        self.n_rows = n_rows
        self.chunks_ingested = chunks_ingested

    def _count(self, columns: list[np.ndarray], n: int) -> None:
        """One bincount over the chunk's joint codes → cell increments."""
        uniques: list[np.ndarray] = []
        code = np.zeros(n, dtype=np.int64)
        for arr in columns:
            u, inverse = np.unique(arr, return_inverse=True)
            uniques.append(u)
            code = code * len(u) + inverse
        sizes = tuple(len(u) for u in uniques)
        counts = np.bincount(code, minlength=int(np.prod(sizes)))
        nonzero = np.flatnonzero(counts)
        indices = np.unravel_index(nonzero, sizes)
        cells = self._cells
        for position, flat in enumerate(nonzero):
            key = tuple(
                _scalar(u[axis[position]])
                for u, axis in zip(uniques, indices)
            )
            cells[key] = cells.get(key, 0) + int(counts[flat])

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "AuditAccumulator") -> "AuditAccumulator":
        """Fold another accumulator's counts into this one (in place).

        The two must share a layout — same protected attributes in the
        same order, same strata/label configuration; shard-local
        accumulators built from one stream config always do.
        """
        if not isinstance(other, AuditAccumulator):
            raise AuditError(
                f"cannot merge {type(other).__name__} into an accumulator"
            )
        if self.layout() != other.layout():
            raise AuditError(
                "cannot merge accumulators with different layouts: "
                f"{self.layout()} vs {other.layout()}"
            )
        for key, count in other._cells.items():
            self._cells[key] = self._cells.get(key, 0) + count
        self.n_rows += other.n_rows
        self.chunks_ingested += other.chunks_ingested
        get_metrics().counter("streaming.merges").inc()
        return self

    def diff(self, base: "AuditAccumulator") -> "AuditAccumulator":
        """The cell-wise delta that grew ``base`` into this accumulator.

        Returns a fresh accumulator with ``result.merge(base) == self``
        in counts — the inverse of :meth:`merge`, and the input the
        incremental subgroup scan (:func:`repro.subgroup.search.rescan`)
        re-scores from.  Requires ``base`` to be a true predecessor:
        same layout, and no cell where ``base`` counts more than
        ``self`` (append-only growth).  Anything else raises
        :class:`~repro.exceptions.AuditError` rather than returning a
        negative count.
        """
        if not isinstance(base, AuditAccumulator):
            raise AuditError(
                f"cannot diff an accumulator against {type(base).__name__}"
            )
        if self.layout() != base.layout():
            raise AuditError(
                "cannot diff accumulators with different layouts: "
                f"{self.layout()} vs {base.layout()}"
            )
        if base.n_rows > self.n_rows:
            raise AuditError(
                f"diff base has {base.n_rows} rows but this accumulator "
                f"has {self.n_rows}; the base must be a prefix"
            )
        delta = AuditAccumulator(
            self.protected,
            strata=self.strata,
            label=self.label,
            audits_labels=self.audits_labels,
        )
        for key, count in self._cells.items():
            remaining = count - base._cells.get(key, 0)
            if remaining < 0:
                raise AuditError(
                    f"diff base counts {base._cells[key]} in cell {key!r} "
                    f"but this accumulator has only {count}; the base is "
                    "not a prefix of this state"
                )
            if remaining:
                delta._cells[key] = remaining
        missing = [key for key in base._cells if key not in self._cells]
        if missing:
            raise AuditError(
                f"diff base has cells absent from this accumulator "
                f"(e.g. {missing[0]!r}); the base is not a prefix"
            )
        delta.n_rows = self.n_rows - base.n_rows
        delta.chunks_ingested = max(
            self.chunks_ingested - base.chunks_ingested, 0
        )
        return delta

    @classmethod
    def merge_all(cls, accumulators) -> "AuditAccumulator":
        """Merge shard accumulators into one fresh accumulator."""
        accumulators = list(accumulators)
        if not accumulators:
            raise AuditError("merge_all requires at least one accumulator")
        first = accumulators[0]
        merged = cls(
            first.protected,
            strata=first.strata,
            label=first.label,
            audits_labels=first.audits_labels,
        )
        for accumulator in accumulators:
            merged.merge(accumulator)
        return merged

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able state: layout + cells, deterministically ordered."""
        return {
            "version": STATE_VERSION,
            **self.layout(),
            "n_rows": self.n_rows,
            "chunks_ingested": self.chunks_ingested,
            "cells": [
                [list(key), count] for key, count in self._sorted_cells()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditAccumulator":
        """Rebuild an accumulator serialised with :meth:`to_dict`."""
        version = payload.get("version")
        if version != STATE_VERSION:
            raise AuditError(
                f"accumulator state has version {version!r}; this build "
                f"reads {STATE_VERSION}"
            )
        accumulator = cls(
            payload["protected"],
            strata=payload.get("strata"),
            label=payload.get("label"),
            audits_labels=payload.get("audits_labels", False),
        )
        for key, count in payload["cells"]:
            accumulator._cells[tuple(key)] = int(count)
        accumulator.n_rows = int(payload["n_rows"])
        accumulator.chunks_ingested = int(payload.get("chunks_ingested", 0))
        return accumulator

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AuditAccumulator":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Atomically persist state (checkpoint envelope + fingerprint)."""
        save_checkpoint(path, self.to_dict(), fingerprint=self.fingerprint())

    @classmethod
    def load(cls, path, *, expected: "AuditAccumulator | None" = None):
        """Load state saved with :meth:`save`.

        ``expected`` (an accumulator with the required layout) turns on
        fingerprint verification: state written under any other layout
        raises :class:`~repro.exceptions.CheckpointError`.

        Every corruption mode — truncated or garbled JSON, a valid
        checkpoint envelope whose payload is not accumulator state — is
        reported as a :class:`~repro.exceptions.CheckpointError` carrying
        the path and the underlying cause, never a raw ``json`` or
        ``KeyError``.
        """
        fingerprint = None if expected is None else expected.fingerprint()
        payload = load_checkpoint(path, fingerprint)
        try:
            return cls.from_dict(payload)
        except (AuditError, KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"accumulator state {path} has the wrong layout: "
                f"{type(exc).__name__}: {exc}",
                path=path,
            ) from exc

    # -- reconstruction ------------------------------------------------------

    def _sorted_cells(self):
        """Cells in deterministic repr order (process-independent)."""
        return sorted(
            self._cells.items(),
            key=lambda item: tuple(repr(v) for v in item[0]),
        )

    def materialize(self) -> tuple[TabularDataset, np.ndarray | None]:
        """Reconstruct ``(dataset, predictions)`` from the counts.

        The dataset has one run of identical rows per cell, cells in
        repr-sorted order; ``predictions`` is the aligned binary array
        (``None`` for a data audit, where the audit reads the labels).
        Every battery statistic of this reconstruction equals the
        statistic of the original concatenated stream.
        """
        if self.n_rows == 0:
            raise AuditError("accumulator is empty; ingest chunks first")
        dims = self._dims
        cells = self._sorted_cells()
        counts = np.asarray([count for _key, count in cells])
        # one np.repeat per dimension over the per-cell value list — the
        # reconstruction costs O(n_rows) array bytes, never O(n_rows)
        # Python objects (a list-of-objects build is a ~10x memory
        # amplification that breaks out-of-core finalisation).
        columns = {
            name: np.repeat(
                np.asarray([key[axis] for key, _count in cells]), counts
            )
            for axis, name in enumerate(dims)
        }

        def cell_values(name):
            return [key[dims.index(name)] for key, _count in cells]

        schema_columns = []
        data = {}
        for name in self.protected:
            categories = sorted(set(cell_values(name)), key=repr)
            schema_columns.append(
                Column(
                    name,
                    kind=ColumnKind.CATEGORICAL,
                    role=ColumnRole.PROTECTED,
                    categories=tuple(categories),
                )
            )
            data[name] = columns[name]
        if self.strata is not None:
            schema_columns.append(
                Column(
                    self.strata,
                    kind=ColumnKind.CATEGORICAL,
                    role=ColumnRole.FEATURE,
                    categories=tuple(
                        sorted(set(cell_values("__strata__")), key=repr)
                    ),
                )
            )
            data[self.strata] = columns["__strata__"]
        if self.label is not None:
            schema_columns.append(
                Column(
                    self.label, kind=ColumnKind.BINARY, role=ColumnRole.LABEL
                )
            )
            data[self.label] = columns["__label__"]
        dataset = TabularDataset(Schema(tuple(schema_columns)), data)
        predictions = (
            None if self.audits_labels else columns["__prediction__"]
        )
        return dataset, predictions

    def __repr__(self) -> str:
        return (
            f"AuditAccumulator(protected={list(self.protected)}, "
            f"strata={self.strata!r}, n_rows={self.n_rows}, "
            f"cells={len(self._cells)}, chunks={self.chunks_ingested})"
        )
