"""Streaming, sharded, and continuous fairness audits.

Exact chunked auditing (Sections IV.E/IV.F of the operational reading):
:class:`AuditAccumulator` maintains additive joint contingency counts,
:func:`audit_stream` turns a chunk iterable into an
:class:`~repro.core.audit.AuditReport` byte-identical to the in-memory
audit of the concatenated data, and :class:`FairnessMonitor` watches a
live prediction stream for metric drift.
"""

from repro.streaming.accumulator import AuditAccumulator
from repro.streaming.monitor import DriftEvent, FairnessMonitor, WindowResult
from repro.streaming.stream import (
    accumulator_for,
    audit_stream,
    finalize,
    ingest_stream,
    merge_states,
)

__all__ = [
    "AuditAccumulator",
    "DriftEvent",
    "FairnessMonitor",
    "WindowResult",
    "accumulator_for",
    "audit_stream",
    "finalize",
    "ingest_stream",
    "merge_states",
]
