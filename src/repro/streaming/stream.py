"""Chunked audit execution: ``audit_stream`` and shard-state merging.

``audit_stream`` folds an iterable of dataset chunks into an
:class:`~repro.streaming.accumulator.AuditAccumulator` and finalises it
into an :class:`~repro.core.audit.AuditReport`.  Because the
accumulator keeps exact joint counts, the report — markdown and
``report_to_dict`` alike — is byte-identical to an in-memory
:class:`~repro.core.audit.FairnessAudit` over the concatenated chunks
(modulo the provenance section, which records each run's own wall-clock
timings).

Checkpointing rides the robustness layer: pass ``checkpoint=`` and the
accumulator state is written atomically every ``checkpoint_every``
chunks, tagged with the accumulator's layout fingerprint; rerunning
with ``resume=True`` loads the state and skips the chunks it already
counted, so an interrupted stream completes without re-reading its
prefix.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.audit import AuditReport, FairnessAudit
from repro.core.config import AuditConfig
from repro.data.dataset import TabularDataset
from repro.exceptions import AuditError, RetryExhaustedError
from repro.observability.metrics import get_metrics
from repro.observability.trace import get_tracer
from repro.streaming.accumulator import AuditAccumulator

__all__ = [
    "accumulator_for",
    "audit_stream",
    "finalize",
    "ingest_stream",
    "merge_states",
]


def accumulator_for(
    dataset: TabularDataset,
    *,
    strata: str | None = None,
    audits_labels: bool = False,
) -> AuditAccumulator:
    """An empty accumulator matching a dataset's schema.

    Protected attributes are taken in schema order (the order
    :class:`~repro.core.audit.FairnessAudit` iterates them, which is
    what makes streamed reports byte-identical to in-memory ones).
    """
    protected = dataset.schema.protected_names
    if not protected:
        raise AuditError("dataset declares no protected attributes")
    if strata is not None and strata not in dataset.schema.names():
        raise AuditError(f"strata column {strata!r} is not in the dataset")
    return AuditAccumulator(
        protected,
        strata=strata,
        label=dataset.schema.label_name,
        audits_labels=audits_labels,
    )


def _split_chunk(chunk):
    """Normalise one stream element to ``(dataset, predictions | None)``."""
    if isinstance(chunk, TabularDataset):
        return chunk, None
    if isinstance(chunk, (tuple, list)) and len(chunk) == 2:
        dataset, predictions = chunk
        if isinstance(dataset, TabularDataset):
            return dataset, (
                None if predictions is None else np.asarray(predictions)
            )
    raise AuditError(
        "stream chunks must be TabularDataset or (TabularDataset, "
        f"predictions) pairs, got {type(chunk).__name__}"
    )


def _ingest_supervised(
    accumulator: AuditAccumulator,
    dataset: TabularDataset,
    predictions,
    index: int,
    config: AuditConfig,
    span,
) -> None:
    """Count one chunk under the config's faults + retry policy.

    Every attempt starts from a snapshot of the accumulator's counting
    state, restored on any error — so a retry never double-counts rows,
    whether the failure was an injected fault (fired before ingest) or
    an error escaping mid-count after cells were partially incremented.
    Retries follow ``config.policy`` exactly as a supervised stage
    would; exhaustion raises
    :class:`~repro.exceptions.RetryExhaustedError` because an audit must
    not silently drop a chunk of its evidence.
    """
    stage = f"streaming.chunk:{index}"
    policy = config.policy
    faults = config.faults
    if faults is None and (policy is None or policy.max_retries == 0):
        accumulator.ingest_dataset(dataset, predictions)
        return
    attempts = 0
    before = accumulator.snapshot()
    while True:
        attempts += 1
        try:
            if faults is not None:
                faults.fire(stage)
            accumulator.ingest_dataset(dataset, predictions)
            return
        except Exception as exc:  # noqa: BLE001 — classified just below
            accumulator.restore(before)
            retryable = policy is not None and policy.is_retryable(exc)
            if retryable and attempts <= policy.max_retries:
                backoff = policy.backoff(attempts - 1)
                span.event(
                    "retry", attempt=attempts,
                    error_type=type(exc).__name__, backoff=backoff,
                )
                get_metrics().counter("streaming.chunk_retries").inc()
                policy.sleep(backoff)
                continue
            if retryable and policy.max_retries > 0:
                raise RetryExhaustedError(
                    f"chunk {index} still failing after {attempts} "
                    f"attempts: {exc}",
                    stage=stage, attempts=attempts, last_error=exc,
                ) from exc
            raise


def ingest_stream(
    chunks,
    config: AuditConfig | None = None,
    *,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume: bool = False,
) -> AuditAccumulator:
    """Fold a chunk iterable into an accumulator (no finalisation).

    The building block under :func:`audit_stream`, exposed for sharded
    pipelines that want to ship accumulator state around instead of
    reports.

    Chunk ingest runs supervised: ``config.faults`` (the chaos hook)
    fires at stage ``streaming.chunk:<index>`` before each chunk is
    counted, and transient errors — an injected fault, a flaky chunk
    source — are retried with backoff per ``config.policy``.  A fault
    that outlives the retry budget raises
    :class:`~repro.exceptions.RetryExhaustedError`: unlike a failed
    metric stage, a dropped chunk would silently change the evidence the
    audit rests on, so ingest is fail-closed by construction.
    """
    if config is None:
        config = AuditConfig()
    if checkpoint_every < 1:
        raise AuditError("checkpoint_every must be >= 1")
    tracer = config.tracer if config.tracer is not None else get_tracer()
    accumulator: AuditAccumulator | None = None
    skip = 0
    with tracer.span(
        "streaming.ingest", resume=resume, checkpointed=checkpoint is not None
    ):
        for index, chunk in enumerate(chunks):
            dataset, predictions = _split_chunk(chunk)
            if accumulator is None:
                accumulator = accumulator_for(
                    dataset,
                    strata=config.strata,
                    audits_labels=predictions is None,
                )
                if (
                    resume
                    and checkpoint is not None
                    and os.path.exists(checkpoint)
                ):
                    accumulator = AuditAccumulator.load(
                        checkpoint, expected=accumulator
                    )
                    skip = accumulator.chunks_ingested
            if index < skip:
                continue
            with tracer.span(
                "streaming.chunk", index=index, rows=dataset.n_rows
            ) as chunk_span:
                _ingest_supervised(
                    accumulator, dataset, predictions, index, config,
                    chunk_span,
                )
            if (
                checkpoint is not None
                and accumulator.chunks_ingested % checkpoint_every == 0
            ):
                accumulator.save(checkpoint)
    if accumulator is None:
        raise AuditError("the chunk stream was empty")
    if checkpoint is not None:
        accumulator.save(checkpoint)
    return accumulator


def finalize(
    accumulator: AuditAccumulator,
    config: AuditConfig | None = None,
) -> AuditReport:
    """Audit an accumulator's counts into a full :class:`AuditReport`.

    Reconstructs the canonical dataset and runs the standard battery
    under ``config`` — identical verdicts, findings, significance tests,
    and power notes to an in-memory audit of the stream's rows.
    """
    if config is None:
        config = AuditConfig()
    if config.strata != accumulator.strata:
        raise AuditError(
            f"config strata {config.strata!r} does not match the "
            f"accumulator's tracked strata {accumulator.strata!r}"
        )
    dataset, predictions = accumulator.materialize()
    audit = FairnessAudit(dataset, predictions=predictions, config=config)
    return audit.run()


def audit_stream(
    chunks,
    config: AuditConfig | None = None,
    *,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume: bool = False,
) -> AuditReport:
    """Audit an iterable of chunks exactly as one in-memory pass would.

    Parameters
    ----------
    chunks:
        Iterable of :class:`~repro.data.dataset.TabularDataset` chunks
        (data audit) or ``(dataset, predictions)`` pairs (model audit).
        All chunks must share a schema.
    config:
        The same :class:`~repro.core.config.AuditConfig` an in-memory
        audit would take; ``config.strata`` selects the conditioning
        column tracked through the stream.
    checkpoint / checkpoint_every / resume:
        Optional state file written atomically every N chunks;
        ``resume=True`` loads it and skips the already-counted prefix.
    """
    accumulator = ingest_stream(
        chunks,
        config,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
    )
    return finalize(accumulator, config)


def merge_states(paths) -> AuditAccumulator:
    """Merge accumulator state files from parallel shards into one.

    Layout compatibility is enforced by :meth:`AuditAccumulator.merge`;
    the merged accumulator audits identically to a single pass over the
    union of the shards' rows.
    """
    paths = list(paths)
    if not paths:
        raise AuditError("merge_states requires at least one state file")
    shards = [AuditAccumulator.load(path) for path in paths]
    return AuditAccumulator.merge_all(shards)
