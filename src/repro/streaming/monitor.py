"""Windowed fairness monitoring and drift detection (Section IV.E).

The paper's Section IV.E argues that a fairness verdict is evidence
about a *moment*: models drift as the population, the product, and the
decision process drift, so compliance requires re-measurement over
time, not a one-off certificate.  :class:`FairnessMonitor` operationalises
that: it buffers an ongoing prediction stream, closes fixed-size
windows, audits each window with the same battery as an offline audit
(one :class:`~repro.streaming.accumulator.AuditAccumulator` per
window), and flags *drift* — a window whose metric gap moved more than
``drift_threshold`` away from the running baseline of previous windows.

A drift event is not automatically a violation (each window's own
verdicts are reported separately); it is the trigger the paper asks
for: the signal that yesterday's audit no longer describes today's
system and a full re-audit is due.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AuditConfig
from repro.exceptions import AuditError
from repro.observability.metrics import get_metrics
from repro.observability.trace import get_tracer
from repro.streaming.accumulator import AuditAccumulator

__all__ = ["DriftEvent", "FairnessMonitor", "WindowResult"]


@dataclass(frozen=True)
class DriftEvent:
    """One metric whose gap moved beyond the drift threshold."""

    window: int
    attribute: str
    metric: str
    value: float
    baseline: float
    delta: float

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "attribute": self.attribute,
            "metric": self.metric,
            "value": round(self.value, 6),
            "baseline": round(self.baseline, 6),
            "delta": round(self.delta, 6),
        }


@dataclass(frozen=True)
class WindowResult:
    """The audit of one closed window of the stream."""

    index: int
    start_row: int
    end_row: int
    gaps: dict = field(default_factory=dict)
    violations: tuple = ()
    drift: tuple = ()

    @property
    def n_rows(self) -> int:
        return self.end_row - self.start_row

    @property
    def drifted(self) -> bool:
        return bool(self.drift)

    def to_dict(self) -> dict:
        return {
            "window": self.index,
            "rows": [self.start_row, self.end_row],
            "gaps": {key: round(gap, 6) for key, gap in self.gaps.items()},
            "violations": list(self.violations),
            "drift": [event.to_dict() for event in self.drift],
        }


class FairnessMonitor:
    """Sliding-window fairness drift monitor over a prediction stream.

    Parameters
    ----------
    protected:
        Ordered protected-attribute names to monitor.
    config:
        Audit configuration for each window's battery run (tolerance,
        metric subset, strata, …); window audits and offline audits
        share one config type by design.
    window:
        Rows per evaluation window.
    drift_threshold:
        Absolute change in a metric's gap, relative to the running
        baseline (mean of that metric's gap over previous windows),
        that raises a :class:`DriftEvent`.
    label / audits_labels:
        As on :class:`~repro.streaming.accumulator.AuditAccumulator`.
    name:
        Stream label attached to the ``monitor.drift`` events this
        monitor publishes on the observability event bus — how a
        monitoring fleet tells its streams apart in one merged feed.

    Examples
    --------
    >>> monitor = FairnessMonitor(["sex"], window=200)
    >>> results = monitor.observe(y_true=y, predictions=p,
    ...                           protected={"sex": sex})
    >>> any(window.drifted for window in results)  # doctest: +SKIP
    """

    def __init__(
        self,
        protected,
        *,
        config: AuditConfig | None = None,
        window: int = 500,
        drift_threshold: float = 0.1,
        label: str | None = "outcome",
        audits_labels: bool = False,
        name: str = "default",
    ):
        if window < 1:
            raise AuditError("window must be >= 1")
        if not 0 < drift_threshold <= 1:
            raise AuditError("drift_threshold must be in (0, 1]")
        self.name = str(name)
        self.protected = tuple(protected)
        self.config = config if config is not None else AuditConfig()
        self.window = int(window)
        self.drift_threshold = float(drift_threshold)
        self.label = label
        self.audits_labels = bool(audits_labels)
        self.windows: list[WindowResult] = []
        self.drift_events: list[DriftEvent] = []
        self._gap_history: dict[str, list[float]] = {}
        self._rows_seen = 0
        self._buffer: dict[str, list] = {}

    # -- ingestion -----------------------------------------------------------

    def observe(
        self, y_true=None, predictions=None, protected=None, strata=None
    ) -> list[WindowResult]:
        """Buffer aligned arrays; audit and return any windows they close."""
        if protected is None:
            raise AuditError("observe requires the protected value arrays")
        columns: dict[str, np.ndarray] = {}
        for name in self.protected:
            if name not in protected:
                raise AuditError(f"missing protected column {name!r}")
            columns[name] = np.asarray(protected[name])
        if self.config.strata is not None:
            if strata is None:
                raise AuditError(
                    f"monitor tracks strata {self.config.strata!r}; "
                    "pass the strata array"
                )
            columns["__strata__"] = np.asarray(strata)
        if self.label is not None:
            if y_true is None:
                raise AuditError("monitor tracks labels; pass y_true")
            columns["__label__"] = np.asarray(y_true)
        if not self.audits_labels:
            if predictions is None:
                raise AuditError("pass the predictions to monitor")
            columns["__prediction__"] = np.asarray(predictions)

        lengths = {len(arr) for arr in columns.values()}
        if len(lengths) != 1:
            raise AuditError("observed arrays must share one length")
        for name, arr in columns.items():
            self._buffer.setdefault(name, []).extend(arr.tolist())

        closed: list[WindowResult] = []
        while self._buffered_rows() >= self.window:
            closed.append(self._close_window(self.window))
        return closed

    def flush(self) -> WindowResult | None:
        """Audit whatever partial window remains in the buffer."""
        remaining = self._buffered_rows()
        if remaining == 0:
            return None
        return self._close_window(remaining)

    def _buffered_rows(self) -> int:
        return len(next(iter(self._buffer.values()), []))

    # -- evaluation ----------------------------------------------------------

    def _close_window(self, size: int) -> WindowResult:
        taken = {
            name: values[:size] for name, values in self._buffer.items()
        }
        self._buffer = {
            name: values[size:] for name, values in self._buffer.items()
        }
        start = self._rows_seen
        self._rows_seen += size
        index = len(self.windows)

        tracer = (
            self.config.tracer
            if self.config.tracer is not None
            else get_tracer()
        )
        with tracer.span("streaming.window", index=index, rows=size):
            gaps, violations = self._audit_window(taken)
            drift = self._detect_drift(index, gaps)
        result = WindowResult(
            index=index,
            start_row=start,
            end_row=self._rows_seen,
            gaps=gaps,
            violations=violations,
            drift=drift,
        )
        self.windows.append(result)
        self.drift_events.extend(drift)
        metrics = get_metrics()
        metrics.counter("streaming.windows_evaluated").inc()
        if drift:
            metrics.counter("streaming.drift_events").inc(len(drift))
            from repro.observability.events import get_event_bus

            bus = get_event_bus()
            for event in drift:
                bus.publish(
                    "monitor.drift",
                    stream=self.name,
                    rows=[start, self._rows_seen],
                    **event.to_dict(),
                )
        return result

    def _audit_window(self, taken: dict) -> tuple[dict, tuple]:
        from repro.streaming.stream import finalize

        accumulator = AuditAccumulator(
            self.protected,
            strata=self.config.strata,
            label=self.label,
            audits_labels=self.audits_labels,
        )
        accumulator.ingest(
            y_true=taken.get("__label__"),
            predictions=taken.get("__prediction__"),
            protected={name: taken[name] for name in self.protected},
            strata=taken.get("__strata__"),
        )
        report = finalize(accumulator, self.config)
        gaps: dict[str, float] = {}
        violations: list[str] = []
        for finding in report.findings:
            if finding.result is None:
                continue
            key = f"{finding.attribute}/{finding.metric}"
            gaps[key] = float(finding.result.gap)
            if finding.status == "violation":
                violations.append(key)
        return gaps, tuple(violations)

    def _detect_drift(self, index: int, gaps: dict) -> tuple:
        events = []
        for key, gap in gaps.items():
            history = self._gap_history.setdefault(key, [])
            if history:
                baseline = float(np.mean(history))
                delta = gap - baseline
                if abs(delta) > self.drift_threshold:
                    attribute, metric = key.split("/", 1)
                    events.append(
                        DriftEvent(
                            window=index,
                            attribute=attribute,
                            metric=metric,
                            value=gap,
                            baseline=baseline,
                            delta=delta,
                        )
                    )
            history.append(gap)
        return tuple(events)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """JSON-able digest of the monitoring session so far."""
        return {
            "windows": len(self.windows),
            "rows_seen": self._rows_seen,
            "window_size": self.window,
            "drift_threshold": self.drift_threshold,
            "drift_events": [event.to_dict() for event in self.drift_events],
            "results": [window.to_dict() for window in self.windows],
        }

    def markdown(self) -> str:
        """A short monitoring report (Section IV.E evidence trail)."""
        lines = [
            "# Fairness monitoring report",
            "",
            f"- windows evaluated: {len(self.windows)} "
            f"({self._rows_seen} rows, window size {self.window})",
            f"- drift threshold: {self.drift_threshold}",
            f"- drift events: {len(self.drift_events)}",
        ]
        if self.drift_events:
            lines.append("")
            lines.append("## Drift events")
            lines.append("")
            for event in self.drift_events:
                lines.append(
                    f"- window {event.window}: `{event.attribute}` "
                    f"{event.metric} gap {event.value:.4f} vs baseline "
                    f"{event.baseline:.4f} (Δ {event.delta:+.4f})"
                )
            lines.append("")
            lines.append(
                "Drifted metrics mean the last full audit no longer "
                "describes the live system; Section IV.E calls for a "
                "re-audit."
            )
        else:
            lines.append("")
            lines.append(
                "No metric drifted beyond the threshold; the standing "
                "audit remains representative."
            )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"FairnessMonitor(protected={list(self.protected)}, "
            f"window={self.window}, windows={len(self.windows)}, "
            f"drift_events={len(self.drift_events)})"
        )
