"""Windowed fairness monitoring and drift detection (Section IV.E).

The paper's Section IV.E argues that a fairness verdict is evidence
about a *moment*: models drift as the population, the product, and the
decision process drift, so compliance requires re-measurement over
time, not a one-off certificate.  :class:`FairnessMonitor`
operationalises that for one stream: it buffers an ongoing prediction
stream, closes fixed-size windows, audits each window with the same
battery as an offline audit, and flags *drift* — a window whose metric
gap moved more than ``drift_threshold`` away from the running baseline
of previous windows.

Since the monitoring-fleet PR the class is a thin single-stream wrapper
over :class:`repro.monitor.MonitorFleet`: ingest is vectorized (numpy
chunk queues folded straight into joint-contingency code space — no
``tolist()``, no per-window re-encode) and windows are evaluated from
cumulative count deltas, while every output — ``WindowResult`` values,
``summary()``, ``markdown()`` — is identical to the original
implementation.  Fleet-wide concerns (many streams, shared code
tables, batched sequential drift tests) live in
:mod:`repro.monitor.engine`.

A drift event is not automatically a violation (each window's own
verdicts are reported separately); it is the trigger the paper asks
for: the signal that yesterday's audit no longer describes today's
system and a full re-audit is due.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import AuditConfig, MonitorConfig
from repro.exceptions import AuditError

__all__ = ["DriftEvent", "FairnessMonitor", "WindowResult"]


@dataclass(frozen=True)
class DriftEvent:
    """One metric whose gap moved beyond a detector's alarm line.

    ``reason`` names the detector that fired (``"threshold"``,
    ``"spending"``, or ``"cusum"`` — see
    :data:`repro.core.config.MONITOR_DETECTORS`); the sequential
    detectors attach their evidence (``statistic``, ``p_value``, and
    the alarming group's Wilson interval).  Threshold events serialise
    exactly as they always have, so stored monitoring evidence stays
    byte-stable.
    """

    window: int
    attribute: str
    metric: str
    value: float
    baseline: float
    delta: float
    reason: str = "threshold"
    statistic: float | None = None
    p_value: float | None = None
    ci_low: float | None = None
    ci_high: float | None = None

    def to_dict(self) -> dict:
        payload = {
            "window": self.window,
            "attribute": self.attribute,
            "metric": self.metric,
            "value": round(self.value, 6),
            "baseline": round(self.baseline, 6),
            "delta": round(self.delta, 6),
        }
        if self.reason != "threshold":
            payload["reason"] = self.reason
            if self.statistic is not None:
                payload["statistic"] = round(self.statistic, 6)
            if self.p_value is not None:
                payload["p_value"] = round(self.p_value, 9)
            if self.ci_low is not None and self.ci_high is not None:
                payload["interval"] = [
                    round(self.ci_low, 6),
                    round(self.ci_high, 6),
                ]
        return payload


@dataclass(frozen=True)
class WindowResult:
    """The audit of one closed window of one stream."""

    index: int
    start_row: int
    end_row: int
    gaps: dict = field(default_factory=dict)
    violations: tuple = ()
    drift: tuple = ()
    stream: str = "default"

    @property
    def n_rows(self) -> int:
        return self.end_row - self.start_row

    @property
    def drifted(self) -> bool:
        return bool(self.drift)

    def to_dict(self) -> dict:
        return {
            "window": self.index,
            "rows": [self.start_row, self.end_row],
            "gaps": {key: round(gap, 6) for key, gap in self.gaps.items()},
            "violations": list(self.violations),
            "drift": [event.to_dict() for event in self.drift],
        }


class FairnessMonitor:
    """Sliding-window fairness drift monitor over one prediction stream.

    Parameters
    ----------
    protected:
        Ordered protected-attribute names to monitor.
    config:
        Audit configuration for each window's battery run (tolerance,
        metric subset, strata, …); window audits and offline audits
        share one config type by design.  When ``config.monitor`` is
        set it governs the window size, threshold, and drift detectors
        wholesale and the ``window``/``drift_threshold`` arguments are
        ignored.
    window:
        Rows per evaluation window.
    drift_threshold:
        Absolute change in a metric's gap, relative to the running
        baseline (mean of that metric's gap over previous windows),
        that raises a :class:`DriftEvent`.
    label / audits_labels:
        As on :class:`~repro.streaming.accumulator.AuditAccumulator`.
    name:
        Stream label attached to the ``monitor.drift`` events this
        monitor publishes on the observability event bus and to its
        ``streaming.*`` metrics/spans — how a monitoring fleet tells
        its streams apart in one merged feed.

    Examples
    --------
    >>> monitor = FairnessMonitor(["sex"], window=200)
    >>> results = monitor.observe(y_true=y, predictions=p,
    ...                           protected={"sex": sex})
    >>> any(window.drifted for window in results)  # doctest: +SKIP
    """

    def __init__(
        self,
        protected,
        *,
        config: AuditConfig | None = None,
        window: int = 500,
        drift_threshold: float = 0.1,
        label: str | None = "outcome",
        audits_labels: bool = False,
        name: str = "default",
    ):
        if window < 1:
            raise AuditError("window must be >= 1")
        if not 0 < drift_threshold <= 1:
            raise AuditError("drift_threshold must be in (0, 1]")
        from repro.monitor.engine import MonitorFleet

        self.name = str(name)
        self.protected = tuple(protected)
        self.config = config if config is not None else AuditConfig()
        if self.config.monitor is not None:
            monitor = self.config.monitor
        else:
            monitor = MonitorConfig(
                window=int(window), drift_threshold=float(drift_threshold)
            )
        self.window = monitor.window
        self.drift_threshold = monitor.drift_threshold
        self.label = label
        self.audits_labels = bool(audits_labels)
        self._fleet = MonitorFleet(
            self.protected,
            config=self.config,
            monitor=monitor,
            label=label,
            audits_labels=audits_labels,
        )
        self._state = self._fleet.add_stream(self.name)

    # -- ingestion -----------------------------------------------------------

    def observe(
        self, y_true=None, predictions=None, protected=None, strata=None
    ) -> list[WindowResult]:
        """Buffer aligned arrays; audit and return any windows they close."""
        return self._fleet.observe(
            self.name,
            y_true=y_true,
            predictions=predictions,
            protected=protected,
            strata=strata,
        )

    def flush(self) -> WindowResult | None:
        """Audit whatever partial window remains in the buffer."""
        return self._fleet.flush(self.name)

    # -- state ---------------------------------------------------------------

    @property
    def windows(self) -> list[WindowResult]:
        return self._state.windows

    @property
    def drift_events(self) -> list[DriftEvent]:
        return self._state.drift_events

    @property
    def _rows_seen(self) -> int:
        return self._state.rows_seen

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """JSON-able digest of the monitoring session so far."""
        return {
            "windows": len(self.windows),
            "rows_seen": self._state.rows_seen,
            "window_size": self.window,
            "drift_threshold": self.drift_threshold,
            "drift_events": [event.to_dict() for event in self.drift_events],
            "results": [window.to_dict() for window in self.windows],
        }

    def markdown(self) -> str:
        """A short monitoring report (Section IV.E evidence trail)."""
        lines = [
            "# Fairness monitoring report",
            "",
            f"- windows evaluated: {len(self.windows)} "
            f"({self._state.rows_seen} rows, window size {self.window})",
            f"- drift threshold: {self.drift_threshold}",
            f"- drift events: {len(self.drift_events)}",
        ]
        if self.drift_events:
            lines.append("")
            lines.append("## Drift events")
            lines.append("")
            for event in self.drift_events:
                lines.append(
                    f"- window {event.window}: `{event.attribute}` "
                    f"{event.metric} gap {event.value:.4f} vs baseline "
                    f"{event.baseline:.4f} (Δ {event.delta:+.4f})"
                )
            lines.append("")
            lines.append(
                "Drifted metrics mean the last full audit no longer "
                "describes the live system; Section IV.E calls for a "
                "re-audit."
            )
        else:
            lines.append("")
            lines.append(
                "No metric drifted beyond the threshold; the standing "
                "audit remains representative."
            )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"FairnessMonitor(protected={list(self.protected)}, "
            f"window={self.window}, windows={len(self.windows)}, "
            f"drift_events={len(self.drift_events)})"
        )
