"""Command-line interface: generate workloads, audit files, get advice.

Usage::

    python -m repro generate --workload hiring --n 2000 --out data.csv
    python -m repro audit --data data.csv --tolerance 0.05 --format json
    python -m repro audit --data data.csv --chunk-size 500 \\
        --checkpoint stream.ckpt.json --state-out shard0.state.json
    python -m repro merge-state shard*.state.json --audit
    python -m repro monitor --data data.csv --window 500 \\
        --drift-threshold 0.1
    python -m repro recommend --sector employment --jurisdiction eu \\
        --structural-bias --no-reliable-labels
    python -m repro statutes --attribute sex --sector employment \\
        --jurisdiction us
    python -m repro subgroups --data data.csv --checkpoint scan.ckpt.json \\
        --resume --jobs 4
    python -m repro subgroups --data data.csv --strategy incremental \\
        --state scan.state.json

Every subcommand prints to stdout.  Exit codes:

* ``0`` — clean completion;
* ``1`` — the audit/workflow found violations (CI pipelines gate on it);
* ``2`` — usage error, unreadable input, or a fail-closed abort
  (:class:`~repro.exceptions.DegradedRunError` under ``--fail-fast``);
* ``3`` — *completed degraded*: the run finished and found no violation,
  but one or more stages errored or timed out, so the result is partial
  evidence, not a clean pass.

The audit-style subcommands accept an execution policy (``--deadline``
seconds per stage, ``--retries`` for transient faults, ``--fail-fast``
for fail-closed semantics); ``subgroups`` adds ``--checkpoint`` /
``--resume`` for anytime enumeration, ``--jobs N`` for a parallel
scan whose findings and checkpoints stay byte-identical to serial,
and ``--strategy``/``--scan-config``/``--state`` for the bound-pruned
and incremental scanners (see ``docs/subgroups.md``; identical flagged
set either way).

Streaming (see ``docs/streaming.md``): ``audit --chunk-size N`` runs
the same audit through the streaming engine (byte-identical report),
with ``--checkpoint``/``--resume`` for interruption-safe ingest and
``--state-out`` to export mergeable accumulator state; ``merge-state``
folds shard states together; ``monitor`` replays a dataset as a
windowed stream and flags fairness drift (Section IV.E).

Out-of-core (see ``docs/performance.md``): ``repro data pack`` converts
a CSV into the packed columnar format (one memmap-openable ``.npy`` per
column + ``dataset.json`` sidecar) and ``repro data inspect`` summarises
or re-verifies a pack; every ``--data`` flag accepts a packed directory
in place of a CSV, so full-population audits run in bounded memory.

Observability (see ``docs/observability.md``): global ``-v``/``-q``
control log verbosity and ``--log-json`` switches stderr logging to
JSON lines; the audit-style subcommands take ``--trace-out PATH`` to
write a span trace of the run, and ``repro trace summarize PATH``
renders a per-stage timing/retry table from such a file.
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.core.audit import FairnessAudit
from repro.core.config import AuditConfig
from repro.core.criteria import UseCaseProfile, recommend_metrics, risk_flags
from repro.core.legal import statutes_protecting
from repro.core.report import render_markdown, render_text
from repro.core.serialize import report_to_json
from repro.data.generators import (
    make_credit,
    make_hiring,
    make_housing,
    make_intersectional,
    make_recidivism,
)
from repro.data.io import load_dataset, save_dataset
from repro.exceptions import ReproError
from repro.observability import Tracer, configure_logging, use_tracer
from repro.robustness import ExecutionPolicy

__all__ = ["main", "build_parser", "EXIT_DEGRADED"]

_LOG = logging.getLogger(__name__)

#: exit code for "completed, but degraded" — distinct from both a clean
#: pass (0) and a fairness violation (1) so CI can treat partial
#: evidence as its own signal.
EXIT_DEGRADED = 3

_WORKLOADS = {
    "hiring": make_hiring,
    "credit": make_credit,
    "housing": make_housing,
    "recidivism": make_recidivism,
    "intersectional": make_intersectional,
}


def _add_policy_flags(sub) -> None:
    """Execution-policy flags shared by the audit-style subcommands."""
    sub.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per audit stage; hung stages are cut "
        "off and reported as degradations",
    )
    sub.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retries (with exponential backoff) for transient stage "
        "failures such as convergence errors",
    )
    sub.add_argument(
        "--fail-fast", action="store_true",
        help="fail-closed: abort on the first stage failure instead of "
        "degrading (exit code 2)",
    )


def _add_trace_flag(sub) -> None:
    """The observability flag shared by the audit-style subcommands."""
    sub.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a JSON-lines span trace of the run here (one span "
        "per audit stage; summarise with 'repro trace summarize PATH')",
    )


def _policy_from_args(args) -> ExecutionPolicy | None:
    """Build a policy from CLI flags; None when every flag is default."""
    if (
        args.deadline is None
        and args.retries == 0
        and not args.fail_fast
    ):
        return None
    return ExecutionPolicy(
        deadline=args.deadline,
        max_retries=args.retries,
        fail_fast=args.fail_fast,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fairness auditing at the intersection of algorithms "
        "and law (ICDE 2024 workshop paper reproduction).",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v info, -vv debug); logs go to "
        "stderr, never mixed into report output",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit logs as JSON lines (machine-readable stderr)",
    )
    # The same diagnostics flags are accepted *after* the subcommand
    # too ("repro serve -v" and "repro -v serve" both work).  SUPPRESS
    # defaults keep the subparser from clobbering a value the root
    # parser already set when the flag only appears up front.
    late = argparse.ArgumentParser(add_help=False)
    late.add_argument(
        "-v", "--verbose", action="count", default=argparse.SUPPRESS,
        help="increase log verbosity (-v info, -vv debug)",
    )
    late.add_argument(
        "-q", "--quiet", action="store_true", default=argparse.SUPPRESS,
        help="only log errors",
    )
    late.add_argument(
        "--log-json", action="store_true", default=argparse.SUPPRESS,
        help="emit logs as JSON lines",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic workload")
    gen.add_argument("--workload", choices=sorted(_WORKLOADS), required=True)
    gen.add_argument("--n", type=int, default=2000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--bias", type=float, default=0.0,
                     help="direct label-bias strength (hiring workload)")
    gen.add_argument("--proxy", type=float, default=0.0,
                     help="proxy strength (hiring workload)")
    gen.add_argument("--out", required=True,
                     help="CSV output path (schema sidecar written next to it)")

    audit = sub.add_parser("audit", help="audit a dataset CSV")
    audit.add_argument("--data", required=True, help="CSV written by generate")
    audit.add_argument("--schema", default=None,
                       help="schema JSON (default: <data>.schema.json)")
    audit.add_argument("--tolerance", type=float, default=0.05)
    audit.add_argument("--strata", default=None,
                       help="legitimate conditioning column")
    audit.add_argument("--format", choices=("markdown", "text", "json"),
                       default="markdown")
    audit.add_argument("--metric", action="append", default=[],
                       help="restrict the battery to this metric "
                       "(repeatable; default: the full battery)")
    audit.add_argument("--chunk-size", type=int, default=None, metavar="N",
                       help="stream the dataset through the audit in "
                       "chunks of N rows (byte-identical report; "
                       "see docs/streaming.md)")
    audit.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="with --chunk-size: write accumulator state "
                       "here after every chunk (atomic)")
    audit.add_argument("--resume", action="store_true",
                       help="with --chunk-size: resume ingest from "
                       "--checkpoint after an interrupted run")
    audit.add_argument("--state-out", default=None, metavar="PATH",
                       help="with --chunk-size: export the final "
                       "accumulator state for merge-state")
    _add_policy_flags(audit)
    _add_trace_flag(audit)

    merge = sub.add_parser(
        "merge-state",
        help="merge streaming accumulator states from parallel shards",
    )
    merge.add_argument("states", nargs="+",
                       help="state files written by audit --state-out")
    merge.add_argument("--out", default=None, metavar="PATH",
                       help="write the merged state here")
    merge.add_argument("--audit", action="store_true",
                       help="audit the merged counts and print the report")
    merge.add_argument("--tolerance", type=float, default=0.05)
    merge.add_argument("--format", choices=("markdown", "text", "json"),
                       default="markdown")
    _add_trace_flag(merge)

    mon = sub.add_parser(
        "monitor",
        parents=[late],
        help="replay a dataset as a windowed stream and flag fairness "
        "drift (Section IV.E), or 'monitor serve' a shard spool",
    )
    mon_sub = mon.add_subparsers(dest="monitor_command")
    mserve = mon_sub.add_parser(
        "serve",
        help="tail a spool of append-only shard files (one "
        "subdirectory per stream) into a monitoring fleet and "
        "expose /metrics, /events, /healthz over HTTP",
    )
    mserve.add_argument("--root", required=True, metavar="DIR",
                        help="spool root; each subdirectory is one "
                        "named stream of shard files (CSV or packed)")
    mserve.add_argument("--schema", required=True,
                        help="schema JSON describing the shards "
                        "(protected attributes, label)")
    mserve.add_argument("--prediction-column", default=None, metavar="NAME",
                        help="shard column holding model decisions; "
                        "without it the labels themselves are monitored")
    mserve.add_argument("--monitor-config", default=None, metavar="PATH",
                        help="JSON MonitorConfig file; explicit flags "
                        "below override its fields")
    mserve.add_argument("--window", type=int, default=None, metavar="N",
                        help="rows per evaluation window (default 500)")
    mserve.add_argument("--drift-threshold", type=float, default=None,
                        help="gap change vs the running baseline that "
                        "raises a drift event (default 0.1)")
    mserve.add_argument("--detectors", default=None, metavar="LIST",
                        help="comma-separated drift detectors: "
                        "threshold, spending, cusum (default: threshold)")
    mserve.add_argument("--tolerance", type=float, default=0.05)
    mserve.add_argument("--metric", action="append", default=[],
                        help="restrict each window's battery (repeatable)")
    mserve.add_argument("--host", default="127.0.0.1")
    mserve.add_argument("--port", type=int, default=8300)
    mserve.add_argument("--poll-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="seconds between spool scans")
    mserve.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                        help="rows per in-memory chunk when reading "
                        "a shard")
    mserve.add_argument("--once", action="store_true",
                        help="ingest the shards present now, flush "
                        "partial windows, print the fleet summary, "
                        "and exit (no HTTP server)")
    mserve.add_argument("--format", choices=("markdown", "json"),
                        default="markdown")
    mserve.add_argument("--events-out", default=None, metavar="PATH",
                        help="append alerting events here as JSON "
                        "lines; follow with 'repro events tail PATH'")
    _add_trace_flag(mserve)
    mon.add_argument("--data", default=None, help="CSV written by generate")
    mon.add_argument("--schema", default=None,
                     help="schema JSON (default: <data>.schema.json)")
    mon.add_argument("--model", default=None,
                     help="JSON pipeline written by train; without it the "
                     "labels themselves are monitored")
    mon.add_argument("--window", type=int, default=500, metavar="N",
                     help="rows per evaluation window")
    mon.add_argument("--drift-threshold", type=float, default=0.1,
                     help="gap change vs the running baseline that "
                     "raises a drift event")
    mon.add_argument("--tolerance", type=float, default=0.05)
    mon.add_argument("--metric", action="append", default=[],
                     help="restrict each window's battery (repeatable)")
    mon.add_argument("--format", choices=("markdown", "json"),
                     default="markdown")
    mon.add_argument("--stream-name", default="default", metavar="NAME",
                     help="stream label on published monitor.drift "
                     "events (default: 'default')")
    mon.add_argument("--events-out", default=None, metavar="PATH",
                     help="append drift events here as JSON lines "
                     "(inspect with 'repro events tail PATH')")
    _add_trace_flag(mon)

    scan = sub.add_parser(
        "subgroups",
        help="subgroup disparity scan (exhaustive, bound-pruned, or "
        "incremental) with checkpoint/resume",
    )
    scan.add_argument("--data", required=True, help="CSV written by generate")
    scan.add_argument("--schema", default=None,
                      help="schema JSON (default: <data>.schema.json)")
    scan.add_argument("--attribute", action="append", default=[],
                      help="attribute to conjoin (repeatable; default: "
                      "all protected attributes)")
    scan.add_argument("--strategy",
                      choices=("exhaustive", "best_first", "incremental"),
                      default=None,
                      help="scan strategy (default exhaustive; best_first "
                      "prunes via statistical bounds with identical "
                      "findings; incremental persists --state for delta "
                      "re-scoring)")
    scan.add_argument("--scan-config", default=None, metavar="PATH",
                      help="JSON ScanConfig file; explicit flags below "
                      "override its fields")
    scan.add_argument("--state", default=None, metavar="PATH",
                      help="ScanState path for --strategy incremental "
                      "(created on first run, re-scored from the data "
                      "delta afterwards)")
    scan.add_argument("--max-order", type=int, default=None,
                      help="maximum conjunction order (default 2)")
    scan.add_argument("--min-size", type=int, default=None,
                      help="minimum subgroup size scored (default 10)")
    scan.add_argument("--alpha", type=float, default=None,
                      help="significance level (default 0.05)")
    scan.add_argument("--adjust", choices=("holm", "bh", "none"),
                      default=None,
                      help="multiple-testing correction for significance "
                      "(default holm)")
    scan.add_argument("--bound-slack", type=float, default=None,
                      help="extra prune-threshold headroom for "
                      "best_first/incremental (default 0.0)")
    scan.add_argument("--top", type=int, default=10,
                      help="findings to print (most disparate first)")
    scan.add_argument("--checkpoint", default=None, metavar="PATH",
                      help="write an atomic JSON checkpoint here "
                      "periodically (anytime scan)")
    scan.add_argument("--checkpoint-every", type=int, default=None,
                      help="scored subgroups between checkpoints "
                      "(default 64)")
    scan.add_argument("--resume", action="store_true",
                      help="resume from --checkpoint after a killed run")
    scan.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes for the scan (default 1 = "
                      "serial; results and checkpoints are byte-identical "
                      "either way)")
    _add_trace_flag(scan)

    rec = sub.add_parser("recommend",
                         help="rank fairness metrics for a use case")
    rec.add_argument("--name", default="cli use case")
    rec.add_argument("--sector", default="employment")
    rec.add_argument("--jurisdiction", choices=("eu", "us"), default="eu")
    rec.add_argument("--structural-bias", action="store_true")
    rec.add_argument("--affirmative-action", action="store_true")
    rec.add_argument("--no-labels", action="store_true")
    rec.add_argument("--no-reliable-labels", action="store_true")
    rec.add_argument("--legitimate-factor", action="append", default=[])
    rec.add_argument("--causal-model", action="store_true")
    rec.add_argument("--punitive", action="store_true")
    rec.add_argument("--protected-attributes", type=int, default=1)
    rec.add_argument("--proxy-risk", action="store_true")
    rec.add_argument("--feedback-risk", action="store_true")
    rec.add_argument("--manipulation-risk", action="store_true")

    stat = sub.add_parser("statutes",
                          help="look up statutes protecting an attribute")
    stat.add_argument("--attribute", required=True)
    stat.add_argument("--sector", default=None)
    stat.add_argument("--jurisdiction", choices=("eu", "us"), default=None)

    train = sub.add_parser("train", help="train a linear model on a CSV")
    train.add_argument("--data", required=True)
    train.add_argument("--schema", default=None)
    train.add_argument("--model-out", required=True,
                       help="JSON output path for the fitted pipeline")
    train.add_argument("--max-iter", type=int, default=800)

    predict = sub.add_parser(
        "predict",
        help="score a CSV with a trained model and audit the decisions",
    )
    predict.add_argument("--data", required=True)
    predict.add_argument("--schema", default=None)
    predict.add_argument("--model", required=True,
                         help="JSON pipeline written by train")
    predict.add_argument("--tolerance", type=float, default=0.05)
    predict.add_argument("--format", choices=("markdown", "text", "json"),
                         default="markdown")
    _add_policy_flags(predict)
    _add_trace_flag(predict)

    definition = sub.add_parser(
        "define", help="look up a legal/technical term from the paper"
    )
    definition.add_argument("term", nargs="+",
                            help="the term, e.g. 'disparate impact'")

    wf = sub.add_parser(
        "workflow",
        help="run the full compliance workflow on a dataset CSV",
    )
    wf.add_argument("--data", required=True)
    wf.add_argument("--schema", default=None)
    wf.add_argument("--tolerance", type=float, default=0.05)
    wf.add_argument("--strata", default=None)
    wf.add_argument("--name", default="cli use case")
    wf.add_argument("--sector", default="employment")
    wf.add_argument("--jurisdiction", choices=("eu", "us"), default="eu")
    wf.add_argument("--structural-bias", action="store_true")
    wf.add_argument("--affirmative-action", action="store_true")
    wf.add_argument("--no-reliable-labels", action="store_true")
    wf.add_argument("--proxy-risk", action="store_true")
    _add_policy_flags(wf)
    _add_trace_flag(wf)

    srv = sub.add_parser(
        "serve",
        parents=[late],
        help="run the fault-tolerant audit service (HTTP/JSON job API)",
    )
    srv.add_argument(
        "--root", required=True, metavar="DIR",
        help="service state directory (journal, result store, "
        "checkpoints); a restart over the same root recovers "
        "interrupted jobs",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 (the default) binds a free port and prints it",
    )
    srv.add_argument(
        "--workers", type=int, default=2,
        help="worker threads executing jobs (default: 2)",
    )
    srv.add_argument(
        "--queue-limit", type=int, default=16,
        help="max active jobs before submissions get 429 + Retry-After "
        "(default: 16)",
    )
    srv.add_argument(
        "--no-fsync", action="store_true",
        help="skip the per-event journal fsync (faster; weakens the "
        "crash guarantee to what the OS flushes)",
    )
    srv.add_argument(
        "--trace-sample-rate", type=float, default=1.0, metavar="P",
        help="head-sampling probability for request traces when the "
        "client sends no traceparent header (default: 1.0 — trace "
        "everything)",
    )
    srv.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="append alerting events (drift, job failures, admission "
        "rejections) here as JSON lines; follow with "
        "'repro events tail PATH'",
    )
    _add_policy_flags(srv)
    _add_trace_flag(srv)

    trace = sub.add_parser(
        "trace",
        help="inspect a trace file written with --trace-out",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summ = trace_sub.add_parser(
        "summarize",
        help="per-stage timing/retry table from a trace file",
    )
    summ.add_argument("path", help="JSON-lines trace written by --trace-out")
    summ.add_argument("--top", type=int, default=None, metavar="N",
                      help="show only the N stages with the largest total "
                      "time (default: all)")
    summ.add_argument("--group", action="store_true",
                      help="group stages by prefix (all audit:* stages "
                      "become one row)")
    summ.add_argument("--by-process", action="store_true",
                      help="one table per producing process — a "
                      "parallel scan merges child worker spans into "
                      "the parent trace file")

    ev = sub.add_parser(
        "events",
        help="inspect an event log written with --events-out",
    )
    ev_sub = ev.add_subparsers(dest="events_command", required=True)
    tail = ev_sub.add_parser(
        "tail",
        help="print events from a JSON-lines event log",
    )
    tail.add_argument("path", help="JSON-lines sink written by --events-out")
    tail.add_argument("--since", type=int, default=0, metavar="SEQ",
                      help="only events with seq > SEQ (default: all)")
    tail.add_argument("--kind", default=None, metavar="KIND",
                      help="filter by kind, exact or dotted prefix "
                      "('job' matches job.failed and job.rejected)")
    tail.add_argument("--stream", default=None, metavar="NAME",
                      help="only events whose payload carries this "
                      "monitoring stream label")
    tail.add_argument("--follow", "-f", action="store_true",
                      help="keep polling the file for new events "
                      "(Ctrl-C to stop)")
    tail.add_argument("--json", action="store_true", dest="as_json",
                      help="print raw JSON lines instead of the "
                      "formatted view")

    data = sub.add_parser(
        "data",
        help="pack/inspect out-of-core columnar datasets",
    )
    data_sub = data.add_subparsers(dest="data_command", required=True)
    pack = data_sub.add_parser(
        "pack",
        help="pack a CSV dataset into the columnar on-disk format "
        "(one memmap-openable .npy per column + dataset.json sidecar)",
    )
    pack.add_argument("--data", required=True, help="CSV written by generate")
    pack.add_argument("--schema", default=None,
                      help="schema JSON (default: <data>.schema.json)")
    pack.add_argument("--out", required=True, metavar="DIR",
                      help="output directory for the packed dataset")
    pack.add_argument("--chunk-rows", type=int, default=None, metavar="N",
                      help="rows per packed write chunk (default 1Mi)")
    inspect = data_sub.add_parser(
        "inspect",
        help="summarise a packed dataset's sidecar (rows, schema, "
        "fingerprint) without reading column data",
    )
    inspect.add_argument("path", help="packed dataset directory")
    inspect.add_argument("--verify", action="store_true",
                         help="re-hash the column bytes against the "
                         "recorded fingerprint (reads the whole pack)")
    inspect.add_argument("--format", choices=("text", "json"),
                         default="text")

    return parser


def _cmd_generate(args) -> int:
    factory = _WORKLOADS[args.workload]
    kwargs = {"n": args.n, "random_state": args.seed}
    if args.workload == "hiring":
        kwargs["direct_bias"] = args.bias
        kwargs["proxy_strength"] = args.proxy
    dataset = factory(**kwargs)
    save_dataset(dataset, args.out)
    print(f"wrote {dataset.n_rows} rows to {args.out} "
          f"(+ schema sidecar)")
    return 0


def _report_exit_code(report) -> int:
    """0 clean, 1 violations, EXIT_DEGRADED for errored-but-clean."""
    if not report.is_clean:
        return 1
    return EXIT_DEGRADED if report.degraded else 0


def _print_report(report, fmt: str) -> None:
    if fmt == "json":
        print(report_to_json(report))
    elif fmt == "text":
        print(render_text(report))
    else:
        print(render_markdown(report))


def _dataset_chunks(dataset, chunk_size: int):
    """Slice a dataset into row-contiguous chunks for the stream engine."""
    import numpy as np

    for lo in range(0, dataset.n_rows, chunk_size):
        yield dataset.take(np.arange(lo, min(lo + chunk_size, dataset.n_rows)))


def _cmd_audit(args) -> int:
    from repro.exceptions import AuditError

    dataset = load_dataset(args.data, args.schema)
    config = AuditConfig(
        tolerance=args.tolerance,
        strata=args.strata,
        metrics=tuple(args.metric) or None,
        policy=_policy_from_args(args),
    )
    if args.chunk_size is None:
        for flag in ("checkpoint", "state_out"):
            if getattr(args, flag):
                raise AuditError(
                    f"--{flag.replace('_', '-')} requires --chunk-size"
                )
        report = FairnessAudit(dataset, config=config).run()
    else:
        from repro.streaming import finalize, ingest_stream

        if args.chunk_size < 1:
            raise AuditError("--chunk-size must be >= 1")
        accumulator = ingest_stream(
            _dataset_chunks(dataset, args.chunk_size),
            config,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
        if args.state_out:
            accumulator.save(args.state_out)
            _LOG.info("accumulator state written to %s", args.state_out)
        report = finalize(accumulator, config)
    _print_report(report, args.format)
    return _report_exit_code(report)


def _cmd_merge_state(args) -> int:
    from repro.streaming import finalize, merge_states

    merged = merge_states(args.states)
    print(f"merged {len(args.states)} shard states: {merged.n_rows} rows, "
          f"{len(merged._cells)} cells, "
          f"{merged.chunks_ingested} chunks ingested")
    if args.out:
        merged.save(args.out)
        print(f"merged state written to {args.out}")
    if not args.audit:
        return 0
    config = AuditConfig(tolerance=args.tolerance, strata=merged.strata)
    report = finalize(merged, config)
    _print_report(report, args.format)
    return _report_exit_code(report)


def _cmd_monitor(args) -> int:
    if getattr(args, "monitor_command", None) == "serve":
        return _cmd_monitor_serve(args)
    from repro.streaming import FairnessMonitor

    if not args.data:
        raise SystemExit("repro monitor: --data is required (or use "
                         "'repro monitor serve --root DIR')")
    dataset = load_dataset(args.data, args.schema)
    predictions = None
    if args.model:
        from repro.models.persistence import LinearPipeline

        predictions = LinearPipeline.load(args.model).predict(dataset)
    config = AuditConfig(
        tolerance=args.tolerance, metrics=tuple(args.metric) or None
    )
    monitor = FairnessMonitor(
        dataset.schema.protected_names,
        config=config,
        window=args.window,
        drift_threshold=args.drift_threshold,
        label=dataset.schema.label_name,
        audits_labels=predictions is None,
        name=args.stream_name,
    )
    from contextlib import ExitStack

    with ExitStack() as stack:
        if args.events_out:
            from repro.observability import EventBus, use_event_bus

            bus = EventBus(sink=args.events_out)
            stack.callback(bus.close)
            stack.enter_context(use_event_bus(bus))
        monitor.observe(
            y_true=dataset.labels(),
            predictions=predictions,
            protected={
                name: dataset.column(name)
                for name in dataset.schema.protected_names
            },
        )
        monitor.flush()
    if args.format == "json":
        import json as _json

        print(_json.dumps(monitor.summary(), indent=2))
    else:
        print(monitor.markdown())
    return 1 if monitor.drift_events else 0


def _cmd_monitor_serve(args) -> int:
    """Tail a shard spool into a monitoring fleet until SIGTERM."""
    import json as _json
    import signal
    import threading
    from contextlib import ExitStack

    from repro.core.config import MonitorConfig
    from repro.data.io import schema_from_dict
    from repro.monitor import MonitorFleet, MonitorService, serve_http

    with open(args.schema, encoding="utf-8") as handle:
        schema = schema_from_dict(_json.load(handle))
    if args.monitor_config:
        with open(args.monitor_config, encoding="utf-8") as handle:
            base = MonitorConfig.from_dict(_json.load(handle))
    else:
        base = MonitorConfig()
    overrides = {
        name: value
        for name, value in (
            ("window", args.window),
            ("drift_threshold", args.drift_threshold),
            (
                "detectors",
                tuple(
                    part.strip()
                    for part in args.detectors.split(",")
                    if part.strip()
                )
                if args.detectors
                else None,
            ),
        )
        if value is not None
    }
    monitor_config = base.replace(**overrides) if overrides else base
    fleet = MonitorFleet(
        schema.protected_names,
        config=AuditConfig(
            tolerance=args.tolerance, metrics=tuple(args.metric) or None
        ),
        monitor=monitor_config,
        label=schema.label_name,
        audits_labels=args.prediction_column is None,
    )
    with ExitStack() as stack:
        if args.events_out:
            from repro.observability import EventBus, use_event_bus

            bus = EventBus(sink=args.events_out)
            stack.callback(bus.close)
            stack.enter_context(use_event_bus(bus))
        service = MonitorService(
            fleet,
            args.root,
            schema=args.schema,
            prediction_column=args.prediction_column,
            **(
                {"chunk_rows": args.chunk_rows}
                if args.chunk_rows is not None
                else {}
            ),
            poll_interval=args.poll_interval,
        )
        if args.once:
            service.scan_once()
            fleet.flush()
        else:
            server = serve_http(service, host=args.host, port=args.port)
            print(
                f"repro monitor fleet tailing {args.root} on "
                f"http://{args.host}:{server.port} "
                f"(window {monitor_config.window}, detectors "
                f"{', '.join(monitor_config.detectors)})",
                flush=True,
            )
            stop = threading.Event()

            def _request_stop(signum, frame):
                stop.set()

            signal.signal(signal.SIGTERM, _request_stop)
            signal.signal(signal.SIGINT, _request_stop)
            try:
                service.run(stop)
            finally:
                server.shutdown()
                fleet.flush()
    if args.format == "json":
        print(_json.dumps(fleet.summary(), indent=2))
    else:
        print(fleet.markdown())
    drifted = any(
        fleet.stream(name).drift_events for name in fleet.stream_names
    )
    return 1 if drifted else 0


def _cmd_subgroups(args) -> int:
    import json as _json

    from repro.core.config import ScanConfig
    from repro.subgroup.auditor import (
        adjust_for_multiple_testing,
        audit_subgroups,
    )
    from repro.subgroup.search import scan_subgroups

    dataset = load_dataset(args.data, args.schema)
    if args.scan_config:
        with open(args.scan_config, encoding="utf-8") as handle:
            base = ScanConfig.from_dict(_json.load(handle))
    else:
        base = ScanConfig()
    overrides = {
        name: value
        for name, value in (
            ("strategy", args.strategy),
            ("max_order", args.max_order),
            ("min_size", args.min_size),
            ("alpha", args.alpha),
            ("correction", args.adjust),
            ("checkpoint_every", args.checkpoint_every),
            ("jobs", args.jobs),
            ("bound_slack", args.bound_slack),
        )
        if value is not None
    }
    scan = base.replace(**overrides) if overrides else base
    if scan.strategy == "exhaustive":
        findings = audit_subgroups(
            dataset.labels(),
            dataset,
            attributes=args.attribute or None,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            scan_config=scan,
        )
        if scan.correction != "none":
            findings = adjust_for_multiple_testing(
                findings, method=scan.correction
            )
        stats = ""
    else:
        result = scan_subgroups(
            dataset.labels(),
            dataset,
            attributes=args.attribute or None,
            config=scan,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            state_path=args.state,
        )
        findings = result.findings
        stats = (f"; {scan.strategy}: {result.evaluated} scored, "
                 f"{result.pruned} pruned "
                 f"({result.pruned_fraction:.0%} of {result.total})")
        if result.rescored:
            stats += f", {result.rescored} re-scored from delta"
    significant = [f for f in findings if f.significant(scan.alpha)]
    print(f"scanned {len(findings)} subgroups "
          f"({len(significant)} significant at alpha={scan.alpha:g}, "
          f"{scan.correction} correction{stats})")
    for finding in findings[: args.top]:
        flag = "!" if finding.significant(scan.alpha) else " "
        print(f" {flag} {finding.subgroup.label()}: "
              f"rate {finding.rate:.3f} vs {finding.complement_rate:.3f} "
              f"(gap {finding.gap:+.3f}, n={finding.subgroup.size}, "
              f"p={finding.p_value:.4f})")
    return 1 if significant else 0


def _cmd_recommend(args) -> int:
    profile = UseCaseProfile(
        name=args.name,
        sector=args.sector,
        jurisdiction=args.jurisdiction,
        structural_bias_recognized=args.structural_bias,
        affirmative_action_mandated=args.affirmative_action,
        labels_available=not args.no_labels,
        ground_truth_reliable=not args.no_reliable_labels,
        legitimate_factors=tuple(args.legitimate_factor),
        causal_model_available=args.causal_model,
        punitive_context=args.punitive,
        n_protected_attributes=args.protected_attributes,
        proxy_risk=args.proxy_risk,
        feedback_loop_risk=args.feedback_risk,
        manipulation_risk=args.manipulation_risk,
    )
    print(f"Recommendations for {profile.name!r}:")
    for rec in recommend_metrics(profile):
        marker = " " if rec.feasible else "✗"
        print(f" {marker} {rec.score:+5.1f}  {rec.metric} "
              f"[{rec.equality_concept}]")
        for reason in rec.rationale:
            print(f"          · {reason}")
        for blocker in rec.blockers:
            print(f"          ✗ {blocker}")
    print("\nRisk flags:")
    for flag in risk_flags(profile):
        print(f"  [{flag.paper_section}] {flag.risk}: {flag.advice}")
    return 0


def _cmd_statutes(args) -> int:
    statutes = statutes_protecting(
        args.attribute, sector=args.sector, jurisdiction=args.jurisdiction
    )
    if not statutes:
        print(f"no cataloged statute protects {args.attribute!r} "
              f"(sector={args.sector}, jurisdiction={args.jurisdiction})")
        return 0
    for statute in statutes:
        sectors = ", ".join(statute.sectors) if statute.sectors else "general"
        print(f"- [{statute.jurisdiction.upper()}] {statute.name} "
              f"({statute.year}); sectors: {sectors}")
        if statute.notes:
            print(f"    {statute.notes}")
    return 0


def _cmd_train(args) -> int:
    from repro.models.persistence import LinearPipeline

    dataset = load_dataset(args.data, args.schema)
    pipeline = LinearPipeline(max_iter=args.max_iter).fit(dataset)
    pipeline.save(args.model_out)
    preds = pipeline.predict(dataset)
    train_accuracy = float((preds == dataset.labels()).mean())
    print(f"trained on {dataset.n_rows} rows "
          f"({len(pipeline.feature_names)} feature columns); "
          f"training accuracy {train_accuracy:.3f}; "
          f"model written to {args.model_out}")
    return 0


def _cmd_predict(args) -> int:
    from repro.models.persistence import LinearPipeline

    dataset = load_dataset(args.data, args.schema)
    pipeline = LinearPipeline.load(args.model)
    predictions = pipeline.predict(dataset)
    probabilities = pipeline.predict_proba(dataset)
    report = FairnessAudit(
        dataset,
        predictions=predictions,
        probabilities=probabilities,
        config=AuditConfig(
            tolerance=args.tolerance, policy=_policy_from_args(args)
        ),
    ).run()
    _print_report(report, args.format)
    return _report_exit_code(report)


def _cmd_define(args) -> int:
    from repro.core.glossary import define, related_terms

    term = " ".join(args.term)
    entry = define(term)
    print(f"{entry.term}  [{entry.discipline}; paper §{entry.paper_section}]")
    print(f"  {entry.definition}")
    related = related_terms(entry.term)
    if related:
        print("  see also: " + ", ".join(e.term for e in related))
    return 0


def _cmd_trace(args) -> int:
    from repro.observability import (
        render_summary_table,
        summarize_trace,
        summarize_trace_by_process,
    )

    if args.by_process:
        sections = summarize_trace_by_process(
            args.path, group_prefix=args.group
        )
        if not sections:
            print(f"trace {args.path} contains no spans")
            return 0
        for label, summaries in sections:
            print(f"## {label}")
            print()
            print(render_summary_table(summaries, top=args.top))
            print()
        return 0
    summaries = summarize_trace(args.path, group_prefix=args.group)
    if not summaries:
        print(f"trace {args.path} contains no spans")
        return 0
    print(render_summary_table(summaries, top=args.top))
    return 0


def _format_event(event: dict) -> str:
    """One human-readable line per event for the tail view."""
    import datetime

    stamp = datetime.datetime.fromtimestamp(
        float(event.get("ts", 0.0))
    ).strftime("%H:%M:%S")
    payload = event.get("payload") or {}
    detail = " ".join(f"{key}={value}" for key, value in payload.items())
    return (
        f"[{event.get('seq', '?'):>5}] {stamp} "
        f"{event.get('kind', '?'):<24} {detail}"
    )


def _cmd_events(args) -> int:
    import time as time_module

    from repro.observability import read_events

    cursor = args.since
    try:
        while True:
            for event in read_events(
                args.path, since=cursor, kind=args.kind,
                stream=getattr(args, "stream", None),
            ):
                cursor = max(cursor, int(event.get("seq", cursor)))
                if args.as_json:
                    import json as json_module

                    print(json_module.dumps(event), flush=True)
                else:
                    print(_format_event(event), flush=True)
            if not args.follow:
                return 0
            time_module.sleep(0.2)
    except KeyboardInterrupt:  # pragma: no cover — interactive only
        return 0
    except BrokenPipeError:
        # the reader (head, less) hung up mid-tail; leave quietly
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_workflow(args) -> int:
    from repro.core.criteria import UseCaseProfile
    from repro.workflow import run_compliance_workflow

    dataset = load_dataset(args.data, args.schema)
    legitimate = (args.strata,) if args.strata else ()
    profile = UseCaseProfile(
        name=args.name,
        sector=args.sector,
        jurisdiction=args.jurisdiction,
        structural_bias_recognized=args.structural_bias,
        affirmative_action_mandated=args.affirmative_action,
        ground_truth_reliable=not args.no_reliable_labels,
        legitimate_factors=legitimate,
        n_protected_attributes=max(
            1, len(dataset.schema.protected_names)
        ),
        proxy_risk=args.proxy_risk,
    )
    dossier = run_compliance_workflow(
        dataset, profile,
        config=AuditConfig(
            tolerance=args.tolerance,
            strata=args.strata,
            policy=_policy_from_args(args),
        ),
    )
    print(dossier.to_markdown())
    if dossier.verdict == "fail":
        return 1
    if dossier.degraded or dossier.verdict == "inconclusive":
        return EXIT_DEGRADED
    return 0


def _cmd_serve(args) -> int:
    """Run the audit service until SIGTERM/SIGINT, then drain."""
    import signal
    import threading
    from contextlib import ExitStack

    from repro.service import JobEngine
    from repro.service.httpd import serve as start_http

    stack = ExitStack()
    if args.events_out:
        from repro.observability import EventBus, use_event_bus

        bus = EventBus(sink=args.events_out)
        stack.callback(bus.close)
        stack.enter_context(use_event_bus(bus))
    # The bus is installed before the engine starts so crash-recovery
    # events from a restart land in the sink too.
    engine = JobEngine(
        args.root,
        workers=args.workers,
        queue_limit=args.queue_limit,
        policy=_policy_from_args(args),
        journal_fsync=not args.no_fsync,
    )
    server = start_http(
        engine, host=args.host, port=args.port,
        trace_sample_rate=args.trace_sample_rate,
    )
    print(
        f"repro audit service listening on http://{args.host}:{server.port} "
        f"(root {args.root}, {args.workers} workers, "
        f"queue limit {args.queue_limit})",
        flush=True,
    )
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        while not stop.wait(0.2):
            pass
    finally:
        server.shutdown()
        engine.shutdown(drain=True)
        stack.close()
    print("drained running jobs; service stopped", flush=True)
    return 0


def _cmd_data(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.data.ooc import (
        DEFAULT_CHUNK_ROWS,
        PACK_SIDECAR,
        open_dataset,
        pack_dataset,
        packed_fingerprint,
    )

    if args.data_command == "pack":
        dataset = load_dataset(args.data, args.schema)
        chunk_rows = args.chunk_rows or DEFAULT_CHUNK_ROWS
        path = pack_dataset(dataset, args.out, chunk_rows=chunk_rows)
        print(
            f"packed {dataset.n_rows} rows x {len(list(dataset.schema))} "
            f"columns -> {path}"
        )
        print(f"fingerprint {packed_fingerprint(path)}")
        return 0

    dataset = open_dataset(args.path, verify=args.verify)
    payload = json_module.loads((Path(args.path) / PACK_SIDECAR).read_text())
    if args.format == "json":
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"packed dataset {dataset.path}")
    print(f"rows           {dataset.n_rows}")
    print(f"fingerprint    {payload['fingerprint']}")
    if args.verify:
        print("verify         OK (column bytes match the fingerprint)")
    print()
    print(f"{'column':<24} {'kind':<12} {'role':<12} {'dtype':<8} categories")
    for entry in payload["columns"]:
        col = dataset.schema[entry["name"]]
        codes = entry.get("codes")
        cats = (
            ", ".join(repr(c) for c in codes["categories"])
            if codes
            else "-"
        )
        print(
            f"{entry['name']:<24} {col.kind:<12} {col.role:<12} "
            f"{entry['dtype']:<8} {cats}"
        )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "audit": _cmd_audit,
    "merge-state": _cmd_merge_state,
    "monitor": _cmd_monitor,
    "subgroups": _cmd_subgroups,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "recommend": _cmd_recommend,
    "statutes": _cmd_statutes,
    "define": _cmd_define,
    "workflow": _cmd_workflow,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "events": _cmd_events,
    "data": _cmd_data,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(
        verbosity=-1 if args.quiet else args.verbose,
        json_lines=args.log_json,
    )
    import json

    trace_out = getattr(args, "trace_out", None)
    tracer = Tracer() if trace_out else None
    snapshot: dict = {}
    try:
        if tracer is None:
            return _COMMANDS[args.command](args)
        # A traced run gets its own metrics registry so the snapshot in
        # the trace file covers exactly this invocation.
        from repro.observability import use_metrics

        with use_tracer(tracer), use_metrics() as registry:
            try:
                return _COMMANDS[args.command](args)
            finally:
                snapshot = registry.snapshot()
    except ReproError as exc:
        _LOG.error("%s", exc)
        return 2
    except FileNotFoundError as exc:
        _LOG.error("%s", exc)
        return 2
    except json.JSONDecodeError as exc:
        _LOG.error("malformed JSON input: %s", exc)
        return 2
    finally:
        if tracer is not None:
            # The trace is evidence: write it even when the run degraded
            # or aborted, with the metrics snapshot appended.
            tracer.write(
                trace_out, extra=[{"kind": "metrics", **snapshot}]
            )
            _LOG.info("trace written to %s", trace_out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
