"""Compare audit reports across model versions or mitigations.

Fairness work is iterative: audit, mitigate, re-audit.  A
:class:`ReportComparison` lines up two :class:`~repro.core.audit.AuditReport`
objects finding-by-finding and classifies each metric as improved,
regressed, unchanged, newly fixed, or newly broken — the diff a
compliance reviewer actually wants to read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.audit import AuditReport
from repro.core.types import ConditionalMetricResult, MetricResult
from repro.exceptions import AuditError

__all__ = ["MetricDelta", "ReportComparison", "compare_reports"]

#: |gap| change below which a metric is reported as unchanged
_NOISE_FLOOR = 1e-3


@dataclass(frozen=True)
class MetricDelta:
    """Change in one (attribute, metric) between two audits."""

    attribute: str
    metric: str
    gap_before: float | None
    gap_after: float | None
    satisfied_before: bool | None
    satisfied_after: bool | None

    @property
    def classification(self) -> str:
        """One of fixed / broken / improved / regressed / unchanged /
        incomparable."""
        if self.gap_before is None or self.gap_after is None:
            return "incomparable"
        if not self.satisfied_before and self.satisfied_after:
            return "fixed"
        if self.satisfied_before and not self.satisfied_after:
            return "broken"
        change = self.gap_after - self.gap_before
        if abs(change) <= _NOISE_FLOOR:
            return "unchanged"
        return "improved" if change < 0 else "regressed"

    @property
    def gap_change(self) -> float | None:
        if self.gap_before is None or self.gap_after is None:
            return None
        return self.gap_after - self.gap_before

    def __repr__(self) -> str:
        return (
            f"MetricDelta({self.attribute}/{self.metric}: "
            f"{self.classification}, gap {self.gap_before} → "
            f"{self.gap_after})"
        )


def _gap_and_verdict(finding) -> tuple[float | None, bool | None]:
    result = finding.result
    if isinstance(result, (MetricResult, ConditionalMetricResult)):
        return float(result.gap), bool(result.satisfied)
    return None, None


@dataclass
class ReportComparison:
    """All metric deltas between a *before* and an *after* report."""

    deltas: list

    def by_classification(self, classification: str) -> list[MetricDelta]:
        return [d for d in self.deltas if d.classification == classification]

    @property
    def fixed(self) -> list[MetricDelta]:
        return self.by_classification("fixed")

    @property
    def broken(self) -> list[MetricDelta]:
        return self.by_classification("broken")

    @property
    def improved(self) -> list[MetricDelta]:
        return self.by_classification("improved")

    @property
    def regressed(self) -> list[MetricDelta]:
        return self.by_classification("regressed")

    @property
    def is_strict_improvement(self) -> bool:
        """No metric broke or regressed, and at least one improved/fixed."""
        return (
            not self.broken
            and not self.regressed
            and bool(self.fixed or self.improved)
        )

    def summary(self) -> str:
        """One-paragraph human summary of the diff."""
        parts = []
        for label in ("fixed", "broken", "improved", "regressed",
                      "unchanged"):
            members = self.by_classification(label)
            if members:
                names = ", ".join(
                    f"{d.attribute}/{d.metric}" for d in members
                )
                parts.append(f"{label}: {names}")
        return "; ".join(parts) if parts else "no comparable findings"


def compare_reports(
    before: AuditReport, after: AuditReport
) -> ReportComparison:
    """Line up two audit reports finding-by-finding.

    Findings are matched on (attribute, metric).  A finding present in
    only one report, or skipped in either, yields an ``incomparable``
    delta rather than being dropped silently.
    """
    if not isinstance(before, AuditReport) or not isinstance(after, AuditReport):
        raise AuditError("compare_reports expects two AuditReport objects")

    def index(report: AuditReport) -> dict:
        return {
            (f.attribute, f.metric): f for f in report.all_findings()
        }

    before_index = index(before)
    after_index = index(after)
    deltas = []
    for key in sorted(set(before_index) | set(after_index)):
        attribute, metric = key
        gap_b, ok_b = (
            _gap_and_verdict(before_index[key])
            if key in before_index else (None, None)
        )
        gap_a, ok_a = (
            _gap_and_verdict(after_index[key])
            if key in after_index else (None, None)
        )
        deltas.append(MetricDelta(
            attribute=attribute,
            metric=metric,
            gap_before=gap_b,
            gap_after=gap_a,
            satisfied_before=ok_b,
            satisfied_after=ok_a,
        ))
    return ReportComparison(deltas=deltas)
