"""Fairness audit engine: metric batteries over datasets and models.

A :class:`FairnessAudit` evaluates a configurable battery of the paper's
metrics over every protected attribute of a dataset (and, when more than
one protected attribute exists, over their intersection — the Section
IV.C drill-down), attaching statistical significance and legal screens to
each finding.  The output :class:`AuditReport` renders to markdown via
:mod:`repro.core.report`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_binary_array
from repro.core.config import AuditConfig
from repro.core.legal import FourFifthsFinding, four_fifths_rule
from repro.core.metrics import (
    calibration_within_groups,
    conditional_demographic_disparity,
    conditional_statistical_parity,
    demographic_disparity,
    demographic_parity,
    disparate_impact_ratio,
    equal_opportunity,
    equalized_odds,
    false_positive_rate_parity,
    overall_accuracy_equality,
    predictive_parity,
    treatment_equality,
)
from repro.core.types import ConditionalMetricResult, MetricResult
from repro.data.dataset import TabularDataset
from repro.exceptions import AuditError, InsufficientDataError, MetricError
from repro.kernel import get_backend
from repro.observability.provenance import ProvenanceRecord
from repro.robustness import ExecutionPolicy, StageRunner
from repro.stats.tests import min_detectable_gap

__all__ = [
    "AuditFinding",
    "AuditReport",
    "BatteryMetric",
    "BATTERY_REGISTRY",
    "FairnessAudit",
    "battery_metrics",
    "intersection_column",
]


@dataclass(frozen=True)
class BatteryMetric:
    """Registry entry for one battery metric: name plus what it needs.

    The flags drive the audit's skip decisions and let callers (CLI,
    docs, config validation) reason about a metric without importing its
    implementation.
    """

    name: str
    paper_section: str
    needs_labels: bool = False
    needs_strata: bool = False
    needs_probabilities: bool = False
    description: str = ""


#: Canonical registry of every battery metric, in canonical report
#: order.  This is the *single* source of battery names: AuditConfig
#: subsets, ``FairnessAudit.run``, the intersectional drill-down, and
#: the CLI ``--metric`` flag all validate against it.
BATTERY_REGISTRY: dict[str, BatteryMetric] = {
    entry.name: entry
    for entry in (
        BatteryMetric(
            "demographic_parity", "III.A",
            description="equal positive-prediction rates across groups",
        ),
        BatteryMetric(
            "conditional_statistical_parity", "III.B", needs_strata=True,
            description="parity within each legitimate stratum",
        ),
        BatteryMetric(
            "equal_opportunity", "III.C", needs_labels=True,
            description="equal true-positive rates across groups",
        ),
        BatteryMetric(
            "equalized_odds", "III.D", needs_labels=True,
            description="equal TPR and FPR across groups",
        ),
        BatteryMetric(
            "demographic_disparity", "III.E",
            description="share-of-positives vs share-of-population gap",
        ),
        BatteryMetric(
            "conditional_demographic_disparity", "III.F", needs_strata=True,
            description="demographic disparity within strata",
        ),
        BatteryMetric(
            "predictive_parity", "III.D", needs_labels=True,
            description="equal precision across groups",
        ),
        BatteryMetric(
            "treatment_equality", "III.D", needs_labels=True,
            description="equal FN/FP ratios across groups",
        ),
        BatteryMetric(
            "false_positive_rate_parity", "III.D", needs_labels=True,
            description="equal false-positive rates across groups",
        ),
        BatteryMetric(
            "overall_accuracy_equality", "III.D", needs_labels=True,
            description="equal accuracy across groups",
        ),
        BatteryMetric(
            "disparate_impact_ratio", "II.B",
            description="selection-rate ratio with the four-fifths screen",
        ),
        BatteryMetric(
            "calibration_within_groups", "III.D", needs_labels=True,
            needs_probabilities=True,
            description="equal score calibration across groups",
        ),
    )
}

#: legacy alias — the full battery as a name tuple
_BATTERY = tuple(BATTERY_REGISTRY)


def battery_metrics(subset=None) -> tuple[str, ...]:
    """Validate a battery subset against :data:`BATTERY_REGISTRY`.

    ``None`` returns the full battery in canonical order; an explicit
    subset keeps the caller's order (deduplicated) so existing reports
    that relied on a custom evaluation order stay stable.  Unknown
    names raise :class:`~repro.exceptions.AuditError`.
    """
    if subset is None:
        return _BATTERY
    names = list(dict.fromkeys(subset))
    unknown = [name for name in names if name not in BATTERY_REGISTRY]
    if unknown:
        raise AuditError(
            f"unknown battery metrics {unknown}; "
            f"known: {list(BATTERY_REGISTRY)}"
        )
    if not names:
        raise AuditError("battery subset is empty")
    return tuple(names)


#: battery metrics that compare predictions against ground-truth labels
_LABEL_METRICS = {
    "equal_opportunity": equal_opportunity,
    "equalized_odds": equalized_odds,
    "predictive_parity": predictive_parity,
    "treatment_equality": treatment_equality,
    "false_positive_rate_parity": false_positive_rate_parity,
    "overall_accuracy_equality": overall_accuracy_equality,
}


@dataclass(frozen=True)
class AuditFinding:
    """One (attribute, metric) evaluation within an audit.

    ``status`` is ``"ok"`` when the metric evaluated, ``"skipped"`` when
    it could not be computed (with the reason recorded), or ``"error"``
    when the metric *raised* — the supervised runner isolates the fault,
    captures its traceback here, and the rest of the battery continues.
    Audits never let one metric abort the whole battery; they surface it.
    """

    attribute: str
    metric: str
    status: str
    result: MetricResult | ConditionalMetricResult | None = None
    reason: str = ""
    four_fifths: FourFifthsFinding | None = None
    traceback: str = ""

    @property
    def satisfied(self) -> bool | None:
        """Metric verdict; None when the finding was skipped."""
        if self.result is None:
            return None
        return self.result.satisfied

    def to_dict(self) -> dict:
        """JSON-able dict (see :func:`repro.core.serialize.finding_to_dict`)."""
        from repro.core.serialize import finding_to_dict

        return finding_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditFinding":
        """Rebuild a finding written by :meth:`to_dict`."""
        from repro.core.serialize import finding_from_dict

        return finding_from_dict(payload)


@dataclass
class AuditReport:
    """All findings of one audit run, with convenience accessors."""

    dataset_summary: dict
    tolerance: float
    findings: list = field(default_factory=list)
    intersectional_findings: list = field(default_factory=list)
    power_notes: dict = field(default_factory=dict)
    degradations: list = field(default_factory=list)
    provenance: ProvenanceRecord | None = None

    def all_findings(self) -> list[AuditFinding]:
        return list(self.findings) + list(self.intersectional_findings)

    def violations(self) -> list[AuditFinding]:
        """Findings whose metric evaluated and is violated."""
        return [f for f in self.all_findings() if f.satisfied is False]

    def passes(self) -> list[AuditFinding]:
        return [f for f in self.all_findings() if f.satisfied is True]

    def skipped(self) -> list[AuditFinding]:
        return [f for f in self.all_findings() if f.status == "skipped"]

    def errors(self) -> list[AuditFinding]:
        """Findings whose metric raised or timed out under supervision."""
        return [f for f in self.all_findings() if f.status == "error"]

    @property
    def degraded(self) -> bool:
        """True when any stage errored or timed out (paper V: a partial
        audit must say so)."""
        return bool(self.errors()) or bool(self.degradations)

    def finding(self, attribute: str, metric: str) -> AuditFinding:
        """Look up one finding by attribute and metric name."""
        for f in self.all_findings():
            if f.attribute == attribute and f.metric == metric:
                return f
        raise AuditError(
            f"no finding for attribute={attribute!r}, metric={metric!r}"
        )

    @property
    def is_clean(self) -> bool:
        """True when no evaluated metric is violated."""
        return not self.violations()

    def to_markdown(self) -> str:
        """Render via :func:`repro.core.report.render_markdown`."""
        from repro.core.report import render_markdown

        return render_markdown(self)

    def to_dict(self) -> dict:
        """JSON-able dict (see :func:`repro.core.serialize.report_to_dict`)."""
        from repro.core.serialize import report_to_dict

        return report_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditReport":
        """Rebuild a report written by :meth:`to_dict`."""
        from repro.core.serialize import report_from_dict

        return report_from_dict(payload)


def _skip_reason(exc: Exception) -> str:
    """Human-readable skip reason, with the structured sparse-group
    evidence (paper IV.C) that :class:`InsufficientDataError` carries."""
    reason = str(exc)
    if isinstance(exc, InsufficientDataError) and exc.group is not None:
        reason += f" [group={exc.group}, n={exc.count}]"
    return reason


def intersection_column(
    dataset: TabularDataset, attributes: list[str], separator: str = "×"
) -> np.ndarray:
    """Combine protected columns into one subgroup label per row.

    ``["gender", "race"]`` → values like ``"female×caucasian"``.
    """
    if len(attributes) < 2:
        raise AuditError("intersection requires at least two attributes")
    if get_backend() == "kernel":
        # Concatenate the (few) category labels, not the (many) rows:
        # one lookup-table index per row instead of per-row string joins.
        tables = [dataset.codes(a) for a in attributes]
        labels = tables[0].categories_array.astype(str)
        codes = tables[0].codes
        for table in tables[1:]:
            part = table.categories_array.astype(str)
            labels = np.char.add(
                np.char.add(labels[:, None], separator), part[None, :]
            ).ravel()
            codes = codes * table.n_categories + table.codes
        combined = labels[codes]
        # Pre-register the combined column's CodeTable, derived from the
        # (few) cross-product labels instead of the (many) rows: without
        # it, the first metric over `combined` np.unique-sorts an n-row
        # string array — the dominant time *and* transient-memory cost
        # of a large audit.  The table must match what encode(combined)
        # would build bit for bit: only categories present in the rows,
        # in repr-sorted order.
        from repro.kernel.codes import CodeTable, cache_put

        present = np.bincount(codes, minlength=len(labels)) > 0
        uniques = np.sort(labels[present])
        unique_list = uniques.tolist()
        order = sorted(
            range(len(unique_list)), key=lambda i: repr(unique_list[i])
        )
        cats = [unique_list[i] for i in order]
        positions = {category: code for code, category in enumerate(cats)}
        remap = np.full(len(labels), -1, dtype=np.int64)
        for label_index in np.flatnonzero(present):
            remap[label_index] = positions[labels[label_index]]
        table = CodeTable(cats, uniques[order], remap[codes])
        cache_put((combined,), ("codes", None), table)
        return combined
    parts = [dataset.column(a).astype(str) for a in attributes]
    combined = parts[0]
    for part in parts[1:]:
        combined = np.char.add(np.char.add(combined, separator), part)
    return combined


#: sentinel distinguishing "legacy kwarg passed" from its default
_UNSET = object()

_LEGACY_KWARGS_MESSAGE = (
    "passing audit settings ({names}) as individual keywords is "
    "deprecated; bundle them into an AuditConfig and pass config=... "
    "(or call the repro.audit() façade)"
)


def _resolve_config(config: AuditConfig | None, legacy: dict) -> AuditConfig:
    """Merge deprecated per-keyword settings into an AuditConfig.

    ``legacy`` maps config field names to values, with :data:`_UNSET`
    for keywords the caller did not pass.  Any explicitly-passed legacy
    keyword emits one :class:`DeprecationWarning` naming the offending
    keywords, then overrides the corresponding config field.
    """
    passed = {k: v for k, v in legacy.items() if v is not _UNSET}
    if passed:
        warnings.warn(
            _LEGACY_KWARGS_MESSAGE.format(names=", ".join(sorted(passed))),
            DeprecationWarning,
            stacklevel=3,
        )
        return (config if config is not None else AuditConfig()).replace(
            **passed
        )
    return config if config is not None else AuditConfig()


class FairnessAudit:
    """Configure and run a fairness-metric battery.

    Parameters
    ----------
    dataset:
        The audited dataset; protected attributes are taken from its
        schema.
    predictions:
        Binary model outputs aligned with the dataset rows.  When omitted,
        the audit evaluates the dataset's *labels* instead — a data audit
        rather than a model audit (detects historical bias in Y itself).
    probabilities:
        Optional model scores enabling the calibration metric.
    config:
        An :class:`~repro.core.config.AuditConfig` carrying every
        setting: tolerance, strata column, battery subset,
        ``min_stratum_group_size``, the supervising
        :class:`~repro.robustness.ExecutionPolicy`, the chaos-testing
        :class:`~repro.robustness.FaultInjector`, and the
        :class:`~repro.observability.Tracer`.  ``None`` uses the
        defaults.

    .. deprecated:: 1.3
        The individual ``tolerance``/``strata``/``min_stratum_group_size``
        /``policy``/``faults``/``tracer`` keywords still work but emit a
        :class:`DeprecationWarning`; pass ``config=AuditConfig(...)``
        (they override the matching config fields when both are given).
    """

    def __init__(
        self,
        dataset: TabularDataset,
        predictions=None,
        tolerance=_UNSET,
        strata=_UNSET,
        probabilities=None,
        min_stratum_group_size=_UNSET,
        policy=_UNSET,
        faults=_UNSET,
        tracer=_UNSET,
        *,
        config: AuditConfig | None = None,
    ):
        config = _resolve_config(
            config,
            {
                "tolerance": tolerance,
                "strata": strata,
                "min_stratum_group_size": min_stratum_group_size,
                "policy": policy,
                "faults": faults,
                "tracer": tracer,
            },
        )
        self.config = config
        self.dataset = dataset
        self.protected_attributes = dataset.schema.protected_names
        if not self.protected_attributes:
            raise AuditError("dataset declares no protected attributes")
        if predictions is None:
            if dataset.schema.label_name is None:
                raise AuditError(
                    "no predictions given and dataset has no label column"
                )
            predictions = dataset.labels()
            self.audits_labels = True
        else:
            self.audits_labels = False
        self.predictions = check_binary_array(predictions, "predictions")
        self._power_notes_cache: dict | None = None
        if len(self.predictions) != dataset.n_rows:
            raise AuditError(
                f"predictions length {len(self.predictions)} != dataset rows "
                f"{dataset.n_rows}"
            )
        self.tolerance = config.tolerance
        if config.strata is not None and config.strata not in dataset.schema:
            raise AuditError(
                f"strata column {config.strata!r} not in dataset"
            )
        self.strata = config.strata
        self.probabilities = (
            None if probabilities is None else np.asarray(probabilities, float)
        )
        if (
            self.probabilities is not None
            and len(self.probabilities) != dataset.n_rows
        ):
            raise AuditError("probabilities length does not match dataset")
        self.min_stratum_group_size = int(config.min_stratum_group_size)
        self.policy = (
            config.policy if config.policy is not None else ExecutionPolicy()
        )
        self.faults = config.faults
        self.tracer = config.tracer

    @classmethod
    def from_prediction_column(
        cls,
        dataset: TabularDataset,
        prediction_column: str = "prediction",
        **kwargs,
    ) -> "FairnessAudit":
        """Audit predictions stored as a dataset column.

        Convenience for datasets built with
        :meth:`TabularDataset.with_predictions`: the named column is used
        as the audited outcomes and excluded from the label side.
        """
        if prediction_column not in dataset.schema:
            raise AuditError(
                f"dataset has no column {prediction_column!r}"
            )
        return cls(
            dataset, predictions=dataset.column(prediction_column), **kwargs
        )

    # -- battery pieces ------------------------------------------------------

    def _labels(self) -> np.ndarray | None:
        name = self.dataset.schema.label_name
        return None if name is None else self.dataset.labels()

    def _evaluate(self, metric: str, attribute: str) -> AuditFinding:
        groups = self.dataset.column(attribute)
        strata = (
            self.dataset.column(self.strata) if self.strata is not None else None
        )
        labels = self._labels()
        tol = self.tolerance
        try:
            if metric == "demographic_parity":
                result = demographic_parity(
                    self.predictions, groups, tolerance=tol, with_significance=True
                )
            elif metric == "conditional_statistical_parity":
                if strata is None:
                    return AuditFinding(
                        attribute, metric, "skipped",
                        reason="no strata column configured",
                    )
                result = conditional_statistical_parity(
                    self.predictions, groups, strata, tolerance=tol,
                    min_stratum_group_size=self.min_stratum_group_size,
                )
            elif metric in _LABEL_METRICS:
                if labels is None or self.audits_labels:
                    return AuditFinding(
                        attribute, metric, "skipped",
                        reason="requires ground-truth labels distinct from "
                        "the audited outcomes",
                    )
                if metric == "equal_opportunity":
                    result = equal_opportunity(
                        labels, self.predictions, groups, tolerance=tol,
                        with_significance=True,
                    )
                else:
                    result = _LABEL_METRICS[metric](
                        labels, self.predictions, groups, tolerance=tol
                    )
            elif metric == "demographic_disparity":
                result = demographic_disparity(
                    self.predictions, groups, tolerance=tol
                )
            elif metric == "conditional_demographic_disparity":
                if strata is None:
                    return AuditFinding(
                        attribute, metric, "skipped",
                        reason="no strata column configured",
                    )
                result = conditional_demographic_disparity(
                    self.predictions, groups, strata, tolerance=tol,
                    min_stratum_group_size=self.min_stratum_group_size,
                )
            elif metric == "disparate_impact_ratio":
                result = disparate_impact_ratio(self.predictions, groups)
                return AuditFinding(
                    attribute, metric, "ok", result=result,
                    four_fifths=four_fifths_rule(result.rates()),
                )
            elif metric == "calibration_within_groups":
                if self.probabilities is None or labels is None:
                    return AuditFinding(
                        attribute, metric, "skipped",
                        reason="requires probability scores and labels",
                    )
                result = calibration_within_groups(
                    labels, self.probabilities, groups
                )
            else:
                raise AuditError(f"unknown battery metric {metric!r}")
        except (InsufficientDataError, MetricError) as exc:
            return AuditFinding(
                attribute, metric, "skipped", reason=_skip_reason(exc)
            )
        return AuditFinding(attribute, metric, "ok", result=result)

    def _power_note(self, attribute: str) -> dict:
        """Minimum detectable gap for this attribute's two largest groups."""
        if get_backend() == "kernel":
            return dict(self._power_note_table().get(attribute, {}))
        _values, counts = np.unique(
            self.dataset.column(attribute), return_counts=True
        )
        if len(counts) < 2:
            return {}
        top = np.sort(counts)[-2:]
        base_rate = self._power_base_rate()
        return {
            "n_a": int(top[1]),
            "n_b": int(top[0]),
            "min_detectable_gap": min_detectable_gap(
                int(top[1]), int(top[0]), base_rate=base_rate
            ),
        }

    def _power_base_rate(self) -> float:
        base_rate = float(np.mean(self.predictions))
        return min(max(base_rate, 0.05), 0.95)

    def _power_note_table(self) -> dict:
        """Power notes for every protected attribute, one batched call.

        Group sizes come from the cached kernel code tables and the
        minimum detectable gaps for all attributes are computed with a
        single :func:`~repro.stats.batch.batch_min_detectable_gap` —
        values bit-identical to the per-attribute scalar path kept on
        the ``"reference"`` backend.  Cached for the audit's lifetime.
        """
        if self._power_notes_cache is not None:
            return self._power_notes_cache
        from repro.stats.batch import batch_min_detectable_gap

        eligible: list[str] = []
        pairs: list[tuple[int, int]] = []
        for attribute in self.protected_attributes:
            counts = self.dataset.codes(attribute).counts()
            if len(counts) < 2:
                continue
            top = np.sort(counts)[-2:]
            eligible.append(attribute)
            pairs.append((int(top[1]), int(top[0])))
        table: dict = {}
        if pairs:
            gaps = batch_min_detectable_gap(
                np.array([big for big, _ in pairs], dtype=np.int64),
                np.array([small for _, small in pairs], dtype=np.int64),
                base_rate=self._power_base_rate(),
            )
            for attribute, (big, small), gap in zip(eligible, pairs, gaps):
                table[attribute] = {
                    "n_a": big,
                    "n_b": small,
                    "min_detectable_gap": float(gap),
                }
        self._power_notes_cache = table
        return table

    # -- the run -----------------------------------------------------------------

    def run(self, metrics: tuple | None = None) -> AuditReport:
        """Execute the battery and return an :class:`AuditReport`.

        ``metrics`` defaults to the config's battery subset (the full
        battery unless ``AuditConfig.metrics`` narrowed it); an explicit
        tuple is validated against :data:`BATTERY_REGISTRY` and
        evaluated in the given order.

        Every (attribute, metric) evaluation runs as a supervised stage
        under this audit's :class:`~repro.robustness.ExecutionPolicy`:
        a raising metric becomes a ``status="error"`` finding (with
        captured traceback) rather than aborting the battery, transient
        failures are retried, and a deadline — when configured — cuts
        off hangs.  Only a fail-closed policy (``fail_fast`` or an
        exhausted ``max_failures`` budget) raises, as
        :class:`~repro.exceptions.DegradedRunError`.
        """
        from repro.observability.trace import get_tracer

        metrics = (
            self.config.battery()
            if metrics is None
            else battery_metrics(metrics)
        )

        tracer = self.tracer if self.tracer is not None else get_tracer()
        report = AuditReport(
            dataset_summary={
                "n_rows": self.dataset.n_rows,
                "protected_attributes": list(self.protected_attributes),
                "audits_labels": self.audits_labels,
                "strata": self.strata,
            },
            tolerance=self.tolerance,
        )
        runner = StageRunner(self.policy, faults=self.faults, tracer=tracer)
        with tracer.span(
            "audit.run",
            n_rows=self.dataset.n_rows,
            attributes=list(self.protected_attributes),
            tolerance=self.tolerance,
            audits_labels=self.audits_labels,
        ):
            for attribute in self.protected_attributes:
                for metric in metrics:
                    outcome = runner.run(
                        f"audit:{attribute}:{metric}",
                        self._evaluate, metric, attribute,
                    )
                    if outcome.ok:
                        report.findings.append(outcome.value)
                    else:
                        report.findings.append(
                            AuditFinding(
                                attribute, metric, "error",
                                reason=f"{outcome.error_type}: {outcome.error}",
                                traceback=outcome.traceback,
                            )
                        )
                note = runner.run(
                    f"power:{attribute}", self._power_note, attribute
                )
                report.power_notes[attribute] = note.value if note.ok else {}

            if len(self.protected_attributes) >= 2:
                name = "×".join(self.protected_attributes)
                outcome = runner.run(
                    "audit:intersection", self._intersectional, metrics
                )
                if outcome.ok:
                    report.intersectional_findings.extend(outcome.value)
                else:
                    report.intersectional_findings.append(
                        AuditFinding(
                            name, "intersection", "error",
                            reason=f"{outcome.error_type}: {outcome.error}",
                            traceback=outcome.traceback,
                        )
                    )
        report.degradations = runner.degradations
        report.provenance = ProvenanceRecord.collect(
            self.dataset, self.policy, runner, tracer=tracer
        )
        return report

    def _intersectional(self, metrics: tuple) -> list[AuditFinding]:
        """Re-run the outcome metrics over the crossed subgroups (IV.C)."""
        combined = intersection_column(self.dataset, self.protected_attributes)
        name = "×".join(self.protected_attributes)
        findings = []
        wanted = [
            m
            for m in ("demographic_parity", "disparate_impact_ratio")
            if m in metrics
        ]
        for metric in wanted:
            try:
                if metric == "demographic_parity":
                    result = demographic_parity(
                        self.predictions, combined, tolerance=self.tolerance,
                        with_significance=True,
                    )
                    findings.append(AuditFinding(name, metric, "ok", result=result))
                else:
                    result = disparate_impact_ratio(self.predictions, combined)
                    findings.append(
                        AuditFinding(
                            name, metric, "ok", result=result,
                            four_fifths=four_fifths_rule(result.rates()),
                        )
                    )
            except (InsufficientDataError, MetricError) as exc:
                findings.append(
                    AuditFinding(
                        name, metric, "skipped", reason=_skip_reason(exc)
                    )
                )
        return findings
