"""Fairness audit engine: metric batteries over datasets and models.

A :class:`FairnessAudit` evaluates a configurable battery of the paper's
metrics over every protected attribute of a dataset (and, when more than
one protected attribute exists, over their intersection — the Section
IV.C drill-down), attaching statistical significance and legal screens to
each finding.  The output :class:`AuditReport` renders to markdown via
:mod:`repro.core.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_binary_array, check_probability
from repro.core.legal import four_fifths_rule
from repro.core.metrics import (
    calibration_within_groups,
    conditional_demographic_disparity,
    conditional_statistical_parity,
    demographic_disparity,
    demographic_parity,
    disparate_impact_ratio,
    equal_opportunity,
    equalized_odds,
    false_positive_rate_parity,
    overall_accuracy_equality,
    predictive_parity,
    treatment_equality,
)
from repro.core.types import ConditionalMetricResult, MetricResult
from repro.data.dataset import TabularDataset
from repro.exceptions import AuditError, InsufficientDataError, MetricError
from repro.kernel import get_backend
from repro.robustness import ExecutionPolicy, StageRunner
from repro.stats.tests import min_detectable_gap

__all__ = ["AuditFinding", "AuditReport", "FairnessAudit", "intersection_column"]

#: metrics runnable from (y_true, predictions, protected, strata) data alone
_BATTERY = (
    "demographic_parity",
    "conditional_statistical_parity",
    "equal_opportunity",
    "equalized_odds",
    "demographic_disparity",
    "conditional_demographic_disparity",
    "predictive_parity",
    "treatment_equality",
    "false_positive_rate_parity",
    "overall_accuracy_equality",
    "disparate_impact_ratio",
    "calibration_within_groups",
)

#: battery metrics that compare predictions against ground-truth labels
_LABEL_METRICS = {
    "equal_opportunity": equal_opportunity,
    "equalized_odds": equalized_odds,
    "predictive_parity": predictive_parity,
    "treatment_equality": treatment_equality,
    "false_positive_rate_parity": false_positive_rate_parity,
    "overall_accuracy_equality": overall_accuracy_equality,
}


@dataclass(frozen=True)
class AuditFinding:
    """One (attribute, metric) evaluation within an audit.

    ``status`` is ``"ok"`` when the metric evaluated, ``"skipped"`` when
    it could not be computed (with the reason recorded), or ``"error"``
    when the metric *raised* — the supervised runner isolates the fault,
    captures its traceback here, and the rest of the battery continues.
    Audits never let one metric abort the whole battery; they surface it.
    """

    attribute: str
    metric: str
    status: str
    result: MetricResult | ConditionalMetricResult | None = None
    reason: str = ""
    four_fifths: object = None
    traceback: str = ""

    @property
    def satisfied(self) -> bool | None:
        """Metric verdict; None when the finding was skipped."""
        if self.result is None:
            return None
        return self.result.satisfied


@dataclass
class AuditReport:
    """All findings of one audit run, with convenience accessors."""

    dataset_summary: dict
    tolerance: float
    findings: list = field(default_factory=list)
    intersectional_findings: list = field(default_factory=list)
    power_notes: dict = field(default_factory=dict)
    degradations: list = field(default_factory=list)
    provenance: object = None

    def all_findings(self) -> list[AuditFinding]:
        return list(self.findings) + list(self.intersectional_findings)

    def violations(self) -> list[AuditFinding]:
        """Findings whose metric evaluated and is violated."""
        return [f for f in self.all_findings() if f.satisfied is False]

    def passes(self) -> list[AuditFinding]:
        return [f for f in self.all_findings() if f.satisfied is True]

    def skipped(self) -> list[AuditFinding]:
        return [f for f in self.all_findings() if f.status == "skipped"]

    def errors(self) -> list[AuditFinding]:
        """Findings whose metric raised or timed out under supervision."""
        return [f for f in self.all_findings() if f.status == "error"]

    @property
    def degraded(self) -> bool:
        """True when any stage errored or timed out (paper V: a partial
        audit must say so)."""
        return bool(self.errors()) or bool(self.degradations)

    def finding(self, attribute: str, metric: str) -> AuditFinding:
        """Look up one finding by attribute and metric name."""
        for f in self.all_findings():
            if f.attribute == attribute and f.metric == metric:
                return f
        raise AuditError(
            f"no finding for attribute={attribute!r}, metric={metric!r}"
        )

    @property
    def is_clean(self) -> bool:
        """True when no evaluated metric is violated."""
        return not self.violations()

    def to_markdown(self) -> str:
        """Render via :func:`repro.core.report.render_markdown`."""
        from repro.core.report import render_markdown

        return render_markdown(self)


def _skip_reason(exc: Exception) -> str:
    """Human-readable skip reason, with the structured sparse-group
    evidence (paper IV.C) that :class:`InsufficientDataError` carries."""
    reason = str(exc)
    if isinstance(exc, InsufficientDataError) and exc.group is not None:
        reason += f" [group={exc.group}, n={exc.count}]"
    return reason


def intersection_column(
    dataset: TabularDataset, attributes: list[str], separator: str = "×"
) -> np.ndarray:
    """Combine protected columns into one subgroup label per row.

    ``["gender", "race"]`` → values like ``"female×caucasian"``.
    """
    if len(attributes) < 2:
        raise AuditError("intersection requires at least two attributes")
    if get_backend() == "kernel":
        # Concatenate the (few) category labels, not the (many) rows:
        # one lookup-table index per row instead of per-row string joins.
        tables = [dataset.codes(a) for a in attributes]
        labels = tables[0].categories_array.astype(str)
        codes = tables[0].codes
        for table in tables[1:]:
            part = table.categories_array.astype(str)
            labels = np.char.add(
                np.char.add(labels[:, None], separator), part[None, :]
            ).ravel()
            codes = codes * table.n_categories + table.codes
        return labels[codes]
    parts = [dataset.column(a).astype(str) for a in attributes]
    combined = parts[0]
    for part in parts[1:]:
        combined = np.char.add(np.char.add(combined, separator), part)
    return combined


class FairnessAudit:
    """Configure and run a fairness-metric battery.

    Parameters
    ----------
    dataset:
        The audited dataset; protected attributes are taken from its
        schema.
    predictions:
        Binary model outputs aligned with the dataset rows.  When omitted,
        the audit evaluates the dataset's *labels* instead — a data audit
        rather than a model audit (detects historical bias in Y itself).
    tolerance:
        Gap accepted as fair for every parity metric.
    strata:
        Name of a legitimate conditioning column for the conditional
        definitions; they are skipped when absent.
    probabilities:
        Optional model scores enabling the calibration metric.
    min_stratum_group_size:
        Minimum per-group count within a stratum (Section IV.C guard).
    policy:
        :class:`~repro.robustness.ExecutionPolicy` supervising each
        (attribute, metric) evaluation — deadline, retries, failure
        budget, fail-open vs fail-closed.  Defaults to fail-open
        isolation: a raising metric becomes a ``status="error"`` finding
        instead of aborting the battery.
    faults:
        Optional :class:`~repro.robustness.FaultInjector` fired inside
        each supervised stage (chaos-testing hook).
    tracer:
        Optional :class:`~repro.observability.Tracer`.  Defaults to the
        process-current tracer (a no-op unless one was installed with
        :func:`~repro.observability.set_tracer`), so instrumentation is
        free when tracing is off.  When tracing, each (attribute,
        metric) stage becomes a child span of one ``audit.run`` root.
    """

    def __init__(
        self,
        dataset: TabularDataset,
        predictions=None,
        tolerance: float = 0.05,
        strata: str | None = None,
        probabilities=None,
        min_stratum_group_size: int = 5,
        policy: ExecutionPolicy | None = None,
        faults=None,
        tracer=None,
    ):
        self.dataset = dataset
        self.protected_attributes = dataset.schema.protected_names
        if not self.protected_attributes:
            raise AuditError("dataset declares no protected attributes")
        if predictions is None:
            if dataset.schema.label_name is None:
                raise AuditError(
                    "no predictions given and dataset has no label column"
                )
            predictions = dataset.labels()
            self.audits_labels = True
        else:
            self.audits_labels = False
        self.predictions = check_binary_array(predictions, "predictions")
        if len(self.predictions) != dataset.n_rows:
            raise AuditError(
                f"predictions length {len(self.predictions)} != dataset rows "
                f"{dataset.n_rows}"
            )
        self.tolerance = check_probability(tolerance, "tolerance")
        if strata is not None and strata not in dataset.schema:
            raise AuditError(f"strata column {strata!r} not in dataset")
        self.strata = strata
        self.probabilities = (
            None if probabilities is None else np.asarray(probabilities, float)
        )
        if (
            self.probabilities is not None
            and len(self.probabilities) != dataset.n_rows
        ):
            raise AuditError("probabilities length does not match dataset")
        self.min_stratum_group_size = int(min_stratum_group_size)
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.faults = faults
        self.tracer = tracer

    @classmethod
    def from_prediction_column(
        cls,
        dataset: TabularDataset,
        prediction_column: str = "prediction",
        **kwargs,
    ) -> "FairnessAudit":
        """Audit predictions stored as a dataset column.

        Convenience for datasets built with
        :meth:`TabularDataset.with_predictions`: the named column is used
        as the audited outcomes and excluded from the label side.
        """
        if prediction_column not in dataset.schema:
            raise AuditError(
                f"dataset has no column {prediction_column!r}"
            )
        return cls(
            dataset, predictions=dataset.column(prediction_column), **kwargs
        )

    # -- battery pieces ------------------------------------------------------

    def _labels(self) -> np.ndarray | None:
        name = self.dataset.schema.label_name
        return None if name is None else self.dataset.labels()

    def _evaluate(self, metric: str, attribute: str) -> AuditFinding:
        groups = self.dataset.column(attribute)
        strata = (
            self.dataset.column(self.strata) if self.strata is not None else None
        )
        labels = self._labels()
        tol = self.tolerance
        try:
            if metric == "demographic_parity":
                result = demographic_parity(
                    self.predictions, groups, tolerance=tol, with_significance=True
                )
            elif metric == "conditional_statistical_parity":
                if strata is None:
                    return AuditFinding(
                        attribute, metric, "skipped",
                        reason="no strata column configured",
                    )
                result = conditional_statistical_parity(
                    self.predictions, groups, strata, tolerance=tol,
                    min_stratum_group_size=self.min_stratum_group_size,
                )
            elif metric in _LABEL_METRICS:
                if labels is None or self.audits_labels:
                    return AuditFinding(
                        attribute, metric, "skipped",
                        reason="requires ground-truth labels distinct from "
                        "the audited outcomes",
                    )
                if metric == "equal_opportunity":
                    result = equal_opportunity(
                        labels, self.predictions, groups, tolerance=tol,
                        with_significance=True,
                    )
                else:
                    result = _LABEL_METRICS[metric](
                        labels, self.predictions, groups, tolerance=tol
                    )
            elif metric == "demographic_disparity":
                result = demographic_disparity(
                    self.predictions, groups, tolerance=tol
                )
            elif metric == "conditional_demographic_disparity":
                if strata is None:
                    return AuditFinding(
                        attribute, metric, "skipped",
                        reason="no strata column configured",
                    )
                result = conditional_demographic_disparity(
                    self.predictions, groups, strata, tolerance=tol,
                    min_stratum_group_size=self.min_stratum_group_size,
                )
            elif metric == "disparate_impact_ratio":
                result = disparate_impact_ratio(self.predictions, groups)
                return AuditFinding(
                    attribute, metric, "ok", result=result,
                    four_fifths=four_fifths_rule(result.rates()),
                )
            elif metric == "calibration_within_groups":
                if self.probabilities is None or labels is None:
                    return AuditFinding(
                        attribute, metric, "skipped",
                        reason="requires probability scores and labels",
                    )
                result = calibration_within_groups(
                    labels, self.probabilities, groups
                )
            else:
                raise AuditError(f"unknown battery metric {metric!r}")
        except (InsufficientDataError, MetricError) as exc:
            return AuditFinding(
                attribute, metric, "skipped", reason=_skip_reason(exc)
            )
        return AuditFinding(attribute, metric, "ok", result=result)

    def _power_note(self, attribute: str) -> dict:
        """Minimum detectable gap for this attribute's two largest groups."""
        if get_backend() == "kernel":
            counts = self.dataset.codes(attribute).counts()
        else:
            _values, counts = np.unique(
                self.dataset.column(attribute), return_counts=True
            )
        if len(counts) < 2:
            return {}
        top = np.sort(counts)[-2:]
        base_rate = float(np.mean(self.predictions))
        base_rate = min(max(base_rate, 0.05), 0.95)
        return {
            "n_a": int(top[1]),
            "n_b": int(top[0]),
            "min_detectable_gap": min_detectable_gap(
                int(top[1]), int(top[0]), base_rate=base_rate
            ),
        }

    # -- the run -----------------------------------------------------------------

    def run(self, metrics: tuple = _BATTERY) -> AuditReport:
        """Execute the battery and return an :class:`AuditReport`.

        Every (attribute, metric) evaluation runs as a supervised stage
        under this audit's :class:`~repro.robustness.ExecutionPolicy`:
        a raising metric becomes a ``status="error"`` finding (with
        captured traceback) rather than aborting the battery, transient
        failures are retried, and a deadline — when configured — cuts
        off hangs.  Only a fail-closed policy (``fail_fast`` or an
        exhausted ``max_failures`` budget) raises, as
        :class:`~repro.exceptions.DegradedRunError`.
        """
        from repro.observability.provenance import ProvenanceRecord
        from repro.observability.trace import get_tracer

        tracer = self.tracer if self.tracer is not None else get_tracer()
        report = AuditReport(
            dataset_summary={
                "n_rows": self.dataset.n_rows,
                "protected_attributes": list(self.protected_attributes),
                "audits_labels": self.audits_labels,
                "strata": self.strata,
            },
            tolerance=self.tolerance,
        )
        runner = StageRunner(self.policy, faults=self.faults, tracer=tracer)
        with tracer.span(
            "audit.run",
            n_rows=self.dataset.n_rows,
            attributes=list(self.protected_attributes),
            tolerance=self.tolerance,
            audits_labels=self.audits_labels,
        ):
            for attribute in self.protected_attributes:
                for metric in metrics:
                    outcome = runner.run(
                        f"audit:{attribute}:{metric}",
                        self._evaluate, metric, attribute,
                    )
                    if outcome.ok:
                        report.findings.append(outcome.value)
                    else:
                        report.findings.append(
                            AuditFinding(
                                attribute, metric, "error",
                                reason=f"{outcome.error_type}: {outcome.error}",
                                traceback=outcome.traceback,
                            )
                        )
                note = runner.run(
                    f"power:{attribute}", self._power_note, attribute
                )
                report.power_notes[attribute] = note.value if note.ok else {}

            if len(self.protected_attributes) >= 2:
                name = "×".join(self.protected_attributes)
                outcome = runner.run(
                    "audit:intersection", self._intersectional, metrics
                )
                if outcome.ok:
                    report.intersectional_findings.extend(outcome.value)
                else:
                    report.intersectional_findings.append(
                        AuditFinding(
                            name, "intersection", "error",
                            reason=f"{outcome.error_type}: {outcome.error}",
                            traceback=outcome.traceback,
                        )
                    )
        report.degradations = runner.degradations
        report.provenance = ProvenanceRecord.collect(
            self.dataset, self.policy, runner, tracer=tracer
        )
        return report

    def _intersectional(self, metrics: tuple) -> list[AuditFinding]:
        """Re-run the outcome metrics over the crossed subgroups (IV.C)."""
        combined = intersection_column(self.dataset, self.protected_attributes)
        name = "×".join(self.protected_attributes)
        findings = []
        wanted = [
            m
            for m in ("demographic_parity", "disparate_impact_ratio")
            if m in metrics
        ]
        for metric in wanted:
            try:
                if metric == "demographic_parity":
                    result = demographic_parity(
                        self.predictions, combined, tolerance=self.tolerance,
                        with_significance=True,
                    )
                    findings.append(AuditFinding(name, metric, "ok", result=result))
                else:
                    result = disparate_impact_ratio(self.predictions, combined)
                    findings.append(
                        AuditFinding(
                            name, metric, "ok", result=result,
                            four_fifths=four_fifths_rule(result.rates()),
                        )
                    )
            except (InsufficientDataError, MetricError) as exc:
                findings.append(
                    AuditFinding(
                        name, metric, "skipped", reason=_skip_reason(exc)
                    )
                )
        return findings
