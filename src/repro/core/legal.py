"""Legal layer: statutes, doctrines, and metric↔law mappings.

This module encodes Section II of the paper (EU and US anti-discrimination
law) as a queryable catalog, and Section IV.A's classification of each
fairness definition as *equal treatment* vs *equal outcome*, together with
the operational rules courts and agencies actually apply:

* :func:`four_fifths_rule` — the US EEOC 80% rule on selection-rate ratios
  (the standard prima facie disparate-impact screen);
* :class:`ProportionalityTest` — the EU justified-indirect-discrimination
  scaffold (legitimate aim, suitability, necessity, proportionality);
* :func:`doctrines_for_metric` / :func:`metrics_for_doctrine` — which
  algorithmic definitions evidence which legal theory;
* :func:`statutes_protecting` — which statutes cover a protected attribute
  in a given sector and jurisdiction.

The catalog is data, not law: it reflects the paper's presentation and is
not legal advice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import EqualityConcept
from repro.exceptions import LegalCatalogError

__all__ = [
    "Jurisdiction",
    "Doctrine",
    "Statute",
    "STATUTES",
    "statutes_protecting",
    "protected_attributes_in",
    "doctrines_for_metric",
    "metrics_for_doctrine",
    "equality_concept_of",
    "four_fifths_rule",
    "FourFifthsFinding",
    "FourFifthsResult",
    "ProportionalityTest",
]


class Jurisdiction:
    """Jurisdiction tags used by the statute catalog."""

    EU = "eu"
    US = "us"

    ALL = (EU, US)


class Doctrine:
    """The two discrimination theories the paper contrasts (II.A.3, II.B.4).

    EU ``direct``/``indirect`` discrimination map onto US ``disparate
    treatment``/``disparate impact`` respectively; the catalog stores the
    EU-side names and exposes the US aliases.
    """

    DIRECT = "direct_discrimination"  # US: disparate treatment
    INDIRECT = "indirect_discrimination"  # US: disparate impact

    US_ALIASES = {
        DIRECT: "disparate_treatment",
        INDIRECT: "disparate_impact",
    }

    ALL = (DIRECT, INDIRECT)


@dataclass(frozen=True)
class Statute:
    """One legal instrument from the paper's Section II inventory."""

    key: str
    name: str
    jurisdiction: str
    year: int
    protected_attributes: tuple
    sectors: tuple
    doctrines: tuple = (Doctrine.DIRECT, Doctrine.INDIRECT)
    notes: str = ""

    def protects(self, attribute: str, sector: str | None = None) -> bool:
        """Does this statute protect ``attribute`` (optionally in ``sector``)?"""
        if attribute not in self.protected_attributes:
            return False
        if sector is not None and self.sectors and sector not in self.sectors:
            return False
        return True


#: the paper's Section II statute inventory, keyed by short identifier
STATUTES: dict[str, Statute] = {
    statute.key: statute
    for statute in [
        # --- EU (Section II.A) ------------------------------------------
        Statute(
            key="echr_art14",
            name="European Convention on Human Rights, Article 14",
            jurisdiction=Jurisdiction.EU,
            year=1950,
            protected_attributes=(
                "sex", "race", "colour", "language", "religion",
                "political_opinion", "national_origin", "social_origin",
                "national_minority", "property", "birth", "other_status",
            ),
            sectors=(),
            notes="Prohibition accessory to Convention rights; Protocol 12 "
            "(2000) generalises it to any right set forth by law.",
        ),
        Statute(
            key="esc_art_e",
            name="European Social Charter (revised), Part V Article E",
            jurisdiction=Jurisdiction.EU,
            year=1996,
            protected_attributes=(
                "race", "colour", "sex", "language", "religion",
                "political_opinion", "national_origin", "social_origin",
                "health", "national_minority", "birth", "other_status",
            ),
            sectors=(),
        ),
        Statute(
            key="eu_charter_art21",
            name="Charter of Fundamental Rights of the EU, Article 21",
            jurisdiction=Jurisdiction.EU,
            year=2000,
            protected_attributes=(
                "sex", "race", "colour", "ethnic_origin", "social_origin",
                "genetic_features", "language", "religion", "belief",
                "political_opinion", "national_minority", "property",
                "birth", "disability", "age", "sexual_orientation",
            ),
            sectors=(),
            notes="Arts. 20/22/23 add equality before the law, diversity, "
            "and gender equality.",
        ),
        Statute(
            key="eu_2000_43",
            name="Council Directive 2000/43/EC (Racial Equality Directive)",
            jurisdiction=Jurisdiction.EU,
            year=2000,
            protected_attributes=("race", "ethnic_origin"),
            sectors=(
                "employment", "goods_services", "education", "housing",
                "social_protection",
            ),
        ),
        Statute(
            key="eu_2000_78",
            name="Council Directive 2000/78/EC (Employment Equality Directive)",
            jurisdiction=Jurisdiction.EU,
            year=2000,
            protected_attributes=(
                "religion", "belief", "disability", "age", "sexual_orientation",
            ),
            sectors=("employment",),
        ),
        Statute(
            key="eu_2004_113",
            name="Council Directive 2004/113/EC (Gender Goods & Services)",
            jurisdiction=Jurisdiction.EU,
            year=2004,
            protected_attributes=("sex",),
            sectors=("goods_services",),
        ),
        Statute(
            key="eu_2006_54",
            name="Directive 2006/54/EC (Gender Equality, Employment — recast)",
            jurisdiction=Jurisdiction.EU,
            year=2006,
            protected_attributes=("sex",),
            sectors=("employment",),
        ),
        # --- US (Section II.B) ------------------------------------------
        Statute(
            key="title_vii",
            name="Title VII of the Civil Rights Act of 1964",
            jurisdiction=Jurisdiction.US,
            year=1964,
            protected_attributes=(
                "race", "colour", "religion", "national_origin", "sex",
            ),
            sectors=("employment",),
            notes="Addresses disparate treatment and disparate impact; "
            "forbids retaliation.",
        ),
        Statute(
            key="ecoa",
            name="Equal Credit Opportunity Act",
            jurisdiction=Jurisdiction.US,
            year=1974,
            protected_attributes=(
                "race", "colour", "religion", "national_origin", "sex",
                "marital_status", "age", "public_assistance",
            ),
            sectors=("credit",),
        ),
        Statute(
            key="fha",
            name="Title VIII of the Civil Rights Act of 1968 (Fair Housing Act)",
            jurisdiction=Jurisdiction.US,
            year=1968,
            protected_attributes=(
                "race", "colour", "religion", "sex", "familial_status",
                "national_origin", "disability",
            ),
            sectors=("housing",),
        ),
        Statute(
            key="title_vi",
            name="Title VI of the Civil Rights Act of 1964",
            jurisdiction=Jurisdiction.US,
            year=1964,
            protected_attributes=("race", "colour", "national_origin"),
            sectors=("federally_funded_programs",),
        ),
        Statute(
            key="pda",
            name="Pregnancy Discrimination Act of 1978",
            jurisdiction=Jurisdiction.US,
            year=1978,
            protected_attributes=("pregnancy",),
            sectors=("employment",),
            notes="Amendment to Title VII.",
        ),
        Statute(
            key="epa",
            name="Equal Pay Act of 1963",
            jurisdiction=Jurisdiction.US,
            year=1963,
            protected_attributes=("sex",),
            sectors=("employment",),
            notes="Sex-based wage discrimination for equal work.",
        ),
        Statute(
            key="adea",
            name="Age Discrimination in Employment Act of 1967",
            jurisdiction=Jurisdiction.US,
            year=1967,
            protected_attributes=("age",),
            sectors=("employment",),
            notes="Protects individuals aged 40 or older.",
        ),
        Statute(
            key="ada_title_i",
            name="Title I of the Americans with Disabilities Act of 1990",
            jurisdiction=Jurisdiction.US,
            year=1990,
            protected_attributes=("disability",),
            sectors=("employment",),
        ),
        Statute(
            key="cra_1991",
            name="Civil Rights Act of 1991, Sections 102–103",
            jurisdiction=Jurisdiction.US,
            year=1991,
            protected_attributes=(
                "race", "colour", "religion", "national_origin", "sex",
                "disability",
            ),
            sectors=("employment",),
            doctrines=(Doctrine.DIRECT,),
            notes="Jury trials and damages for intentional discrimination.",
        ),
        Statute(
            key="rehab_501_505",
            name="Rehabilitation Act of 1973, Sections 501 and 505",
            jurisdiction=Jurisdiction.US,
            year=1973,
            protected_attributes=("disability",),
            sectors=("federal_government",),
        ),
        Statute(
            key="gina",
            name="Genetic Information Nondiscrimination Act of 2008",
            jurisdiction=Jurisdiction.US,
            year=2008,
            protected_attributes=("genetic_features",),
            sectors=("employment", "health_insurance"),
        ),
        Statute(
            key="pwfa",
            name="Pregnant Workers Fairness Act of 2022",
            jurisdiction=Jurisdiction.US,
            year=2022,
            protected_attributes=("pregnancy",),
            sectors=("employment",),
            notes="Reasonable accommodations absent undue hardship.",
        ),
        Statute(
            key="ina_1965",
            name="Immigration and Nationality Act of 1965",
            jurisdiction=Jurisdiction.US,
            year=1965,
            protected_attributes=("national_origin",),
            sectors=("immigration",),
            notes="Abolished national-origin quota system.",
        ),
    ]
}


def statutes_protecting(
    attribute: str,
    sector: str | None = None,
    jurisdiction: str | None = None,
) -> list[Statute]:
    """Statutes protecting ``attribute``, optionally filtered.

    >>> [s.key for s in statutes_protecting("sex", sector="employment",
    ...                                     jurisdiction="us")]
    ['title_vii', 'epa', 'cra_1991']
    """
    if jurisdiction is not None and jurisdiction not in Jurisdiction.ALL:
        raise LegalCatalogError(
            f"unknown jurisdiction {jurisdiction!r}; use one of "
            f"{Jurisdiction.ALL}"
        )
    hits = []
    for statute in STATUTES.values():
        if jurisdiction is not None and statute.jurisdiction != jurisdiction:
            continue
        if statute.protects(attribute, sector):
            hits.append(statute)
    return hits


def protected_attributes_in(
    sector: str, jurisdiction: str | None = None
) -> set[str]:
    """Union of attributes protected in a sector (for audit planning)."""
    attributes: set[str] = set()
    for statute in STATUTES.values():
        if jurisdiction is not None and statute.jurisdiction != jurisdiction:
            continue
        if not statute.sectors or sector in statute.sectors:
            attributes.update(statute.protected_attributes)
    return attributes


# ---------------------------------------------------------------------------
# Metric ↔ doctrine / equality-concept mappings (paper Section IV.A)
# ---------------------------------------------------------------------------

#: Section IV.A: "definitions A, B, E and F align with equal outcome,
#: while C and D with equal treatment. Definition G comprises a middle
#: ground".
_EQUALITY_CONCEPTS: dict[str, str] = {
    "demographic_parity": EqualityConcept.EQUAL_OUTCOME,
    "conditional_statistical_parity": EqualityConcept.EQUAL_OUTCOME,
    "equal_opportunity": EqualityConcept.EQUAL_TREATMENT,
    "equalized_odds": EqualityConcept.EQUAL_TREATMENT,
    "demographic_disparity": EqualityConcept.EQUAL_OUTCOME,
    "conditional_demographic_disparity": EqualityConcept.EQUAL_OUTCOME,
    "counterfactual_fairness": EqualityConcept.HYBRID,
    "calibration_within_groups": EqualityConcept.EQUAL_TREATMENT,
    "predictive_parity": EqualityConcept.EQUAL_TREATMENT,
    "treatment_equality": EqualityConcept.EQUAL_TREATMENT,
    "false_positive_rate_parity": EqualityConcept.EQUAL_TREATMENT,
    "overall_accuracy_equality": EqualityConcept.EQUAL_TREATMENT,
    "disparate_impact_ratio": EqualityConcept.EQUAL_OUTCOME,
}

#: which doctrine each metric evidences: outcome-rate metrics evidence
#: indirect discrimination / disparate impact; error-rate and
#: counterfactual metrics speak to (absence of) direct discrimination as
#: well because they condition on legitimate qualification.
_METRIC_DOCTRINES: dict[str, tuple] = {
    "demographic_parity": (Doctrine.INDIRECT,),
    "conditional_statistical_parity": (Doctrine.INDIRECT,),
    "equal_opportunity": (Doctrine.INDIRECT, Doctrine.DIRECT),
    "equalized_odds": (Doctrine.INDIRECT, Doctrine.DIRECT),
    "demographic_disparity": (Doctrine.INDIRECT,),
    "conditional_demographic_disparity": (Doctrine.INDIRECT,),
    "counterfactual_fairness": (Doctrine.DIRECT, Doctrine.INDIRECT),
    "calibration_within_groups": (Doctrine.INDIRECT,),
    "predictive_parity": (Doctrine.INDIRECT,),
    "treatment_equality": (Doctrine.INDIRECT,),
    "false_positive_rate_parity": (Doctrine.INDIRECT,),
    "overall_accuracy_equality": (Doctrine.INDIRECT,),
    "disparate_impact_ratio": (Doctrine.INDIRECT,),
}


def equality_concept_of(metric: str) -> str:
    """Section IV.A classification of a metric (outcome/treatment/hybrid)."""
    try:
        return _EQUALITY_CONCEPTS[metric]
    except KeyError:
        raise LegalCatalogError(
            f"unknown metric {metric!r}; known: {sorted(_EQUALITY_CONCEPTS)}"
        ) from None


def doctrines_for_metric(metric: str) -> tuple:
    """Doctrines a metric's violation can evidence."""
    try:
        return _METRIC_DOCTRINES[metric]
    except KeyError:
        raise LegalCatalogError(
            f"unknown metric {metric!r}; known: {sorted(_METRIC_DOCTRINES)}"
        ) from None


def metrics_for_doctrine(doctrine: str) -> list[str]:
    """Metrics whose violation evidences the given doctrine."""
    if doctrine in Doctrine.US_ALIASES.values():
        reverse = {v: k for k, v in Doctrine.US_ALIASES.items()}
        doctrine = reverse[doctrine]
    if doctrine not in Doctrine.ALL:
        raise LegalCatalogError(
            f"unknown doctrine {doctrine!r}; use one of {Doctrine.ALL} or "
            f"{tuple(Doctrine.US_ALIASES.values())}"
        )
    return sorted(
        metric
        for metric, doctrines in _METRIC_DOCTRINES.items()
        if doctrine in doctrines
    )


# ---------------------------------------------------------------------------
# The four-fifths (80%) rule
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FourFifthsFinding:
    """Outcome of the EEOC four-fifths screen."""

    ratio: float
    threshold: float
    passes: bool
    disadvantaged_group: object
    reference_group: object

    def __repr__(self) -> str:
        verdict = "passes" if self.passes else "FAILS"
        return (
            f"FourFifthsFinding(ratio={self.ratio:.3f}, threshold="
            f"{self.threshold}, {verdict}; {self.disadvantaged_group!r} vs "
            f"{self.reference_group!r})"
        )

    def to_dict(self) -> dict:
        """JSON-able dict (group labels coerced to plain Python)."""

        def plain(value):
            if hasattr(value, "item"):  # numpy scalar
                return value.item()
            return value

        return {
            "ratio": float(self.ratio),
            "threshold": float(self.threshold),
            "passes": bool(self.passes),
            "disadvantaged_group": plain(self.disadvantaged_group),
            "reference_group": plain(self.reference_group),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FourFifthsFinding":
        """Rebuild a finding written by :meth:`to_dict`."""
        return cls(
            ratio=float(payload["ratio"]),
            threshold=float(payload["threshold"]),
            passes=bool(payload["passes"]),
            disadvantaged_group=payload["disadvantaged_group"],
            reference_group=payload["reference_group"],
        )


#: Preferred name for the typed four-fifths screen result: audit
#: findings annotate their ``four_fifths`` field with this type.
FourFifthsResult = FourFifthsFinding


def four_fifths_rule(
    selection_rates: dict,
    threshold: float = 0.8,
) -> FourFifthsFinding:
    """EEOC 80% rule on a group→selection-rate mapping.

    The screen compares each group's selection rate to the highest group's
    rate; a ratio below ``threshold`` is prima facie evidence of adverse
    (disparate) impact.
    """
    if not selection_rates:
        raise LegalCatalogError("selection_rates must be non-empty")
    for group, rate in selection_rates.items():
        if not 0.0 <= float(rate) <= 1.0:
            raise LegalCatalogError(
                f"selection rate for {group!r} must be in [0, 1], got {rate}"
            )
    reference = max(selection_rates, key=lambda g: selection_rates[g])
    worst = min(selection_rates, key=lambda g: selection_rates[g])
    ref_rate = selection_rates[reference]
    if ref_rate == 0:
        ratio = 1.0  # nobody is selected: no group is relatively disadvantaged
    else:
        ratio = selection_rates[worst] / ref_rate
    return FourFifthsFinding(
        ratio=float(ratio),
        threshold=float(threshold),
        # small numeric slack so a mathematically exact 0.8 boundary is
        # not failed by floating-point rounding
        passes=bool(ratio >= threshold - 1e-12),
        disadvantaged_group=worst,
        reference_group=reference,
    )


# ---------------------------------------------------------------------------
# EU proportionality test (justified indirect discrimination)
# ---------------------------------------------------------------------------

@dataclass
class ProportionalityTest:
    """Structured record of the EU justified-indirect-discrimination test.

    The paper (II.A.3): a practice with disparate effect can be lawful if
    it pursues a *legitimate aim* through means that are *appropriate*
    (suitable), *necessary* (no less-discriminatory alternative), and
    *proportionate stricto sensu*.  This class documents each prong and
    derives the verdict; it is a structured-reasoning aid, not a court.
    """

    aim: str
    legitimate_aim: bool
    suitable: bool
    necessary: bool
    proportionate: bool
    rationale: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.aim:
            raise LegalCatalogError("a stated aim is required")

    @property
    def justified(self) -> bool:
        """All four prongs must hold for the practice to be justified."""
        return (
            self.legitimate_aim
            and self.suitable
            and self.necessary
            and self.proportionate
        )

    def failing_prongs(self) -> list[str]:
        """Names of the prongs that fail, in test order."""
        prongs = [
            ("legitimate_aim", self.legitimate_aim),
            ("suitable", self.suitable),
            ("necessary", self.necessary),
            ("proportionate", self.proportionate),
        ]
        return [name for name, value in prongs if not value]

    def summary(self) -> str:
        """One-paragraph textual summary of the test outcome."""
        if self.justified:
            return (
                f"The practice pursuing the aim {self.aim!r} passes the "
                "proportionality test: the aim is legitimate and the means "
                "are suitable, necessary, and proportionate."
            )
        failing = ", ".join(self.failing_prongs())
        return (
            f"The practice pursuing the aim {self.aim!r} FAILS the "
            f"proportionality test on: {failing}. Indirect discrimination "
            "is not justified."
        )
