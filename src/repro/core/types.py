"""Result types shared by all fairness metrics.

Every metric returns a :class:`MetricResult` carrying, per protected
group, the relevant rate(s), plus the derived *gap* (max − min rate) and
*ratio* (min / max rate).  The gap supports tolerance-based verdicts, and
the ratio supports the four-fifths rule of :mod:`repro.core.legal`.

Conditional metrics (conditional statistical parity, conditional
demographic disparity) return a :class:`ConditionalMetricResult` holding
one :class:`MetricResult` per stratum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import MetricError
from repro.stats.tests import TestResult

__all__ = [
    "EqualityConcept",
    "GroupStats",
    "MetricResult",
    "ConditionalMetricResult",
]


class EqualityConcept:
    """The paper's Section IV.A taxonomy of what a metric equalises."""

    EQUAL_OUTCOME = "equal_outcome"
    EQUAL_TREATMENT = "equal_treatment"
    HYBRID = "hybrid"

    ALL = (EQUAL_OUTCOME, EQUAL_TREATMENT, HYBRID)


@dataclass(frozen=True)
class GroupStats:
    """Per-group evidence behind a metric value.

    ``rate`` is the metric-specific quantity being equalised across groups
    (selection rate for demographic parity, TPR for equal opportunity, ...).
    """

    group: object
    n: int
    positives: int
    rate: float

    def __post_init__(self):
        if self.n < 0 or self.positives < 0:
            raise MetricError("group counts must be non-negative")
        if self.positives > self.n:
            raise MetricError(
                f"group {self.group!r}: positives ({self.positives}) exceed "
                f"size ({self.n})"
            )


@dataclass(frozen=True)
class MetricResult:
    """Outcome of one fairness-metric evaluation.

    Attributes
    ----------
    metric:
        Machine-readable metric identifier (e.g. ``"demographic_parity"``).
    group_stats:
        Tuple of :class:`GroupStats`, one per protected group.
    gap:
        Max minus min group rate (0 = perfect parity).  For multi-rate
        metrics (equalized odds) this is the worst gap over the rates.
    ratio:
        Min over max group rate (1 = perfect parity); ``nan`` when the max
        rate is 0.  The four-fifths rule thresholds this value.
    tolerance:
        Maximum gap accepted as fair.
    satisfied:
        ``gap <= tolerance`` (with a small numeric slack).
    equality_concept:
        The Section IV.A classification of this metric.
    significance:
        Optional hypothesis-test result for the observed gap.
    details:
        Metric-specific extras (e.g. separate TPR/FPR gaps).
    """

    metric: str
    group_stats: tuple
    gap: float
    ratio: float
    tolerance: float
    satisfied: bool
    equality_concept: str
    significance: TestResult | None = None
    details: dict = field(default_factory=dict)

    def rate_of(self, group) -> float:
        """The rate of one named group."""
        for gs in self.group_stats:
            if gs.group == group:
                return gs.rate
        known = [gs.group for gs in self.group_stats]
        raise MetricError(f"unknown group {group!r}; known: {known}")

    def rates(self) -> dict:
        """group → rate mapping."""
        return {gs.group: gs.rate for gs in self.group_stats}

    def counts(self) -> dict:
        """group → size mapping."""
        return {gs.group: gs.n for gs in self.group_stats}

    def disadvantaged_group(self):
        """The group with the lowest rate (ties broken by group order)."""
        if not self.group_stats:
            raise MetricError("metric has no groups")
        return min(self.group_stats, key=lambda gs: gs.rate).group

    def advantaged_group(self):
        """The group with the highest rate (ties broken by group order)."""
        if not self.group_stats:
            raise MetricError("metric has no groups")
        return max(self.group_stats, key=lambda gs: gs.rate).group

    def __repr__(self) -> str:
        verdict = "satisfied" if self.satisfied else "violated"
        rates = ", ".join(
            f"{gs.group!r}: {gs.rate:.3f}" for gs in self.group_stats
        )
        return (
            f"MetricResult({self.metric}, gap={self.gap:.4f}, "
            f"tolerance={self.tolerance}, {verdict}; rates={{{rates}}})"
        )


@dataclass(frozen=True)
class ConditionalMetricResult:
    """Per-stratum results of a conditional metric.

    ``satisfied`` requires every stratum to be satisfied — conditional
    statistical parity demands parity *within each* legitimate stratum.
    """

    metric: str
    condition: str
    strata: dict  # stratum value -> MetricResult
    tolerance: float
    equality_concept: str
    skipped_strata: tuple = ()

    @property
    def satisfied(self) -> bool:
        return all(r.satisfied for r in self.strata.values())

    @property
    def gap(self) -> float:
        """Worst gap over strata (0 when there are no usable strata)."""
        if not self.strata:
            return 0.0
        return max(r.gap for r in self.strata.values())

    def violating_strata(self) -> list:
        """Stratum values whose within-stratum parity is violated."""
        return [s for s, r in self.strata.items() if not r.satisfied]

    def __repr__(self) -> str:
        verdict = "satisfied" if self.satisfied else "violated"
        return (
            f"ConditionalMetricResult({self.metric} | {self.condition}, "
            f"strata={len(self.strata)}, worst_gap={self.gap:.4f}, {verdict})"
        )


def build_result(
    metric: str,
    group_stats: list[GroupStats],
    tolerance: float,
    equality_concept: str,
    significance: TestResult | None = None,
    details: dict | None = None,
    rate_values: list[float] | None = None,
) -> MetricResult:
    """Assemble a :class:`MetricResult` from per-group stats.

    ``rate_values`` overrides the rates used for gap/ratio computation
    (used by equalized odds where the gap spans two rate families).
    """
    if not group_stats:
        raise MetricError(f"{metric}: no groups to compare")
    rates = (
        rate_values
        if rate_values is not None
        else [gs.rate for gs in group_stats]
    )
    finite = [r for r in rates if not np.isnan(r)]
    if not finite:
        raise MetricError(f"{metric}: all group rates are undefined")
    gap = float(max(finite) - min(finite))
    max_rate = max(finite)
    ratio = float(min(finite) / max_rate) if max_rate > 0 else float("nan")
    return MetricResult(
        metric=metric,
        group_stats=tuple(group_stats),
        gap=gap,
        ratio=ratio,
        tolerance=float(tolerance),
        satisfied=bool(gap <= tolerance + 1e-12),
        equality_concept=equality_concept,
        significance=significance,
        details=details or {},
    )
