"""Fairness/accuracy frontier analysis.

The criteria discussion of Section IV.A implies a *quantitative*
trade-off question every deployment faces: how much accuracy does each
unit of parity cost?  :func:`fairness_frontier` answers it for threshold
classifiers: it sweeps a per-group threshold pair over the score
distribution and returns the Pareto frontier of (demographic-parity gap,
accuracy) operating points — the menu of defensible configurations a
policy choice then selects from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    check_array_1d,
    check_binary_array,
    check_positive_int,
    check_same_length,
)
from repro.core.metrics import demographic_parity
from repro.exceptions import MetricError
from repro.models.metrics import accuracy

__all__ = ["OperatingPoint", "FairnessFrontier", "fairness_frontier"]


@dataclass(frozen=True)
class OperatingPoint:
    """One (threshold per group) configuration and its outcomes."""

    thresholds: dict
    dp_gap: float
    accuracy: float
    selection_rate: float

    def __repr__(self) -> str:
        return (
            f"OperatingPoint(gap={self.dp_gap:.3f}, "
            f"acc={self.accuracy:.3f}, thresholds={self.thresholds})"
        )


@dataclass(frozen=True)
class FairnessFrontier:
    """The Pareto-efficient operating points, sorted by gap ascending."""

    points: tuple

    def best_accuracy_within(self, max_gap: float) -> OperatingPoint:
        """The most accurate point whose gap is within ``max_gap``."""
        eligible = [p for p in self.points if p.dp_gap <= max_gap + 1e-12]
        if not eligible:
            raise MetricError(
                f"no frontier point achieves a gap within {max_gap}; "
                f"smallest achievable is {min(p.dp_gap for p in self.points):.4f}"
            )
        return max(eligible, key=lambda p: p.accuracy)

    def price_of_fairness(self, max_gap: float) -> float:
        """Accuracy sacrificed to meet ``max_gap`` vs the unconstrained best."""
        unconstrained = max(self.points, key=lambda p: p.accuracy)
        constrained = self.best_accuracy_within(max_gap)
        return unconstrained.accuracy - constrained.accuracy


def fairness_frontier(
    probabilities,
    groups,
    y_true,
    n_thresholds: int = 21,
) -> FairnessFrontier:
    """Sweep per-group thresholds and keep the Pareto frontier.

    Parameters
    ----------
    probabilities:
        Model scores in [0, 1].
    groups:
        Binary protected attribute (exactly two groups).
    y_true:
        Labels used for the accuracy axis.
    n_thresholds:
        Grid resolution per group (the sweep is the full
        ``n_thresholds²`` grid of threshold pairs).
    """
    probabilities = check_array_1d(probabilities, "probabilities").astype(float)
    groups = check_array_1d(groups, "groups")
    y_true = check_binary_array(y_true, "y_true")
    check_same_length(
        ("probabilities", probabilities), ("groups", groups),
        ("y_true", y_true),
    )
    check_positive_int(n_thresholds, "n_thresholds")
    unique = np.unique(groups)
    if len(unique) != 2:
        raise MetricError(
            f"fairness_frontier requires exactly two groups, got "
            f"{unique.tolist()}"
        )

    grid = np.linspace(0.0, 1.0, n_thresholds)
    mask_a = groups == unique[0]
    mask_b = ~mask_a

    candidates: list[OperatingPoint] = []
    for t_a in grid:
        for t_b in grid:
            decisions = np.where(
                mask_a, probabilities >= t_a, probabilities >= t_b
            ).astype(int)
            if decisions.min() == decisions.max():
                # degenerate all-same decisions: DP gap 0 by construction
                gap = 0.0
            else:
                gap = demographic_parity(decisions, groups).gap
            candidates.append(OperatingPoint(
                thresholds={unique[0]: float(t_a), unique[1]: float(t_b)},
                dp_gap=float(gap),
                accuracy=float(accuracy(y_true, decisions)),
                selection_rate=float(decisions.mean()),
            ))

    # Pareto filter: keep points not dominated in (gap ↓, accuracy ↑).
    candidates.sort(key=lambda p: (p.dp_gap, -p.accuracy))
    frontier: list[OperatingPoint] = []
    best_accuracy = -1.0
    for point in candidates:
        if point.accuracy > best_accuracy + 1e-12:
            frontier.append(point)
            best_accuracy = point.accuracy
    return FairnessFrontier(points=tuple(frontier))
