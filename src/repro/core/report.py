"""Render audit reports as markdown or plain text.

Reports are written for the paper's target audience — "non-technical
audiences" bridging law and algorithms — so every metric line carries its
equality-concept tag (equal treatment vs equal outcome, Section IV.A) and
significance/power caveats (Section IV.C/IV.F).
"""

from __future__ import annotations

from repro.core.types import ConditionalMetricResult, MetricResult

__all__ = ["render_markdown", "render_text", "format_metric_line"]

_CONCEPT_LABELS = {
    "equal_outcome": "equal outcome",
    "equal_treatment": "equal treatment",
    "hybrid": "hybrid (treatment/outcome middle ground)",
}


def format_metric_line(result: MetricResult) -> str:
    """One-line summary of a MetricResult."""
    verdict = "PASS" if result.satisfied else "VIOLATED"
    rates = ", ".join(
        f"{gs.group}={gs.rate:.3f} (n={gs.n})" for gs in result.group_stats
    )
    concept = _CONCEPT_LABELS.get(result.equality_concept, result.equality_concept)
    line = (
        f"**{result.metric}** [{concept}]: {verdict} — gap {result.gap:.3f} "
        f"(tolerance {result.tolerance:g}); rates: {rates}"
    )
    if result.significance is not None:
        line += (
            f"; significance p={result.significance.p_value:.4f} "
            f"({result.significance.method})"
        )
    return line


def _conditional_block(result: ConditionalMetricResult) -> list[str]:
    verdict = "PASS" if result.satisfied else "VIOLATED"
    lines = [
        f"**{result.metric}** (conditioned on {result.condition}): {verdict} "
        f"— worst stratum gap {result.gap:.3f}"
    ]
    for stratum, sub in result.strata.items():
        flag = "ok" if sub.satisfied else "VIOLATED"
        rates = ", ".join(
            f"{gs.group}={gs.rate:.3f}" for gs in sub.group_stats
        )
        lines.append(f"  - stratum `{stratum}`: {flag} (gap {sub.gap:.3f}; {rates})")
    if result.skipped_strata:
        lines.append(
            f"  - skipped strata (insufficient group representation, "
            f"paper IV.C): {list(result.skipped_strata)}"
        )
    return lines


def render_markdown(report) -> str:
    """Full markdown rendering of an :class:`repro.core.audit.AuditReport`."""
    summary = report.dataset_summary
    lines = [
        "# Fairness audit report",
        "",
        f"- rows audited: {summary.get('n_rows')}",
        f"- protected attributes: {summary.get('protected_attributes')}",
        f"- audited outcomes: "
        f"{'dataset labels (data audit)' if summary.get('audits_labels') else 'model predictions'}",
        f"- gap tolerance: {report.tolerance:g}",
        "",
        f"**Overall: {'CLEAN' if report.is_clean else 'VIOLATIONS FOUND'}** "
        f"({len(report.violations())} violated, {len(report.passes())} passed, "
        f"{len(report.skipped())} skipped, {len(report.errors())} errored)",
        "",
    ]
    if report.degraded:
        lines.append(
            "**DEGRADED RUN** — some stages errored or timed out; this "
            "report is partial evidence, not a clean audit (paper §V)."
        )
        lines.append("")

    provenance = getattr(report, "provenance", None)
    if provenance is not None:
        lines.append("## Provenance (audit trail)")
        lines.append("")
        lines.extend(provenance.markdown_lines())
        lines.append("")

    by_attribute: dict[str, list] = {}
    for finding in report.findings:
        by_attribute.setdefault(finding.attribute, []).append(finding)

    for attribute, findings in by_attribute.items():
        lines.append(f"## Attribute `{attribute}`")
        lines.append("")
        power = report.power_notes.get(attribute) or {}
        if power:
            lines.append(
                f"_Statistical power: with group sizes {power['n_a']} vs "
                f"{power['n_b']}, gaps below "
                f"{power['min_detectable_gap']:.3f} are undetectable at "
                "α=0.05 / power 0.8 (paper IV.C/IV.F)._"
            )
            lines.append("")
        for finding in findings:
            if finding.status == "skipped":
                lines.append(
                    f"- {finding.metric}: SKIPPED — {finding.reason}"
                )
            elif finding.status == "error":
                lines.append(
                    f"- {finding.metric}: ERROR — {finding.reason}"
                )
            elif isinstance(finding.result, ConditionalMetricResult):
                block = _conditional_block(finding.result)
                lines.append(f"- {block[0]}")
                lines.extend(f"  {extra}" for extra in block[1:])
            else:
                lines.append(f"- {format_metric_line(finding.result)}")
                if finding.four_fifths is not None:
                    ff = finding.four_fifths
                    verdict = "passes" if ff.passes else "FAILS"
                    lines.append(
                        f"  - four-fifths rule: ratio {ff.ratio:.3f} "
                        f"{verdict} the {ff.threshold:g} threshold "
                        f"({ff.disadvantaged_group} vs {ff.reference_group})"
                    )
        lines.append("")

    if report.intersectional_findings:
        lines.append("## Intersectional subgroups (paper IV.C)")
        lines.append("")
        for finding in report.intersectional_findings:
            if finding.status == "skipped":
                lines.append(f"- {finding.metric}: SKIPPED — {finding.reason}")
            elif finding.status == "error":
                lines.append(f"- {finding.metric}: ERROR — {finding.reason}")
            else:
                lines.append(f"- {format_metric_line(finding.result)}")
                if finding.four_fifths is not None:
                    ff = finding.four_fifths
                    verdict = "passes" if ff.passes else "FAILS"
                    lines.append(
                        f"  - four-fifths rule: ratio {ff.ratio:.3f} {verdict} "
                        f"the {ff.threshold:g} threshold"
                    )
        lines.append("")
    return "\n".join(lines)


def render_text(report) -> str:
    """Plain-text rendering (markdown stripped of emphasis markers)."""
    markdown = render_markdown(report)
    return (
        markdown.replace("**", "")
        .replace("`", "")
        .replace("## ", "")
        .replace("# ", "")
    )
