"""The paper's fairness definitions (Section III), as executable metrics.

Each function mirrors one subsection of the paper:

========================================  ==============================
Paper definition                          Function
========================================  ==============================
III.A  Demographic parity                 :func:`demographic_parity`
III.B  Conditional statistical parity     :func:`conditional_statistical_parity`
III.C  Equal opportunity                  :func:`equal_opportunity`
III.D  Equalized odds                     :func:`equalized_odds`
III.E  Demographic disparity              :func:`demographic_disparity`
III.F  Conditional demographic disparity  :func:`conditional_demographic_disparity`
III.G  Counterfactual fairness            :func:`counterfactual_fairness`
V      Calibration (discussion)           :func:`calibration_within_groups`
—      Predictive parity (companion)      :func:`predictive_parity`
—      Disparate-impact ratio (legal)     :func:`disparate_impact_ratio`
========================================  ==============================

All array-based metrics accept plain sequences: ``predictions`` (binary
R), ``protected`` (group values A), and where needed ``y_true`` (binary
Y) and ``strata`` (legitimate conditioning attribute S).  Verdicts use an
absolute ``tolerance`` on the worst between-group gap; a tolerance of 0
reproduces the paper's exact-equality definitions.

Note on Definition III.E: the paper's formula (5) uses a strict
inequality ``P(R=+|a) > P(R=-|a)`` but its worked example treats the
boundary case (5 of 10 hired) as fair, matching the non-strict formula
(6) of Definition III.F.  We follow the examples and use ``>=``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from repro._validation import (
    check_array_1d,
    check_binary_array,
    check_probability,
    check_same_length,
)
from repro.causal.counterfactual import counterfactual_flip_rate
from repro.causal.scm import StructuralCausalModel
from repro.core.types import (
    ConditionalMetricResult,
    EqualityConcept,
    GroupStats,
    MetricResult,
    build_result,
)
from repro.exceptions import InsufficientDataError, MetricError
from repro.kernel import codes_for, get_backend, group_counts, stratified_counts
from repro.models.calibration import expected_calibration_error
from repro.stats.tests import TestResult, chi_square_independence, two_proportion_z_test

__all__ = [
    "demographic_parity",
    "conditional_statistical_parity",
    "equal_opportunity",
    "equalized_odds",
    "demographic_disparity",
    "conditional_demographic_disparity",
    "counterfactual_fairness",
    "calibration_within_groups",
    "predictive_parity",
    "treatment_equality",
    "false_positive_rate_parity",
    "overall_accuracy_equality",
    "disparate_impact_ratio",
    "METRIC_CATALOG",
]


def _group_order(groups: np.ndarray) -> list:
    """Deterministic group ordering (sorted by repr for mixed types)."""
    return sorted(np.unique(groups).tolist(), key=repr)


def _rate_stats(
    predictions: np.ndarray,
    groups: np.ndarray,
    metric: str,
    selector: np.ndarray | None = None,
) -> list[GroupStats]:
    """Per-group positive-prediction rates, optionally within a selector mask."""
    if selector is None and get_backend() == "kernel":
        counts = group_counts(groups, predictions)
        stats = []
        for group, n, positives in zip(counts.categories, counts.n, counts.pred_pos):
            if n == 0:
                raise InsufficientDataError(
                    f"{metric}: group {group!r} has no members in the "
                    "evaluated slice",
                    group=group,
                    count=0,
                )
            stats.append(
                GroupStats(group=group, n=n, positives=positives, rate=positives / n)
            )
        return stats
    stats = []
    for group in _group_order(groups):
        mask = groups == group
        if selector is not None:
            mask = mask & selector
        n = int(mask.sum())
        if n == 0:
            raise InsufficientDataError(
                f"{metric}: group {group!r} has no members in the evaluated "
                "slice",
                group=group,
                count=0,
            )
        positives = int(predictions[mask].sum())
        stats.append(
            GroupStats(group=group, n=n, positives=positives, rate=positives / n)
        )
    return stats


def _significance(stats: list[GroupStats]) -> TestResult | None:
    """Gap significance: z-test for two groups, chi-square beyond."""
    if len(stats) < 2:
        return None
    if len(stats) == 2:
        a, b = stats
        return two_proportion_z_test(a.positives, a.n, b.positives, b.n)
    table = np.array([[gs.positives, gs.n - gs.positives] for gs in stats])
    if np.any(table.sum(axis=1) == 0):
        return None
    return chi_square_independence(table)


def _validate_pair(predictions, protected) -> tuple[np.ndarray, np.ndarray]:
    predictions = check_binary_array(predictions, "predictions")
    protected = check_array_1d(protected, "protected")
    check_same_length(("predictions", predictions), ("protected", protected))
    if len(predictions) == 0:
        raise MetricError("cannot evaluate a metric on empty inputs")
    n_groups = (
        codes_for(protected).n_categories
        if get_backend() == "kernel"
        else len(np.unique(protected))
    )
    if n_groups < 2:
        raise MetricError(
            "protected attribute must have at least two groups; got only "
            f"{np.unique(protected).tolist()}"
        )
    return predictions, protected


# ---------------------------------------------------------------------------
# III.A  Demographic parity
# ---------------------------------------------------------------------------

def demographic_parity(
    predictions,
    protected,
    tolerance: float = 0.0,
    with_significance: bool = False,
) -> MetricResult:
    """P(R=+ | A=a) equal across groups (paper Eq. 1).

    Example (paper III.A): 10 female and 20 male applicants; 10 males
    hired (rate 0.5) ⇒ fair iff exactly 5 females hired.

    >>> preds = [1]*10 + [0]*10 + [1]*5 + [0]*5
    >>> groups = ["m"]*20 + ["f"]*10
    >>> demographic_parity(preds, groups).satisfied
    True
    """
    predictions, protected = _validate_pair(predictions, protected)
    check_probability(tolerance, "tolerance")
    stats = _rate_stats(predictions, protected, "demographic_parity")
    significance = _significance(stats) if with_significance else None
    return build_result(
        "demographic_parity",
        stats,
        tolerance,
        EqualityConcept.EQUAL_OUTCOME,
        significance=significance,
    )


# ---------------------------------------------------------------------------
# III.B  Conditional statistical parity
# ---------------------------------------------------------------------------

def conditional_statistical_parity(
    predictions,
    protected,
    strata,
    tolerance: float = 0.0,
    min_stratum_group_size: int = 1,
) -> ConditionalMetricResult:
    """Demographic parity within each legitimate stratum (paper Eq. 2).

    ``strata`` holds the legitimate factor S (e.g. seniority band).  A
    stratum is *skipped* (recorded, not failed) when any protected group
    has fewer than ``min_stratum_group_size`` members there — the paper's
    Section IV.C warning about unreliable small-sample findings.
    """
    predictions, protected = _validate_pair(predictions, protected)
    strata = check_array_1d(strata, "strata")
    check_same_length(("predictions", predictions), ("strata", strata))
    check_probability(tolerance, "tolerance")

    results: dict = {}
    skipped: list = []
    if get_backend() == "kernel":
        strat = stratified_counts(strata, protected, predictions)
        for s_index, stratum in enumerate(strat.strata_table.categories):
            cell = strat.counts[s_index]
            sizes = cell.sum(axis=1)
            if int(sizes.min()) < min_stratum_group_size:
                skipped.append(stratum)
                continue
            stats = []
            for g_index, group in enumerate(strat.group_table.categories):
                n = int(sizes[g_index])
                if n == 0:
                    raise InsufficientDataError(
                        f"conditional_statistical_parity: group {group!r} "
                        "has no members in the evaluated slice",
                        group=group,
                        count=0,
                    )
                positives = int(cell[g_index, 1])
                stats.append(
                    GroupStats(
                        group=group, n=n, positives=positives, rate=positives / n
                    )
                )
            results[stratum] = build_result(
                "conditional_statistical_parity",
                stats,
                tolerance,
                EqualityConcept.EQUAL_OUTCOME,
            )
    else:
        for stratum in _group_order(strata):
            selector = strata == stratum
            group_sizes = [
                int(((protected == g) & selector).sum())
                for g in _group_order(protected)
            ]
            if min(group_sizes) < min_stratum_group_size:
                skipped.append(stratum)
                continue
            stats = _rate_stats(
                predictions, protected, "conditional_statistical_parity", selector
            )
            results[stratum] = build_result(
                "conditional_statistical_parity",
                stats,
                tolerance,
                EqualityConcept.EQUAL_OUTCOME,
            )
    if not results and skipped:
        raise InsufficientDataError(
            "conditional_statistical_parity: every stratum was skipped for "
            f"insufficient group representation (skipped: {skipped})"
        )
    return ConditionalMetricResult(
        metric="conditional_statistical_parity",
        condition="strata",
        strata=results,
        tolerance=float(tolerance),
        equality_concept=EqualityConcept.EQUAL_OUTCOME,
        skipped_strata=tuple(skipped),
    )


# ---------------------------------------------------------------------------
# III.C  Equal opportunity
# ---------------------------------------------------------------------------

def equal_opportunity(
    y_true,
    predictions,
    protected,
    tolerance: float = 0.0,
    with_significance: bool = False,
) -> MetricResult:
    """True-positive rates equal across groups (paper Eq. 3).

    Conditions on actual positives: every group's qualified members must
    be selected at the same rate.
    """
    y_true = check_binary_array(y_true, "y_true")
    predictions, protected = _validate_pair(predictions, protected)
    check_same_length(("y_true", y_true), ("predictions", predictions))
    check_probability(tolerance, "tolerance")

    stats = []
    if get_backend() == "kernel":
        counts = group_counts(protected, predictions, y_true)
        for group, tp, fn in zip(counts.categories, counts.tp, counts.fn):
            n = tp + fn
            if n == 0:
                raise InsufficientDataError(
                    f"equal_opportunity: group {group!r} has no actual "
                    "positives",
                    group=group,
                    count=0,
                )
            stats.append(
                GroupStats(group=group, n=n, positives=tp, rate=tp / n)
            )
    else:
        for group in _group_order(protected):
            mask = (protected == group) & (y_true == 1)
            n = int(mask.sum())
            if n == 0:
                raise InsufficientDataError(
                    f"equal_opportunity: group {group!r} has no actual "
                    "positives",
                    group=group,
                    count=0,
                )
            positives = int(predictions[mask].sum())
            stats.append(
                GroupStats(group=group, n=n, positives=positives, rate=positives / n)
            )
    significance = _significance(stats) if with_significance else None
    return build_result(
        "equal_opportunity",
        stats,
        tolerance,
        EqualityConcept.EQUAL_TREATMENT,
        significance=significance,
    )


# ---------------------------------------------------------------------------
# III.D  Equalized odds
# ---------------------------------------------------------------------------

def equalized_odds(
    y_true,
    predictions,
    protected,
    tolerance: float = 0.0,
) -> MetricResult:
    """TPR **and** FPR equal across groups (paper Eq. 4).

    The result's ``gap`` is the worse of the TPR gap and the FPR gap; the
    per-family gaps are exposed in ``details["tpr_gap"]`` and
    ``details["fpr_gap"]``.
    """
    y_true = check_binary_array(y_true, "y_true")
    predictions, protected = _validate_pair(predictions, protected)
    check_same_length(("y_true", y_true), ("predictions", predictions))
    check_probability(tolerance, "tolerance")

    tpr_stats, fpr_stats = [], []
    if get_backend() == "kernel":
        counts = group_counts(protected, predictions, y_true)
        for index, group in enumerate(counts.categories):
            tp, fn = counts.tp[index], counts.fn[index]
            fp, tn = counts.fp[index], counts.tn[index]
            if tp + fn == 0:
                raise InsufficientDataError(
                    f"equalized_odds: group {group!r} has no actual positives",
                    group=group,
                )
            if fp + tn == 0:
                raise InsufficientDataError(
                    f"equalized_odds: group {group!r} has no actual negatives",
                    group=group,
                )
            tpr_stats.append(
                GroupStats(group=group, n=tp + fn, positives=tp, rate=tp / (tp + fn))
            )
            fpr_stats.append(
                GroupStats(group=group, n=fp + tn, positives=fp, rate=fp / (fp + tn))
            )
    else:
        for group in _group_order(protected):
            pos_mask = (protected == group) & (y_true == 1)
            neg_mask = (protected == group) & (y_true == 0)
            if not pos_mask.any():
                raise InsufficientDataError(
                    f"equalized_odds: group {group!r} has no actual positives",
                    group=group,
                )
            if not neg_mask.any():
                raise InsufficientDataError(
                    f"equalized_odds: group {group!r} has no actual negatives",
                    group=group,
                )
            tp = int(predictions[pos_mask].sum())
            fp = int(predictions[neg_mask].sum())
            tpr_stats.append(
                GroupStats(
                    group=group,
                    n=int(pos_mask.sum()),
                    positives=tp,
                    rate=tp / int(pos_mask.sum()),
                )
            )
            fpr_stats.append(
                GroupStats(
                    group=group,
                    n=int(neg_mask.sum()),
                    positives=fp,
                    rate=fp / int(neg_mask.sum()),
                )
            )

    tpr_rates = [gs.rate for gs in tpr_stats]
    fpr_rates = [gs.rate for gs in fpr_stats]
    tpr_gap = max(tpr_rates) - min(tpr_rates)
    fpr_gap = max(fpr_rates) - min(fpr_rates)
    worst_gap = max(tpr_gap, fpr_gap)
    # Represent the headline rates with TPRs (the equal-opportunity part),
    # but compute the verdict over both families.
    max_tpr = max(tpr_rates)
    result = MetricResult(
        metric="equalized_odds",
        group_stats=tuple(tpr_stats),
        gap=float(worst_gap),
        ratio=float(min(tpr_rates) / max_tpr) if max_tpr > 0 else float("nan"),
        tolerance=float(tolerance),
        satisfied=bool(worst_gap <= tolerance + 1e-12),
        equality_concept=EqualityConcept.EQUAL_TREATMENT,
        details={
            "tpr_gap": float(tpr_gap),
            "fpr_gap": float(fpr_gap),
            "tpr": {gs.group: gs.rate for gs in tpr_stats},
            "fpr": {gs.group: gs.rate for gs in fpr_stats},
        },
    )
    return result


# ---------------------------------------------------------------------------
# III.E  Demographic disparity
# ---------------------------------------------------------------------------

def demographic_disparity(
    predictions,
    protected,
    tolerance: float = 0.0,
) -> MetricResult:
    """Each group's acceptance fraction must not trail its rejection fraction.

    Per group a: fair towards a iff ``P(R=+|a) >= P(R=-|a)``, i.e. the
    positive rate is at least one half (see the module docstring for the
    strict-vs-non-strict note).  The result's ``gap`` is the worst
    shortfall ``max(0, 0.5 − rate)`` over groups.

    Unlike the other definitions this is evaluated per group, not between
    groups, so it is meaningful even for a single group.
    """
    predictions = check_binary_array(predictions, "predictions")
    protected = check_array_1d(protected, "protected")
    check_same_length(("predictions", predictions), ("protected", protected))
    if len(predictions) == 0:
        raise MetricError("cannot evaluate a metric on empty inputs")
    check_probability(tolerance, "tolerance")

    stats = _rate_stats(predictions, protected, "demographic_disparity")
    shortfalls = {gs.group: max(0.0, 0.5 - gs.rate) for gs in stats}
    worst = max(shortfalls.values())
    return MetricResult(
        metric="demographic_disparity",
        group_stats=tuple(stats),
        gap=float(worst),
        ratio=float(min(gs.rate for gs in stats) / 0.5),
        tolerance=float(tolerance),
        satisfied=bool(worst <= tolerance + 1e-12),
        equality_concept=EqualityConcept.EQUAL_OUTCOME,
        details={"shortfalls": shortfalls},
    )


# ---------------------------------------------------------------------------
# III.F  Conditional demographic disparity
# ---------------------------------------------------------------------------

def conditional_demographic_disparity(
    predictions,
    protected,
    strata,
    tolerance: float = 0.0,
    min_stratum_group_size: int = 1,
) -> ConditionalMetricResult:
    """Demographic disparity within each stratum (paper Eq. 6).

    Reproduces the paper's III.F example: a 40/100 overall hire rate for
    females is unfair by III.E, but conditioning on the job applied to can
    reveal fairness on jobs 1–4 and unfairness only on job 5.
    """
    predictions = check_binary_array(predictions, "predictions")
    protected = check_array_1d(protected, "protected")
    strata = check_array_1d(strata, "strata")
    check_same_length(
        ("predictions", predictions), ("protected", protected), ("strata", strata)
    )
    if len(predictions) == 0:
        raise MetricError("cannot evaluate a metric on empty inputs")
    check_probability(tolerance, "tolerance")

    results: dict = {}
    skipped: list = []
    if get_backend() == "kernel":
        strat = stratified_counts(strata, protected, predictions)
        for s_index, stratum in enumerate(strat.strata_table.categories):
            cell = strat.counts[s_index]
            sizes = cell.sum(axis=1)
            if int(sizes.min()) < min_stratum_group_size:
                skipped.append(stratum)
                continue
            # Inline demographic_disparity over the stratum's counts:
            # groups absent from the stratum are omitted, as slicing does.
            stats = []
            for g_index, group in enumerate(strat.group_table.categories):
                n = int(sizes[g_index])
                if n == 0:
                    continue
                positives = int(cell[g_index, 1])
                stats.append(
                    GroupStats(
                        group=group, n=n, positives=positives, rate=positives / n
                    )
                )
            if not stats:
                raise MetricError("cannot evaluate a metric on empty inputs")
            shortfalls = {gs.group: max(0.0, 0.5 - gs.rate) for gs in stats}
            worst = max(shortfalls.values())
            results[stratum] = MetricResult(
                metric="demographic_disparity",
                group_stats=tuple(stats),
                gap=float(worst),
                ratio=float(min(gs.rate for gs in stats) / 0.5),
                tolerance=float(tolerance),
                satisfied=bool(worst <= tolerance + 1e-12),
                equality_concept=EqualityConcept.EQUAL_OUTCOME,
                details={"shortfalls": shortfalls},
            )
    else:
        for stratum in _group_order(strata):
            selector = strata == stratum
            group_sizes = [
                int(((protected == g) & selector).sum())
                for g in _group_order(protected)
            ]
            if min(group_sizes) < min_stratum_group_size:
                skipped.append(stratum)
                continue
            results[stratum] = demographic_disparity(
                predictions[selector], protected[selector], tolerance=tolerance
            )
    if not results and skipped:
        raise InsufficientDataError(
            "conditional_demographic_disparity: every stratum was skipped "
            f"(skipped: {skipped})"
        )
    return ConditionalMetricResult(
        metric="conditional_demographic_disparity",
        condition="strata",
        strata=results,
        tolerance=float(tolerance),
        equality_concept=EqualityConcept.EQUAL_OUTCOME,
        skipped_strata=tuple(skipped),
    )


# ---------------------------------------------------------------------------
# III.G  Counterfactual fairness
# ---------------------------------------------------------------------------

def counterfactual_fairness(
    scm: StructuralCausalModel,
    observed: Mapping[str, np.ndarray],
    protected: str,
    counterfactual_value,
    predictor: Callable[[Mapping[str, np.ndarray]], np.ndarray],
    tolerance: float = 0.0,
) -> MetricResult:
    """SCM-based counterfactual fairness (paper III.G) as a MetricResult.

    Wraps :func:`repro.causal.counterfactual.counterfactual_flip_rate`:
    the "rate" reported per pseudo-group is the prediction-flip rate under
    ``do(protected := counterfactual_value)``; fairness holds when it does
    not exceed ``tolerance``.
    """
    cf = counterfactual_flip_rate(
        scm, observed, protected, counterfactual_value, predictor, tolerance
    )
    n = len(cf.flipped_mask)
    flipped = int(cf.flipped_mask.sum())
    stats = (
        GroupStats(group="audited_units", n=n, positives=flipped, rate=cf.flip_rate),
    )
    return MetricResult(
        metric="counterfactual_fairness",
        group_stats=stats,
        gap=cf.flip_rate,
        ratio=1.0 - cf.flip_rate,
        tolerance=float(tolerance),
        satisfied=cf.is_fair,
        equality_concept=EqualityConcept.HYBRID,
        details={
            "flip_rate": cf.flip_rate,
            "n_flipped": flipped,
            "intervention": {protected: counterfactual_value},
        },
    )


# ---------------------------------------------------------------------------
# Calibration within groups (paper Section V discussion)
# ---------------------------------------------------------------------------

def calibration_within_groups(
    y_true,
    probabilities,
    protected,
    n_bins: int = 10,
    tolerance: float = 0.1,
) -> MetricResult:
    """Expected calibration error per group; gap is the worst ECE spread.

    The paper's discussion lists calibration among the definitions legal
    scholarship singles out; group-wise calibration demands that a score
    of p means the same observed frequency in every group.
    """
    y_true = check_binary_array(y_true, "y_true")
    probabilities = check_array_1d(probabilities, "probabilities").astype(float)
    protected = check_array_1d(protected, "protected")
    check_same_length(
        ("y_true", y_true),
        ("probabilities", probabilities),
        ("protected", protected),
    )
    check_probability(tolerance, "tolerance")

    stats = []
    eces = {}
    if get_backend() == "kernel":
        # ECE itself stays on the per-group path (binned float means are
        # order-sensitive); the kernel only supplies the cached masks.
        table = codes_for(protected)
        group_masks = [(group, table.mask(group)) for group in table.categories]
    else:
        group_masks = [
            (group, protected == group) for group in _group_order(protected)
        ]
    for group, mask in group_masks:
        n = int(mask.sum())
        if n == 0:
            raise InsufficientDataError(
                f"calibration: group {group!r} empty", group=group
            )
        ece = expected_calibration_error(
            y_true[mask], probabilities[mask], n_bins=n_bins
        )
        eces[group] = ece
        stats.append(
            GroupStats(
                group=group, n=n, positives=int(y_true[mask].sum()), rate=ece
            )
        )
    worst = max(eces.values())
    return MetricResult(
        metric="calibration_within_groups",
        group_stats=tuple(stats),
        gap=float(worst),
        ratio=float(min(eces.values()) / worst) if worst > 0 else 1.0,
        tolerance=float(tolerance),
        satisfied=bool(worst <= tolerance + 1e-12),
        equality_concept=EqualityConcept.EQUAL_TREATMENT,
        details={"ece": eces},
    )


# ---------------------------------------------------------------------------
# Companions frequently used in legal analyses
# ---------------------------------------------------------------------------

def predictive_parity(
    y_true,
    predictions,
    protected,
    tolerance: float = 0.0,
) -> MetricResult:
    """Positive predictive value (precision) equal across groups."""
    y_true = check_binary_array(y_true, "y_true")
    predictions, protected = _validate_pair(predictions, protected)
    check_same_length(("y_true", y_true), ("predictions", predictions))
    check_probability(tolerance, "tolerance")

    stats = []
    if get_backend() == "kernel":
        counts = group_counts(protected, predictions, y_true)
        for group, tp, fp in zip(counts.categories, counts.tp, counts.fp):
            n = tp + fp
            if n == 0:
                raise InsufficientDataError(
                    f"predictive_parity: group {group!r} has no positive "
                    "predictions",
                    group=group,
                )
            stats.append(GroupStats(group=group, n=n, positives=tp, rate=tp / n))
    else:
        for group in _group_order(protected):
            mask = (protected == group) & (predictions == 1)
            n = int(mask.sum())
            if n == 0:
                raise InsufficientDataError(
                    f"predictive_parity: group {group!r} has no positive "
                    "predictions",
                    group=group,
                )
            tp = int(y_true[mask].sum())
            stats.append(GroupStats(group=group, n=n, positives=tp, rate=tp / n))
    return build_result(
        "predictive_parity",
        stats,
        tolerance,
        EqualityConcept.EQUAL_TREATMENT,
    )


def disparate_impact_ratio(
    predictions,
    protected,
    reference_group=None,
) -> MetricResult:
    """Selection-rate ratio against a reference group (the 80% rule input).

    ``reference_group`` defaults to the group with the highest selection
    rate (US enforcement practice).  The result's ``ratio`` is the lowest
    group-to-reference ratio; :func:`repro.core.legal.four_fifths_rule`
    turns it into a legal verdict.
    """
    predictions, protected = _validate_pair(predictions, protected)
    stats = _rate_stats(predictions, protected, "disparate_impact_ratio")
    by_group = {gs.group: gs for gs in stats}
    if reference_group is None:
        reference = max(stats, key=lambda gs: gs.rate)
    else:
        if reference_group not in by_group:
            raise MetricError(
                f"reference group {reference_group!r} not present; groups: "
                f"{list(by_group)}"
            )
        reference = by_group[reference_group]
    if reference.rate == 0:
        ratios = {
            gs.group: float("nan") for gs in stats if gs.group != reference.group
        }
        worst = float("nan")
    else:
        ratios = {
            gs.group: gs.rate / reference.rate
            for gs in stats
            if gs.group != reference.group
        }
        worst = min(ratios.values())
    gap = max(gs.rate for gs in stats) - min(gs.rate for gs in stats)
    return MetricResult(
        metric="disparate_impact_ratio",
        group_stats=tuple(stats),
        gap=float(gap),
        ratio=float(worst),
        tolerance=0.0,
        satisfied=bool(not np.isnan(worst) and worst >= 0.8),
        equality_concept=EqualityConcept.EQUAL_OUTCOME,
        details={"reference_group": reference.group, "ratios": ratios},
    )


def treatment_equality(
    y_true,
    predictions,
    protected,
    tolerance: float = 0.0,
) -> MetricResult:
    """FN/FP ratio equal across groups (Verma & Rubin's catalog, cited
    as [21]).

    The ratio of false negatives to false positives measures *which kind*
    of error a group absorbs: a group with many FNs relative to FPs is
    being wrongly denied, one with many FPs relative to FNs wrongly
    flagged.  The reported per-group rate is the normalised ratio
    ``FN / (FN + FP)`` so it stays in [0, 1]; parity of this quantity is
    equivalent to parity of FN/FP where both are defined.
    """
    y_true = check_binary_array(y_true, "y_true")
    predictions, protected = _validate_pair(predictions, protected)
    check_same_length(("y_true", y_true), ("predictions", predictions))
    check_probability(tolerance, "tolerance")

    stats = []
    if get_backend() == "kernel":
        counts = group_counts(protected, predictions, y_true)
        for group, fn, fp in zip(counts.categories, counts.fn, counts.fp):
            if fn + fp == 0:
                raise InsufficientDataError(
                    f"treatment_equality: group {group!r} has no errors to "
                    "compare",
                    group=group,
                )
            stats.append(GroupStats(
                group=group, n=fn + fp, positives=fn, rate=fn / (fn + fp)
            ))
    else:
        for group in _group_order(protected):
            mask = protected == group
            fn = int(np.sum(mask & (y_true == 1) & (predictions == 0)))
            fp = int(np.sum(mask & (y_true == 0) & (predictions == 1)))
            if fn + fp == 0:
                raise InsufficientDataError(
                    f"treatment_equality: group {group!r} has no errors to "
                    "compare",
                    group=group,
                )
            stats.append(GroupStats(
                group=group, n=fn + fp, positives=fn, rate=fn / (fn + fp)
            ))
    return build_result(
        "treatment_equality",
        stats,
        tolerance,
        EqualityConcept.EQUAL_TREATMENT,
    )


def false_positive_rate_parity(
    y_true,
    predictions,
    protected,
    tolerance: float = 0.0,
) -> MetricResult:
    """FPR equal across groups (predictive equality; one half of Eq. 4).

    Stand-alone variant for punitive settings where only the false-
    positive harm matters (e.g. fraud flags): equalized odds may be
    unachievable while FPR parity is.
    """
    y_true = check_binary_array(y_true, "y_true")
    predictions, protected = _validate_pair(predictions, protected)
    check_same_length(("y_true", y_true), ("predictions", predictions))
    check_probability(tolerance, "tolerance")

    stats = []
    if get_backend() == "kernel":
        counts = group_counts(protected, predictions, y_true)
        for group, fp, tn in zip(counts.categories, counts.fp, counts.tn):
            n = fp + tn
            if n == 0:
                raise InsufficientDataError(
                    f"false_positive_rate_parity: group {group!r} has no "
                    "actual negatives",
                    group=group,
                )
            stats.append(GroupStats(group=group, n=n, positives=fp, rate=fp / n))
    else:
        for group in _group_order(protected):
            mask = (protected == group) & (y_true == 0)
            n = int(mask.sum())
            if n == 0:
                raise InsufficientDataError(
                    f"false_positive_rate_parity: group {group!r} has no "
                    "actual negatives",
                    group=group,
                )
            fp = int(predictions[mask].sum())
            stats.append(GroupStats(group=group, n=n, positives=fp, rate=fp / n))
    return build_result(
        "false_positive_rate_parity",
        stats,
        tolerance,
        EqualityConcept.EQUAL_TREATMENT,
    )


def overall_accuracy_equality(
    y_true,
    predictions,
    protected,
    tolerance: float = 0.0,
) -> MetricResult:
    """Accuracy equal across groups (Verma & Rubin's catalog).

    The weakest error-based criterion: a model may be equally accurate on
    both groups while distributing its errors very differently — pair
    with :func:`treatment_equality` to see *how* errors fall.
    """
    y_true = check_binary_array(y_true, "y_true")
    predictions, protected = _validate_pair(predictions, protected)
    check_same_length(("y_true", y_true), ("predictions", predictions))
    check_probability(tolerance, "tolerance")

    stats = []
    if get_backend() == "kernel":
        counts = group_counts(protected, predictions, y_true)
        for index, group in enumerate(counts.categories):
            n = counts.n[index]
            if n == 0:
                raise InsufficientDataError(
                    f"overall_accuracy_equality: group {group!r} empty",
                    group=group,
                )
            correct = counts.tp[index] + counts.tn[index]
            stats.append(GroupStats(
                group=group, n=n, positives=correct, rate=correct / n
            ))
    else:
        for group in _group_order(protected):
            mask = protected == group
            n = int(mask.sum())
            if n == 0:
                raise InsufficientDataError(
                    f"overall_accuracy_equality: group {group!r} empty",
                    group=group,
                )
            correct = int(np.sum(predictions[mask] == y_true[mask]))
            stats.append(GroupStats(
                group=group, n=n, positives=correct, rate=correct / n
            ))
    return build_result(
        "overall_accuracy_equality",
        stats,
        tolerance,
        EqualityConcept.EQUAL_TREATMENT,
    )


#: machine-readable catalog used by the criteria engine and the audit
#: battery; maps metric id → (callable signature class, equality concept,
#: needs ground truth?, needs strata?, needs causal model?)
METRIC_CATALOG = {
    "demographic_parity": {
        "function": demographic_parity,
        "equality_concept": EqualityConcept.EQUAL_OUTCOME,
        "needs_labels": False,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "III.A",
    },
    "conditional_statistical_parity": {
        "function": conditional_statistical_parity,
        "equality_concept": EqualityConcept.EQUAL_OUTCOME,
        "needs_labels": False,
        "needs_strata": True,
        "needs_scm": False,
        "paper_section": "III.B",
    },
    "equal_opportunity": {
        "function": equal_opportunity,
        "equality_concept": EqualityConcept.EQUAL_TREATMENT,
        "needs_labels": True,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "III.C",
    },
    "equalized_odds": {
        "function": equalized_odds,
        "equality_concept": EqualityConcept.EQUAL_TREATMENT,
        "needs_labels": True,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "III.D",
    },
    "demographic_disparity": {
        "function": demographic_disparity,
        "equality_concept": EqualityConcept.EQUAL_OUTCOME,
        "needs_labels": False,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "III.E",
    },
    "conditional_demographic_disparity": {
        "function": conditional_demographic_disparity,
        "equality_concept": EqualityConcept.EQUAL_OUTCOME,
        "needs_labels": False,
        "needs_strata": True,
        "needs_scm": False,
        "paper_section": "III.F",
    },
    "counterfactual_fairness": {
        "function": counterfactual_fairness,
        "equality_concept": EqualityConcept.HYBRID,
        "needs_labels": False,
        "needs_strata": False,
        "needs_scm": True,
        "paper_section": "III.G",
    },
    "calibration_within_groups": {
        "function": calibration_within_groups,
        "equality_concept": EqualityConcept.EQUAL_TREATMENT,
        "needs_labels": True,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "V",
    },
    "predictive_parity": {
        "function": predictive_parity,
        "equality_concept": EqualityConcept.EQUAL_TREATMENT,
        "needs_labels": True,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "companion",
    },
    "treatment_equality": {
        "function": treatment_equality,
        "equality_concept": EqualityConcept.EQUAL_TREATMENT,
        "needs_labels": True,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "companion ([21])",
    },
    "false_positive_rate_parity": {
        "function": false_positive_rate_parity,
        "equality_concept": EqualityConcept.EQUAL_TREATMENT,
        "needs_labels": True,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "companion (III.D half)",
    },
    "overall_accuracy_equality": {
        "function": overall_accuracy_equality,
        "equality_concept": EqualityConcept.EQUAL_TREATMENT,
        "needs_labels": True,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "companion ([21])",
    },
    "disparate_impact_ratio": {
        "function": disparate_impact_ratio,
        "equality_concept": EqualityConcept.EQUAL_OUTCOME,
        "needs_labels": False,
        "needs_strata": False,
        "needs_scm": False,
        "paper_section": "IV.A/legal",
    },
}
