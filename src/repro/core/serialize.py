"""JSON serialisation of metric results and audit reports.

Audit findings must survive outside a Python session — attached to
compliance tickets, archived for regulators, or diffed between model
versions.  These helpers produce plain JSON-able dictionaries (no numpy
scalars) for every result type.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.audit import AuditFinding, AuditReport
from repro.core.types import ConditionalMetricResult, MetricResult

__all__ = [
    "metric_result_to_dict",
    "conditional_result_to_dict",
    "finding_to_dict",
    "report_to_dict",
    "report_to_json",
]


def _plain(value):
    """Convert numpy scalars to native Python for JSON."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def metric_result_to_dict(result: MetricResult) -> dict:
    """JSON-able dict of one MetricResult."""
    payload = {
        "metric": result.metric,
        "gap": _plain(result.gap),
        "ratio": _plain(result.ratio),
        "tolerance": _plain(result.tolerance),
        "satisfied": bool(result.satisfied),
        "equality_concept": result.equality_concept,
        "groups": [
            {
                "group": _plain(gs.group),
                "n": int(gs.n),
                "positives": int(gs.positives),
                "rate": _plain(gs.rate),
            }
            for gs in result.group_stats
        ],
        "details": _plain(result.details),
    }
    if result.significance is not None:
        payload["significance"] = {
            "statistic": _plain(result.significance.statistic),
            "p_value": _plain(result.significance.p_value),
            "method": result.significance.method,
        }
    return payload


def conditional_result_to_dict(result: ConditionalMetricResult) -> dict:
    """JSON-able dict of a per-stratum conditional result."""
    return {
        "metric": result.metric,
        "condition": result.condition,
        "tolerance": _plain(result.tolerance),
        "satisfied": bool(result.satisfied),
        "worst_gap": _plain(result.gap),
        "equality_concept": result.equality_concept,
        "skipped_strata": [_plain(s) for s in result.skipped_strata],
        "strata": {
            str(stratum): metric_result_to_dict(sub)
            for stratum, sub in result.strata.items()
        },
    }


def finding_to_dict(finding: AuditFinding) -> dict:
    """JSON-able dict of one audit finding."""
    payload = {
        "attribute": finding.attribute,
        "metric": finding.metric,
        "status": finding.status,
        "reason": finding.reason,
    }
    if finding.traceback:
        payload["traceback"] = finding.traceback
    if isinstance(finding.result, ConditionalMetricResult):
        payload["result"] = conditional_result_to_dict(finding.result)
    elif isinstance(finding.result, MetricResult):
        payload["result"] = metric_result_to_dict(finding.result)
    else:
        payload["result"] = None
    if finding.four_fifths is not None:
        ff = finding.four_fifths
        payload["four_fifths"] = {
            "ratio": _plain(ff.ratio),
            "threshold": _plain(ff.threshold),
            "passes": bool(ff.passes),
            "disadvantaged_group": _plain(ff.disadvantaged_group),
            "reference_group": _plain(ff.reference_group),
        }
    return payload


def report_to_dict(report: AuditReport) -> dict:
    """JSON-able dict of a full audit report."""
    provenance = getattr(report, "provenance", None)
    return {
        "provenance": None if provenance is None else provenance.to_dict(),
        "dataset_summary": _plain(report.dataset_summary),
        "tolerance": _plain(report.tolerance),
        "is_clean": bool(report.is_clean),
        "degraded": bool(report.degraded),
        "counts": {
            "violations": len(report.violations()),
            "passes": len(report.passes()),
            "skipped": len(report.skipped()),
            "errors": len(report.errors()),
        },
        "degradations": _plain(report.degradations),
        "findings": [finding_to_dict(f) for f in report.findings],
        "intersectional_findings": [
            finding_to_dict(f) for f in report.intersectional_findings
        ],
        "power_notes": _plain(report.power_notes),
    }


def report_to_json(report: AuditReport, indent: int = 2) -> str:
    """The audit report as a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent)
