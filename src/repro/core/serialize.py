"""JSON serialisation of metric results and audit reports.

Audit findings must survive outside a Python session — attached to
compliance tickets, archived for regulators, or diffed between model
versions.  These helpers produce plain JSON-able dictionaries (no numpy
scalars) for every result type, and the matching ``*_from_dict``
inverses rebuild the Python objects, so every report type round-trips:
``report_to_dict(report_from_dict(d)) == d``.

Two lossy-but-stable notes on the inverse direction: conditional
results key their strata by ``str(stratum)`` (the JSON form), and group
labels come back as the plain Python values JSON stored — a second
``to_dict`` of the rebuilt object is byte-identical to the first.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.audit import AuditFinding, AuditReport
from repro.core.legal import FourFifthsFinding
from repro.core.types import ConditionalMetricResult, GroupStats, MetricResult
from repro.observability.provenance import ProvenanceRecord
from repro.stats.tests import TestResult

__all__ = [
    "metric_result_to_dict",
    "metric_result_from_dict",
    "conditional_result_to_dict",
    "conditional_result_from_dict",
    "finding_to_dict",
    "finding_from_dict",
    "report_to_dict",
    "report_from_dict",
    "report_to_json",
    "report_from_json",
]


def _plain(value):
    """Convert numpy scalars to native Python for JSON."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def metric_result_to_dict(result: MetricResult) -> dict:
    """JSON-able dict of one MetricResult."""
    payload = {
        "metric": result.metric,
        "gap": _plain(result.gap),
        "ratio": _plain(result.ratio),
        "tolerance": _plain(result.tolerance),
        "satisfied": bool(result.satisfied),
        "equality_concept": result.equality_concept,
        "groups": [
            {
                "group": _plain(gs.group),
                "n": int(gs.n),
                "positives": int(gs.positives),
                "rate": _plain(gs.rate),
            }
            for gs in result.group_stats
        ],
        "details": _plain(result.details),
    }
    if result.significance is not None:
        payload["significance"] = {
            "statistic": _plain(result.significance.statistic),
            "p_value": _plain(result.significance.p_value),
            "method": result.significance.method,
        }
    return payload


def metric_result_from_dict(payload: dict) -> MetricResult:
    """Rebuild a :class:`MetricResult` written by
    :func:`metric_result_to_dict`."""
    significance = payload.get("significance")
    return MetricResult(
        metric=payload["metric"],
        group_stats=tuple(
            GroupStats(
                group=entry["group"],
                n=int(entry["n"]),
                positives=int(entry["positives"]),
                rate=float(entry["rate"]),
            )
            for entry in payload.get("groups", [])
        ),
        gap=float(payload["gap"]),
        ratio=float(payload["ratio"]),
        tolerance=float(payload["tolerance"]),
        satisfied=bool(payload["satisfied"]),
        equality_concept=payload["equality_concept"],
        significance=(
            None
            if significance is None
            else TestResult(
                statistic=float(significance["statistic"]),
                p_value=float(significance["p_value"]),
                method=significance["method"],
            )
        ),
        details=dict(payload.get("details") or {}),
    )


def conditional_result_to_dict(result: ConditionalMetricResult) -> dict:
    """JSON-able dict of a per-stratum conditional result."""
    return {
        "metric": result.metric,
        "condition": result.condition,
        "tolerance": _plain(result.tolerance),
        "satisfied": bool(result.satisfied),
        "worst_gap": _plain(result.gap),
        "equality_concept": result.equality_concept,
        "skipped_strata": [_plain(s) for s in result.skipped_strata],
        "strata": {
            str(stratum): metric_result_to_dict(sub)
            for stratum, sub in result.strata.items()
        },
    }


def conditional_result_from_dict(payload: dict) -> ConditionalMetricResult:
    """Rebuild a :class:`ConditionalMetricResult` written by
    :func:`conditional_result_to_dict`.

    Stratum keys come back as the strings JSON stored (``worst_gap`` and
    ``satisfied`` are derived and ignored on input).
    """
    return ConditionalMetricResult(
        metric=payload["metric"],
        condition=payload["condition"],
        strata={
            stratum: metric_result_from_dict(sub)
            for stratum, sub in payload.get("strata", {}).items()
        },
        tolerance=float(payload["tolerance"]),
        equality_concept=payload["equality_concept"],
        skipped_strata=tuple(payload.get("skipped_strata", ())),
    )


def finding_to_dict(finding: AuditFinding) -> dict:
    """JSON-able dict of one audit finding."""
    payload = {
        "attribute": finding.attribute,
        "metric": finding.metric,
        "status": finding.status,
        "reason": finding.reason,
    }
    if finding.traceback:
        payload["traceback"] = finding.traceback
    if isinstance(finding.result, ConditionalMetricResult):
        payload["result"] = conditional_result_to_dict(finding.result)
    elif isinstance(finding.result, MetricResult):
        payload["result"] = metric_result_to_dict(finding.result)
    else:
        payload["result"] = None
    if finding.four_fifths is not None:
        payload["four_fifths"] = finding.four_fifths.to_dict()
    return payload


def finding_from_dict(payload: dict) -> AuditFinding:
    """Rebuild an :class:`AuditFinding` written by :func:`finding_to_dict`."""
    result = payload.get("result")
    if result is None:
        rebuilt = None
    elif "condition" in result:
        rebuilt = conditional_result_from_dict(result)
    else:
        rebuilt = metric_result_from_dict(result)
    four_fifths = payload.get("four_fifths")
    return AuditFinding(
        attribute=payload["attribute"],
        metric=payload["metric"],
        status=payload["status"],
        result=rebuilt,
        reason=payload.get("reason", ""),
        four_fifths=(
            None
            if four_fifths is None
            else FourFifthsFinding.from_dict(four_fifths)
        ),
        traceback=payload.get("traceback", ""),
    )


def report_to_dict(report: AuditReport) -> dict:
    """JSON-able dict of a full audit report."""
    provenance = getattr(report, "provenance", None)
    return {
        "provenance": None if provenance is None else provenance.to_dict(),
        "dataset_summary": _plain(report.dataset_summary),
        "tolerance": _plain(report.tolerance),
        "is_clean": bool(report.is_clean),
        "degraded": bool(report.degraded),
        "counts": {
            "violations": len(report.violations()),
            "passes": len(report.passes()),
            "skipped": len(report.skipped()),
            "errors": len(report.errors()),
        },
        "degradations": _plain(report.degradations),
        "findings": [finding_to_dict(f) for f in report.findings],
        "intersectional_findings": [
            finding_to_dict(f) for f in report.intersectional_findings
        ],
        "power_notes": _plain(report.power_notes),
    }


def report_from_dict(payload: dict) -> AuditReport:
    """Rebuild an :class:`AuditReport` written by :func:`report_to_dict`.

    ``is_clean``, ``degraded``, and ``counts`` are derived and ignored
    on input; everything else round-trips, so
    ``report_to_dict(report_from_dict(d)) == d``.
    """
    provenance = payload.get("provenance")
    return AuditReport(
        dataset_summary=dict(payload["dataset_summary"]),
        tolerance=float(payload["tolerance"]),
        findings=[finding_from_dict(f) for f in payload.get("findings", [])],
        intersectional_findings=[
            finding_from_dict(f)
            for f in payload.get("intersectional_findings", [])
        ],
        power_notes=dict(payload.get("power_notes", {})),
        degradations=list(payload.get("degradations", [])),
        provenance=(
            None
            if provenance is None
            else ProvenanceRecord.from_dict(provenance)
        ),
    )


def report_to_json(report: AuditReport, indent: int = 2) -> str:
    """The audit report as a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent)


def report_from_json(text: str) -> AuditReport:
    """Parse a report serialised with :func:`report_to_json`."""
    return report_from_dict(json.loads(text))
