"""Criteria for selecting fairness methods (paper Section IV).

The paper's central practical contribution is a set of criteria a
practitioner must weigh when choosing a fairness definition for a
real-world use case.  This module turns those criteria into an executable
decision procedure:

1. describe the use case as a :class:`UseCaseProfile` (the questionnaire
   in Section IV.A: *"is structural bias recognized? ... are there
   directives, in the form of positive actions, that impose specific
   quota? Are there specific sensitive attributes that ... need to be
   taken into account and, vice versa, other ones that need to be
   ignored?"*);
2. call :func:`recommend_metrics` to obtain a ranked list of
   :class:`Recommendation` objects, each carrying a written rationale
   tracing back to the paper's criteria;
3. call :func:`risk_flags` for the cross-cutting risks of Sections
   IV.B–IV.F (proxies, intersectionality, feedback loops, manipulation,
   sampling) that apply regardless of the metric chosen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.legal import Jurisdiction
from repro.core.metrics import METRIC_CATALOG
from repro.core.types import EqualityConcept
from repro.exceptions import ValidationError

__all__ = [
    "UseCaseProfile",
    "Recommendation",
    "RiskFlag",
    "recommend_metrics",
    "risk_flags",
]


@dataclass(frozen=True)
class UseCaseProfile:
    """Answers to the paper's Section IV selection questionnaire.

    Parameters
    ----------
    name:
        Human-readable use-case label ("graduate hiring at AcmeCorp").
    sector:
        Legal sector tag: ``employment``, ``credit``, ``housing``, ...
    jurisdiction:
        ``"eu"`` or ``"us"`` (affects doctrine emphasis).
    structural_bias_recognized:
        IV.A: is there acknowledged structural/historical inequality that
        the deployment should *compensate for* (not merely avoid adding to)?
    affirmative_action_mandated:
        IV.A: do directives or policies impose quotas / positive action?
    labels_available:
        Do we possess ground-truth outcomes Y at audit time?
    ground_truth_reliable:
        Are the labels themselves trusted to be unbiased?  Historically
        biased labels poison equal-treatment metrics, which condition on Y.
    legitimate_factors:
        Names of attributes that are lawful, job-related conditioning
        factors (enables the conditional definitions III.B / III.F).
    causal_model_available:
        Can a defensible structural causal model of the domain be built
        (enables counterfactual fairness, III.G)?
    punitive_context:
        Do positive predictions *harm* the individual (bail, fraud
        flagging)?  False-positive balance then matters, favouring
        equalized odds over equal opportunity.
    n_protected_attributes:
        How many protected attributes are in scope (>1 triggers the
        intersectional machinery of Section IV.C).
    proxy_risk:
        Are plausible proxies for protected attributes present (IV.B)?
    small_subgroups_expected:
        Will intersectional subgroups be sparse (IV.C)?
    feedback_loop_risk:
        Will model outputs feed future training data or applicant
        behaviour (IV.D)?
    manipulation_risk:
        Could the model owner be motivated to mask bias (IV.E)?
    """

    name: str
    sector: str = "employment"
    jurisdiction: str = Jurisdiction.EU
    structural_bias_recognized: bool = False
    affirmative_action_mandated: bool = False
    labels_available: bool = True
    ground_truth_reliable: bool = True
    legitimate_factors: tuple = ()
    causal_model_available: bool = False
    punitive_context: bool = False
    n_protected_attributes: int = 1
    proxy_risk: bool = False
    small_subgroups_expected: bool = False
    feedback_loop_risk: bool = False
    manipulation_risk: bool = False

    def __post_init__(self):
        if not self.name:
            raise ValidationError("use case name must be non-empty")
        if self.jurisdiction not in Jurisdiction.ALL:
            raise ValidationError(
                f"jurisdiction must be one of {Jurisdiction.ALL}, got "
                f"{self.jurisdiction!r}"
            )
        if self.n_protected_attributes < 1:
            raise ValidationError(
                "n_protected_attributes must be at least 1, got "
                f"{self.n_protected_attributes}"
            )
        if self.affirmative_action_mandated and not self.structural_bias_recognized:
            raise ValidationError(
                "affirmative action presupposes recognized structural bias "
                "(paper IV.A: positive action is the instrument for "
                "recognized structural inequality)"
            )


@dataclass(frozen=True)
class Recommendation:
    """One metric recommendation with its criteria-derived rationale."""

    metric: str
    score: float
    equality_concept: str
    rationale: tuple
    feasible: bool = True
    blockers: tuple = ()

    def __repr__(self) -> str:
        tag = "" if self.feasible else " [INFEASIBLE]"
        return f"Recommendation({self.metric}, score={self.score:+.1f}{tag})"


@dataclass(frozen=True)
class RiskFlag:
    """A cross-cutting risk (Sections IV.B–IV.F) with mitigation advice."""

    risk: str
    paper_section: str
    advice: str
    tooling: tuple = ()


def recommend_metrics(profile: UseCaseProfile) -> list[Recommendation]:
    """Rank every cataloged metric for a use case.

    Scores are additive over the paper's criteria; rationale strings cite
    the criterion behind each contribution.  Metrics whose data
    requirements the profile cannot meet are marked infeasible (score
    forced to the bottom) with explicit blockers rather than silently
    dropped — the practitioner should see *why* an option is off the
    table.
    """
    recommendations = []
    for metric, info in METRIC_CATALOG.items():
        score = 0.0
        rationale: list[str] = []
        blockers: list[str] = []
        concept = info["equality_concept"]

        # -- feasibility ------------------------------------------------
        if info["needs_labels"] and not profile.labels_available:
            blockers.append(
                "requires ground-truth labels, which this use case lacks"
            )
        if info["needs_strata"] and not profile.legitimate_factors:
            blockers.append(
                "requires declared legitimate conditioning factors "
                "(paper III.B/III.F)"
            )
        if info["needs_scm"] and not profile.causal_model_available:
            blockers.append(
                "requires a defensible structural causal model (paper III.G)"
            )

        # -- IV.A: equal treatment vs equal outcome ----------------------
        if profile.structural_bias_recognized:
            if concept == EqualityConcept.EQUAL_OUTCOME:
                score += 2.0
                rationale.append(
                    "IV.A: structural bias is recognized, favouring "
                    "equal-outcome definitions that compensate for it"
                )
            elif concept == EqualityConcept.EQUAL_TREATMENT:
                score -= 1.0
                rationale.append(
                    "IV.A: equal-treatment definitions preserve structural "
                    "bias baked into the status quo (bias preservation, "
                    "Wachter et al.)"
                )
        else:
            if concept == EqualityConcept.EQUAL_TREATMENT:
                score += 2.0
                rationale.append(
                    "IV.A: no recognized structural bias, so formal equality "
                    "(the merit principle) favours equal-treatment "
                    "definitions"
                )
            elif concept == EqualityConcept.EQUAL_OUTCOME:
                score -= 1.0
                rationale.append(
                    "IV.A: without recognized structural bias, enforcing "
                    "equal outcomes conflicts with merit-based selection"
                )

        if profile.affirmative_action_mandated and concept == (
            EqualityConcept.EQUAL_OUTCOME
        ):
            score += 2.0
            rationale.append(
                "IV.A: positive-action directives impose outcome quotas, "
                "which equal-outcome definitions directly express"
            )

        # -- label trust --------------------------------------------------
        if info["needs_labels"]:
            if profile.ground_truth_reliable:
                score += 1.0
                rationale.append(
                    "labels are trusted, so conditioning on actual outcomes "
                    "(Y) is meaningful"
                )
            else:
                score -= 2.5
                rationale.append(
                    "IV.B/IV.D: labels carry historical bias; metrics that "
                    "condition on Y inherit and launder that bias"
                )

        # -- conditional variants -----------------------------------------
        if info["needs_strata"] and profile.legitimate_factors:
            score += 1.5
            rationale.append(
                "III.B/III.F: legitimate factors "
                f"{list(profile.legitimate_factors)} are declared, and "
                "conditioning on them avoids penalising lawful distinctions"
            )

        # -- counterfactual fairness ---------------------------------------
        if info["needs_scm"] and profile.causal_model_available:
            score += 2.5
            rationale.append(
                "V: counterfactual fairness is singled out as expressive "
                "enough to represent substantive equality, in the spirit of "
                "EU law, when a causal model is defensible"
            )

        # -- punitive context -----------------------------------------------
        if profile.punitive_context:
            if metric == "equalized_odds":
                score += 1.5
                rationale.append(
                    "positive predictions are punitive here, so false-"
                    "positive balance matters: equalized odds constrains "
                    "both error rates"
                )
            if metric == "equal_opportunity":
                score -= 0.5
                rationale.append(
                    "equal opportunity ignores false positives, which carry "
                    "the harm in punitive contexts"
                )
            if metric == "calibration_within_groups":
                score += 1.0
                rationale.append(
                    "risk scores drive punitive decisions, so scores must "
                    "mean the same thing across groups (calibration)"
                )

        # -- jurisdiction emphasis --------------------------------------------
        if profile.jurisdiction == Jurisdiction.EU:
            if metric == "conditional_demographic_disparity":
                score += 1.0
                rationale.append(
                    "V: CDD is highlighted by EU-focused scholarship "
                    "(Wachter et al.) as matching the Court of Justice's "
                    "framing of prima facie indirect discrimination"
                )
            if metric == "counterfactual_fairness":
                score += 0.5
                rationale.append(
                    "V: part of the literature considers counterfactual "
                    "fairness the best representation of EU substantive "
                    "equality"
                )
        else:
            if metric == "disparate_impact_ratio":
                score += 1.5
                rationale.append(
                    "II.B/IV.A: US enforcement screens disparate impact "
                    "with the EEOC four-fifths rule on selection-rate ratios"
                )

        feasible = not blockers
        if not feasible:
            score = -10.0 + score * 0.0  # fixed bottom score for infeasible
        recommendations.append(
            Recommendation(
                metric=metric,
                score=round(score, 2),
                equality_concept=concept,
                rationale=tuple(rationale),
                feasible=feasible,
                blockers=tuple(blockers),
            )
        )
    recommendations.sort(key=lambda r: (-r.score, r.metric))
    return recommendations


def risk_flags(profile: UseCaseProfile) -> list[RiskFlag]:
    """Cross-cutting risks (IV.B–IV.F) the deployment must address."""
    flags = []
    if profile.proxy_risk:
        flags.append(
            RiskFlag(
                risk="proxy_discrimination",
                paper_section="IV.B",
                advice=(
                    "Removing the sensitive attribute does not remove bias: "
                    "correlated proxies (university, residence, maternity "
                    "leave) let models reconstruct it. Audit outcomes, not "
                    "inputs, and measure proxy power explicitly."
                ),
                tooling=("repro.proxy.ProxyDetector", "repro.proxy.unawareness_report"),
            )
        )
    if profile.n_protected_attributes > 1:
        flags.append(
            RiskFlag(
                risk="intersectional_discrimination",
                paper_section="IV.C",
                advice=(
                    "Marginal fairness on each attribute does not imply "
                    "fairness on their intersections; audit subgroups, and "
                    "treat small-sample findings with significance tests."
                ),
                tooling=(
                    "repro.subgroup.audit_subgroups",
                    "repro.subgroup.GerrymanderingAuditor",
                ),
            )
        )
    if profile.small_subgroups_expected:
        flags.append(
            RiskFlag(
                risk="subgroup_sparsity",
                paper_section="IV.C",
                advice=(
                    "Sparse subgroups make bias estimates unreliable; attach "
                    "confidence intervals and report the minimum detectable "
                    "gap instead of asserting 'no disparity found'."
                ),
                tooling=(
                    "repro.stats.wilson_interval",
                    "repro.stats.min_detectable_gap",
                ),
            )
        )
    if profile.feedback_loop_risk:
        flags.append(
            RiskFlag(
                risk="feedback_loops",
                paper_section="IV.D",
                advice=(
                    "Outputs that re-enter training data or discourage "
                    "applicants compound bias round over round; simulate "
                    "the deployment loop before going live and monitor "
                    "drift after."
                ),
                tooling=("repro.feedback.FeedbackLoopSimulator",),
            )
        )
    if profile.manipulation_risk:
        flags.append(
            RiskFlag(
                risk="audit_manipulation",
                paper_section="IV.E",
                advice=(
                    "Explanation-based audits can be fooled by adversarial "
                    "retraining that hides the sensitive attribute's "
                    "contribution while preserving biased outputs; base "
                    "audits on outcome disparities, which concealment "
                    "cannot remove."
                ),
                tooling=(
                    "repro.manipulation.ConcealmentAttack",
                    "repro.manipulation.outcome_based_defense",
                ),
            )
        )
    flags.append(
        RiskFlag(
            risk="sampling_requirements",
            paper_section="IV.F",
            advice=(
                "Bias estimates carry sampling error that shrinks roughly "
                "as n^(-1/2); size the audit sample for the disparity "
                "magnitude that matters legally, and prefer distances with "
                "known sample complexity."
            ),
            tooling=("repro.stats.sample_complexity_curve",),
        )
    )
    return flags
