"""Machine-readable glossary of the paper's legal/technical vocabulary.

The paper's stated goal is communicating algorithmic fairness "to
non-technical audiences" and legal doctrine to technical ones.  This
glossary carries that bridge in code: every term the paper defines, with
its definition, the paper section it comes from, its discipline of
origin, and cross-references — used by report renderers and the CLI,
and testable against the catalog (every metric and doctrine used
elsewhere in the library must have an entry).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import LegalCatalogError

__all__ = ["GlossaryEntry", "GLOSSARY", "define", "terms_in_section", "related_terms"]


@dataclass(frozen=True)
class GlossaryEntry:
    """One glossary term."""

    term: str
    definition: str
    paper_section: str
    discipline: str  # "law", "ml", or "bridge"
    related: tuple = ()


_ENTRIES = [
    GlossaryEntry(
        term="direct discrimination",
        definition=(
            "A person is treated less favourably based on a protected "
            "attribute they possess, in a protected sector. Grounded in "
            "the Aristotelian postulate of treating like cases alike "
            "(formal equality / the merit principle). US counterpart: "
            "disparate treatment."
        ),
        paper_section="II.A.3",
        discipline="law",
        related=("disparate treatment", "formal equality"),
    ),
    GlossaryEntry(
        term="indirect discrimination",
        definition=(
            "Ostensibly neutral provisions or practices, universally "
            "applied, disproportionately disadvantage individuals with "
            "protected characteristics. May be justified by a legitimate "
            "aim passing the proportionality test. US counterpart: "
            "disparate impact."
        ),
        paper_section="II.A.3",
        discipline="law",
        related=("disparate impact", "proportionality test",
                 "proxy discrimination"),
    ),
    GlossaryEntry(
        term="disparate treatment",
        definition=(
            "Intentional differential treatment based on a protected "
            "characteristic; requires showing the characteristic was a "
            "motivating factor or but-for cause of the adverse decision "
            "(Title VII)."
        ),
        paper_section="II.B.4",
        discipline="law",
        related=("direct discrimination",),
    ),
    GlossaryEntry(
        term="disparate impact",
        definition=(
            "Unintentional discrimination: facially neutral practices "
            "with disproportionate adverse effect on a protected class. "
            "No intent element; analysed through burden-shifting and "
            "screened in enforcement practice by the four-fifths rule."
        ),
        paper_section="II.B.4",
        discipline="law",
        related=("indirect discrimination", "four-fifths rule"),
    ),
    GlossaryEntry(
        term="formal equality",
        definition=(
            "Equality achieved by treating like cases alike — the merit "
            "principle. The notion behind equal-treatment fairness "
            "definitions (equal opportunity, equalized odds)."
        ),
        paper_section="II.A.3/IV.A",
        discipline="bridge",
        related=("equal treatment", "substantive equality"),
    ),
    GlossaryEntry(
        term="substantive equality",
        definition=(
            "Equality that accounts for and corrects historical and "
            "structural disadvantage, rather than merely applying the "
            "same rule to everyone. The paper positions counterfactual "
            "fairness as able to express it in the spirit of EU law."
        ),
        paper_section="IV.A/V",
        discipline="bridge",
        related=("equal outcome", "affirmative action",
                 "counterfactual fairness"),
    ),
    GlossaryEntry(
        term="equal treatment",
        definition=(
            "All individuals are given the same chances to achieve a "
            "favourable outcome; decisions rest on objective criteria "
            "ignoring the sensitive attribute. Metrics: equal "
            "opportunity, equalized odds, calibration, predictive parity."
        ),
        paper_section="IV.A",
        discipline="bridge",
        related=("formal equality", "equal outcome"),
    ),
    GlossaryEntry(
        term="equal outcome",
        definition=(
            "Protected (sub)groups obtain the favourable outcome "
            "equally/proportionally, even against the model's raw "
            "ranking. Metrics: demographic parity, conditional "
            "statistical parity, demographic disparity, CDD, "
            "disparate-impact ratio."
        ),
        paper_section="IV.A",
        discipline="bridge",
        related=("substantive equality", "affirmative action"),
    ),
    GlossaryEntry(
        term="affirmative action",
        definition=(
            "Positive action / positive discrimination: instruments "
            "(e.g. minimum quotas) that compensate recognised structural "
            "inequality against sensitive subpopulations."
        ),
        paper_section="IV.A",
        discipline="law",
        related=("equal outcome", "substantive equality"),
    ),
    GlossaryEntry(
        term="proxy discrimination",
        definition=(
            "Bias expressed not via sensitive attributes directly but "
            "via correlated proxy variables (height or maternity leave "
            "for sex; residence for race). The mechanism by which "
            "fairness through unawareness fails."
        ),
        paper_section="IV.B",
        discipline="bridge",
        related=("fairness through unawareness", "indirect discrimination",
                 "discrimination by association"),
    ),
    GlossaryEntry(
        term="fairness through unawareness",
        definition=(
            "The misconception that excluding sensitive attributes from "
            "training ensures fairness; defeated by redundant encodings "
            "in the remaining features."
        ),
        paper_section="IV.B",
        discipline="ml",
        related=("proxy discrimination",),
    ),
    GlossaryEntry(
        term="discrimination by association",
        definition=(
            "Individuals mistakenly treated as members of a protected "
            "group (e.g. via a shared proxy value, such as attending a "
            "predominantly female university) suffer that group's "
            "discrimination."
        ),
        paper_section="IV.B",
        discipline="law",
        related=("proxy discrimination",),
    ),
    GlossaryEntry(
        term="intersectional discrimination",
        definition=(
            "Discrimination against subgroups defined by more than one "
            "attribute (subgroup fairness, multi-dimensional "
            "discrimination): marginal fairness on each attribute does "
            "not imply fairness on intersections; sparse subgroups make "
            "findings statistically uncertain and drill-down is "
            "exponentially costly."
        ),
        paper_section="IV.C",
        discipline="bridge",
        related=("fairness gerrymandering",),
    ),
    GlossaryEntry(
        term="fairness gerrymandering",
        definition=(
            "Satisfying fairness constraints on marginal groups while "
            "violating them on structured subgroups; audited by learned-"
            "oracle subgroup search (Kearns et al.)."
        ),
        paper_section="IV.C/IV.E",
        discipline="ml",
        related=("intersectional discrimination",),
    ),
    GlossaryEntry(
        term="feedback loop",
        definition=(
            "Self-repeating process reinforcing preexisting bias: model "
            "outputs re-enter training data, and persistent rejection "
            "discourages protected-group members from applying at all."
        ),
        paper_section="IV.D",
        discipline="bridge",
    ),
    GlossaryEntry(
        term="four-fifths rule",
        definition=(
            "US EEOC screen for adverse impact: a group's selection rate "
            "below 80% of the highest group's rate is prima facie "
            "evidence of disparate impact."
        ),
        paper_section="IV.A (legal practice)",
        discipline="law",
        related=("disparate impact",),
    ),
    GlossaryEntry(
        term="proportionality test",
        definition=(
            "EU justification framework for indirect discrimination: a "
            "legitimate aim pursued through suitable, necessary, and "
            "proportionate means."
        ),
        paper_section="II.A.3",
        discipline="law",
        related=("indirect discrimination",),
    ),
    GlossaryEntry(
        term="counterfactual fairness",
        definition=(
            "A predictor is fair toward an individual when changing their "
            "sensitive attribute — adjusting causally downstream features "
            "accordingly — leaves the prediction unchanged. Requires a "
            "structural causal model; considered by part of the "
            "literature expressive enough to represent substantive "
            "equality."
        ),
        paper_section="III.G/V",
        discipline="ml",
        related=("substantive equality",),
    ),
    GlossaryEntry(
        term="sample complexity of bias detection",
        definition=(
            "The relationship between the number of samples and the "
            "error in estimating bias via distribution distances "
            "(Hellinger, TV, Wasserstein, MMD); governs how large an "
            "audit sample must be for a finding to mean anything."
        ),
        paper_section="IV.F",
        discipline="ml",
    ),
]

#: term → entry, lower-cased keys
GLOSSARY: dict[str, GlossaryEntry] = {e.term: e for e in _ENTRIES}


def define(term: str) -> GlossaryEntry:
    """Look up a term (case-insensitive)."""
    key = term.strip().lower()
    for name, entry in GLOSSARY.items():
        if name.lower() == key:
            return entry
    raise LegalCatalogError(
        f"unknown glossary term {term!r}; known: {sorted(GLOSSARY)}"
    )


def terms_in_section(section_prefix: str) -> list[GlossaryEntry]:
    """Entries whose paper section starts with ``section_prefix``."""
    return [
        entry for entry in GLOSSARY.values()
        if entry.paper_section.startswith(section_prefix)
    ]


def related_terms(term: str) -> list[GlossaryEntry]:
    """Entries cross-referenced by a term (unknown references skipped)."""
    entry = define(term)
    out = []
    for name in entry.related:
        try:
            out.append(define(name))
        except LegalCatalogError:
            continue
    return out
