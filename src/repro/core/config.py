"""One frozen configuration object for every audit entry point.

Before this module, audit knobs were scattered across call signatures:
``FairnessAudit.__init__`` took tolerance/strata/policy/faults/tracer,
``audit_subgroups`` took max_order/min_size/alpha/jobs, and
``run_compliance_workflow`` repeated the audit subset again.  An
:class:`AuditConfig` captures all of them once, immutably, so batch
(:func:`repro.audit`), streaming (:func:`repro.streaming.audit_stream`),
monitoring (:class:`repro.streaming.FairnessMonitor`), and the subgroup
scan share one contract — and so a configuration can be fingerprinted,
serialised next to checkpoint state, and compared across runs.

The battery itself (which metrics run) is selected by name against the
canonical registry in :mod:`repro.core.audit` (``BATTERY_REGISTRY``);
``metrics=None`` means the full battery.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro._validation import (
    check_membership,
    check_nonnegative,
    check_positive_int,
    check_probability,
)
from repro.exceptions import AuditError
from repro.robustness import ExecutionPolicy

__all__ = [
    "AuditConfig",
    "MonitorConfig",
    "ScanConfig",
    "MONITOR_DETECTORS",
    "SCAN_STRATEGIES",
]

#: Subgroup-scan strategies accepted by :class:`ScanConfig`.
SCAN_STRATEGIES = ("exhaustive", "best_first", "incremental")

#: Drift detectors accepted by :class:`MonitorConfig`, in precedence
#: order (when several fire on one window/metric, the event records the
#: first).
MONITOR_DETECTORS = ("threshold", "spending", "cusum")

#: ExecutionPolicy fields that an AuditConfig round-trips through JSON.
_POLICY_FIELDS = (
    "deadline",
    "max_retries",
    "backoff_base",
    "backoff_factor",
    "backoff_cap",
    "backoff_jitter",
    "max_failures",
    "fail_fast",
)


@dataclass(frozen=True)
class ScanConfig:
    """Immutable settings for one subgroup-lattice scan.

    Mirrors :class:`AuditConfig` for the subgroup scanner: validated at
    construction, frozen, serialisable, and fingerprintable so results
    produced under different strategies never collide in caches.

    Parameters
    ----------
    strategy:
        ``"exhaustive"`` visits every subgroup; ``"best_first"`` runs
        the bound-driven branch-and-bound (provably the same flagged
        set); ``"incremental"`` additionally persists a
        :class:`~repro.subgroup.search.ScanState` so a grown dataset can
        be re-scored from the delta.
    max_order:
        Maximum conjunction order (number of attributes combined).
    min_size:
        Minimum subgroup size scored (and counted in the correction
        family).
    alpha:
        Significance level for flagging after correction.
    correction:
        Multiple-testing correction: ``"holm"``, ``"bh"``, or ``"none"``.
    checkpoint_every:
        Scored-subgroup cadence between checkpoint writes (must be
        >= 1).
    jobs:
        Worker processes for counting/scoring (>= 1).
    bound_slack:
        Non-negative widening of the prune threshold: a subgroup is
        pruned only when its p-value lower bound exceeds
        ``alpha + bound_slack``.  ``0.0`` is already sound; slack buys
        extra headroom against floating-point edge effects at the cost
        of fewer pruned subgroups.
    """

    strategy: str = "exhaustive"
    max_order: int = 2
    min_size: int = 10
    alpha: float = 0.05
    correction: str = "holm"
    checkpoint_every: int = 64
    jobs: int = 1
    bound_slack: float = 0.0

    def __post_init__(self):
        check_membership(self.strategy, "strategy", SCAN_STRATEGIES)
        check_positive_int(self.max_order, "max_order")
        check_positive_int(self.min_size, "min_size")
        check_probability(self.alpha, "alpha")
        check_membership(self.correction, "correction", ("holm", "bh", "none"))
        check_positive_int(self.checkpoint_every, "checkpoint_every")
        check_positive_int(self.jobs, "jobs")
        check_nonnegative(self.bound_slack, "bound_slack")

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes) -> "ScanConfig":
        """A new config with ``changes`` applied (the object is frozen)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_audit(cls, config: "AuditConfig", **overrides) -> "ScanConfig":
        """Derive a scan config from an :class:`AuditConfig`.

        When the audit config already carries an explicit ``scan``, that
        object (with ``overrides`` applied) wins; otherwise the shared
        subgroup knobs (``max_order``/``min_size``/``alpha``/
        ``correction``/``jobs``) are lifted into a fresh
        :class:`ScanConfig`.
        """
        if config.scan is not None:
            return config.scan.replace(**overrides) if overrides else config.scan
        base = cls(
            max_order=config.max_order,
            min_size=config.min_size,
            alpha=config.alpha,
            correction=config.correction,
            jobs=config.jobs,
        )
        return base.replace(**overrides) if overrides else base

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able dict of every field."""
        return {
            "strategy": self.strategy,
            "max_order": self.max_order,
            "min_size": self.min_size,
            "alpha": self.alpha,
            "correction": self.correction,
            "checkpoint_every": self.checkpoint_every,
            "jobs": self.jobs,
            "bound_slack": self.bound_slack,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScanConfig":
        """Rebuild a config written by :meth:`to_dict`."""
        payload = dict(payload)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise AuditError(
                f"unknown ScanConfig fields: {sorted(unknown)}"
            )
        return cls(**payload)

    def fingerprint(self) -> str:
        """sha256 over every field — the result-cache key component.

        Includes ``strategy``, so exhaustive and best-first results are
        cached under distinct keys even for identical lattice settings.
        """
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()

    def equivalence_key(self) -> dict:
        """The fields that determine the flagged set and final findings.

        Strategy, parallelism, checkpoint cadence, and bound slack are
        execution details — two scans agreeing on this key must produce
        identical findings, corrections, and final checkpoint bytes.
        Scan checkpoints embed a hash of this key so state written under
        one lattice configuration refuses to resume under another.
        """
        return {
            "max_order": self.max_order,
            "min_size": self.min_size,
            "alpha": self.alpha,
            "correction": self.correction,
        }


@dataclass(frozen=True)
class MonitorConfig:
    """Immutable settings for continuous fairness monitoring.

    Mirrors :class:`ScanConfig` for the monitoring fleet
    (:class:`repro.monitor.MonitorFleet`): validated at construction,
    frozen, serialisable, and fingerprintable, so a monitoring session's
    alerting semantics can be recorded next to its evidence.

    Parameters
    ----------
    window:
        Rows per evaluation window.
    drift_threshold:
        Absolute change in a metric's gap, relative to the running
        baseline (mean of that metric's gap over previous windows),
        that the ``"threshold"`` detector flags.
    detectors:
        Which drift detectors run, a non-empty subset of
        :data:`MONITOR_DETECTORS`.  ``"threshold"`` is the legacy
        per-window rule; ``"spending"`` is an alpha-spending sequential
        z-test (Pocock-style per-window budgets over ``horizon``
        windows, so repeated testing does not inflate false alarms);
        ``"cusum"`` accumulates small sustained gap shifts in a
        CUSUM-style tracker.  At most one
        :class:`~repro.monitor.DriftEvent` fires per (window, metric),
        attributed to the first detector in this order that alarmed.
    alpha:
        Total type-I error budget the ``"spending"`` detector spreads
        over each ``horizon``-window cycle.
    horizon:
        Windows per alpha-spending cycle (the budget refreshes after
        ``horizon`` tested windows per metric).
    cusum_k:
        CUSUM drift allowance per window (the slack subtracted from
        each deviation before it accumulates).  ``None`` derives
        ``drift_threshold / 2``.
    cusum_h:
        CUSUM decision interval: an alarm fires when the accumulated
        one-sided deviation exceeds it.  ``None`` derives
        ``2 * drift_threshold``.
    """

    window: int = 500
    drift_threshold: float = 0.1
    detectors: tuple[str, ...] = ("threshold",)
    alpha: float = 0.05
    horizon: int = 200
    cusum_k: float | None = None
    cusum_h: float | None = None

    def __post_init__(self):
        check_positive_int(self.window, "window")
        if not 0 < self.drift_threshold <= 1:
            raise AuditError(
                f"drift_threshold must be in (0, 1], got "
                f"{self.drift_threshold!r}"
            )
        detectors = tuple(self.detectors)
        object.__setattr__(self, "detectors", detectors)
        if not detectors:
            raise AuditError("detectors must name at least one detector")
        for detector in detectors:
            check_membership(detector, "detectors", MONITOR_DETECTORS)
        if len(set(detectors)) != len(detectors):
            raise AuditError(f"duplicate detectors: {list(detectors)}")
        check_probability(self.alpha, "alpha")
        check_positive_int(self.horizon, "horizon")
        if self.cusum_k is not None:
            check_nonnegative(self.cusum_k, "cusum_k")
        if self.cusum_h is not None and self.cusum_h <= 0:
            raise AuditError(
                f"cusum_h must be positive, got {self.cusum_h!r}"
            )

    # -- derived detector parameters -----------------------------------------

    def resolved_cusum_k(self) -> float:
        """The CUSUM per-window allowance, defaulted off the threshold."""
        return (
            self.drift_threshold / 2.0
            if self.cusum_k is None
            else float(self.cusum_k)
        )

    def resolved_cusum_h(self) -> float:
        """The CUSUM decision interval, defaulted off the threshold."""
        return (
            2.0 * self.drift_threshold
            if self.cusum_h is None
            else float(self.cusum_h)
        )

    def spending_allowance(self, look: int) -> float:
        """The alpha budget window number ``look`` (1-based) may spend.

        Pocock-style spending function
        ``alpha(t) = alpha * ln(1 + (e - 1) * t)`` with ``t`` the
        fraction of the horizon consumed; the allowance is the budget
        *increment* between consecutive looks, so the alarms of a whole
        ``horizon``-window cycle spend at most ``alpha`` in total.
        Looks beyond the horizon start a fresh cycle.
        """
        import math

        if look < 1:
            raise AuditError(f"look must be >= 1, got {look}")
        position = (look - 1) % self.horizon + 1

        def spent(t: float) -> float:
            return self.alpha * math.log(1.0 + (math.e - 1.0) * t)

        return spent(position / self.horizon) - spent(
            (position - 1) / self.horizon
        )

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes) -> "MonitorConfig":
        """A new config with ``changes`` applied (the object is frozen)."""
        return dataclasses.replace(self, **changes)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able dict of every field."""
        return {
            "window": self.window,
            "drift_threshold": self.drift_threshold,
            "detectors": list(self.detectors),
            "alpha": self.alpha,
            "horizon": self.horizon,
            "cusum_k": self.cusum_k,
            "cusum_h": self.cusum_h,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MonitorConfig":
        """Rebuild a config written by :meth:`to_dict`."""
        payload = dict(payload)
        detectors = payload.pop("detectors", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise AuditError(
                f"unknown MonitorConfig fields: {sorted(unknown)}"
            )
        if detectors is not None:
            payload["detectors"] = tuple(detectors)
        return cls(**payload)

    def fingerprint(self) -> str:
        """sha256 over every field — stable across processes."""
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()


@dataclass(frozen=True)
class AuditConfig:
    """Immutable settings shared by every audit entry point.

    Parameters
    ----------
    tolerance:
        Gap accepted as fair for every parity metric.
    strata:
        Name of a legitimate conditioning column for the conditional
        definitions; they are skipped when ``None``.
    metrics:
        Battery subset as a tuple of metric names from
        :data:`repro.core.audit.BATTERY_REGISTRY`; ``None`` runs the
        full battery.  Unknown names raise at construction time.
    min_stratum_group_size:
        Minimum per-group count within a stratum (Section IV.C guard).
    policy:
        :class:`~repro.robustness.ExecutionPolicy` supervising each
        stage; ``None`` uses the default fail-open policy.
    faults:
        Optional :class:`~repro.robustness.FaultInjector` (chaos hook).
        Not serialised by :meth:`to_dict`.
    tracer:
        Optional :class:`~repro.observability.Tracer`; ``None`` uses the
        process-current tracer.  Not serialised by :meth:`to_dict`.
    max_order / min_size / alpha / correction / jobs:
        Subgroup-scan knobs (:func:`repro.subgroup.audit_subgroups`):
        conjunction order, minimum subgroup size, significance level,
        multiple-testing correction (``"holm"``/``"bh"``/``"none"``),
        and worker processes.
    scan:
        Optional :class:`ScanConfig` controlling subgroup-scan strategy
        (exhaustive / best-first / incremental).  When set it wins over
        the loose subgroup knobs above; when ``None`` the scan derives
        its settings from them (see :meth:`ScanConfig.from_audit`).
        Omitted from :meth:`to_dict` when ``None`` so fingerprints of
        pre-existing configurations are unchanged.
    monitor:
        Optional :class:`MonitorConfig` for continuous monitoring
        (:class:`repro.monitor.MonitorFleet` and the legacy
        :class:`repro.streaming.FairnessMonitor` wrapper): window size,
        drift threshold, and the sequential-testing detectors.  Like
        ``scan``, omitted from :meth:`to_dict` when ``None``.
    """

    tolerance: float = 0.05
    strata: str | None = None
    metrics: tuple[str, ...] | None = None
    min_stratum_group_size: int = 5
    policy: ExecutionPolicy | None = None
    faults: object = None
    tracer: object = None
    max_order: int = 2
    min_size: int = 10
    alpha: float = 0.05
    correction: str = "holm"
    jobs: int = 1
    scan: ScanConfig | None = None
    monitor: MonitorConfig | None = None

    def __post_init__(self):
        if self.scan is not None and not isinstance(self.scan, ScanConfig):
            if isinstance(self.scan, dict):
                object.__setattr__(self, "scan", ScanConfig.from_dict(self.scan))
            else:
                raise AuditError(
                    "scan must be a ScanConfig (or a ScanConfig.to_dict() "
                    f"mapping), got {type(self.scan).__name__}"
                )
        if self.monitor is not None and not isinstance(
            self.monitor, MonitorConfig
        ):
            if isinstance(self.monitor, dict):
                object.__setattr__(
                    self, "monitor", MonitorConfig.from_dict(self.monitor)
                )
            else:
                raise AuditError(
                    "monitor must be a MonitorConfig (or a "
                    "MonitorConfig.to_dict() mapping), got "
                    f"{type(self.monitor).__name__}"
                )
        check_probability(self.tolerance, "tolerance")
        check_probability(self.alpha, "alpha")
        check_positive_int(self.jobs, "jobs")
        check_positive_int(self.max_order, "max_order")
        check_positive_int(self.min_size, "min_size")
        check_positive_int(
            self.min_stratum_group_size, "min_stratum_group_size"
        )
        if self.correction not in ("holm", "bh", "none"):
            raise AuditError(
                f"unknown correction {self.correction!r}; "
                "use 'holm', 'bh', or 'none'"
            )
        if self.metrics is not None:
            from repro.core.audit import battery_metrics

            battery_metrics(tuple(self.metrics))
            object.__setattr__(self, "metrics", tuple(self.metrics))

    # -- battery -------------------------------------------------------------

    def battery(self) -> tuple[str, ...]:
        """The metric names this configuration runs, registry-validated.

        Names resolve against the canonical
        :data:`repro.core.audit.BATTERY_REGISTRY`; ``metrics=None`` runs
        the full battery in registry order, an explicit subset runs in
        the order given (deduplicated).
        """
        from repro.core.audit import battery_metrics

        return battery_metrics(self.metrics)

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes) -> "AuditConfig":
        """A new config with ``changes`` applied (the object is frozen)."""
        return dataclasses.replace(self, **changes)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able dict of every serialisable field.

        ``faults`` and ``tracer`` are process-local objects and are
        deliberately dropped; ``policy`` round-trips through its scalar
        fields (custom ``retryable``/``sleep``/``rng``/``stage_overrides``
        do not survive — they are process-local too).
        """
        payload = {
            "tolerance": self.tolerance,
            "strata": self.strata,
            "metrics": None if self.metrics is None else list(self.metrics),
            "min_stratum_group_size": self.min_stratum_group_size,
            "max_order": self.max_order,
            "min_size": self.min_size,
            "alpha": self.alpha,
            "correction": self.correction,
            "jobs": self.jobs,
            "policy": (
                None
                if self.policy is None
                else {
                    name: getattr(self.policy, name)
                    for name in _POLICY_FIELDS
                }
            ),
        }
        if self.scan is not None:
            payload["scan"] = self.scan.to_dict()
        if self.monitor is not None:
            payload["monitor"] = self.monitor.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditConfig":
        """Rebuild a config written by :meth:`to_dict`."""
        payload = dict(payload)
        policy = payload.pop("policy", None)
        metrics = payload.pop("metrics", None)
        scan = payload.pop("scan", None)
        monitor = payload.pop("monitor", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise AuditError(
                f"unknown AuditConfig fields: {sorted(unknown)}"
            )
        return cls(
            metrics=None if metrics is None else tuple(metrics),
            policy=None if policy is None else ExecutionPolicy(**policy),
            scan=None if scan is None else ScanConfig.from_dict(scan),
            monitor=(
                None if monitor is None else MonitorConfig.from_dict(monitor)
            ),
            **payload,
        )

    def fingerprint(self) -> str:
        """sha256 over the serialisable fields — stable across processes.

        Streaming checkpoints embed this so accumulator state written
        under one configuration refuses to resume under another.
        """
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()
