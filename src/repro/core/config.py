"""One frozen configuration object for every audit entry point.

Before this module, audit knobs were scattered across call signatures:
``FairnessAudit.__init__`` took tolerance/strata/policy/faults/tracer,
``audit_subgroups`` took max_order/min_size/alpha/jobs, and
``run_compliance_workflow`` repeated the audit subset again.  An
:class:`AuditConfig` captures all of them once, immutably, so batch
(:func:`repro.audit`), streaming (:func:`repro.streaming.audit_stream`),
monitoring (:class:`repro.streaming.FairnessMonitor`), and the subgroup
scan share one contract — and so a configuration can be fingerprinted,
serialised next to checkpoint state, and compared across runs.

The battery itself (which metrics run) is selected by name against the
canonical registry in :mod:`repro.core.audit` (``BATTERY_REGISTRY``);
``metrics=None`` means the full battery.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro._validation import check_positive_int, check_probability
from repro.exceptions import AuditError
from repro.robustness import ExecutionPolicy

__all__ = ["AuditConfig"]

#: ExecutionPolicy fields that an AuditConfig round-trips through JSON.
_POLICY_FIELDS = (
    "deadline",
    "max_retries",
    "backoff_base",
    "backoff_factor",
    "backoff_cap",
    "backoff_jitter",
    "max_failures",
    "fail_fast",
)


@dataclass(frozen=True)
class AuditConfig:
    """Immutable settings shared by every audit entry point.

    Parameters
    ----------
    tolerance:
        Gap accepted as fair for every parity metric.
    strata:
        Name of a legitimate conditioning column for the conditional
        definitions; they are skipped when ``None``.
    metrics:
        Battery subset as a tuple of metric names from
        :data:`repro.core.audit.BATTERY_REGISTRY`; ``None`` runs the
        full battery.  Unknown names raise at construction time.
    min_stratum_group_size:
        Minimum per-group count within a stratum (Section IV.C guard).
    policy:
        :class:`~repro.robustness.ExecutionPolicy` supervising each
        stage; ``None`` uses the default fail-open policy.
    faults:
        Optional :class:`~repro.robustness.FaultInjector` (chaos hook).
        Not serialised by :meth:`to_dict`.
    tracer:
        Optional :class:`~repro.observability.Tracer`; ``None`` uses the
        process-current tracer.  Not serialised by :meth:`to_dict`.
    max_order / min_size / alpha / correction / jobs:
        Subgroup-scan knobs (:func:`repro.subgroup.audit_subgroups`):
        conjunction order, minimum subgroup size, significance level,
        multiple-testing correction (``"holm"``/``"bh"``/``"none"``),
        and worker processes.
    """

    tolerance: float = 0.05
    strata: str | None = None
    metrics: tuple[str, ...] | None = None
    min_stratum_group_size: int = 5
    policy: ExecutionPolicy | None = None
    faults: object = None
    tracer: object = None
    max_order: int = 2
    min_size: int = 10
    alpha: float = 0.05
    correction: str = "holm"
    jobs: int = 1

    def __post_init__(self):
        check_probability(self.tolerance, "tolerance")
        check_probability(self.alpha, "alpha")
        check_positive_int(self.jobs, "jobs")
        check_positive_int(self.max_order, "max_order")
        check_positive_int(self.min_size, "min_size")
        check_positive_int(
            self.min_stratum_group_size, "min_stratum_group_size"
        )
        if self.correction not in ("holm", "bh", "none"):
            raise AuditError(
                f"unknown correction {self.correction!r}; "
                "use 'holm', 'bh', or 'none'"
            )
        if self.metrics is not None:
            from repro.core.audit import battery_metrics

            battery_metrics(tuple(self.metrics))
            object.__setattr__(self, "metrics", tuple(self.metrics))

    # -- battery -------------------------------------------------------------

    def battery(self) -> tuple[str, ...]:
        """The metric names this configuration runs, registry-validated.

        Names resolve against the canonical
        :data:`repro.core.audit.BATTERY_REGISTRY`; ``metrics=None`` runs
        the full battery in registry order, an explicit subset runs in
        the order given (deduplicated).
        """
        from repro.core.audit import battery_metrics

        return battery_metrics(self.metrics)

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes) -> "AuditConfig":
        """A new config with ``changes`` applied (the object is frozen)."""
        return dataclasses.replace(self, **changes)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able dict of every serialisable field.

        ``faults`` and ``tracer`` are process-local objects and are
        deliberately dropped; ``policy`` round-trips through its scalar
        fields (custom ``retryable``/``sleep``/``rng``/``stage_overrides``
        do not survive — they are process-local too).
        """
        payload = {
            "tolerance": self.tolerance,
            "strata": self.strata,
            "metrics": None if self.metrics is None else list(self.metrics),
            "min_stratum_group_size": self.min_stratum_group_size,
            "max_order": self.max_order,
            "min_size": self.min_size,
            "alpha": self.alpha,
            "correction": self.correction,
            "jobs": self.jobs,
            "policy": (
                None
                if self.policy is None
                else {
                    name: getattr(self.policy, name)
                    for name in _POLICY_FIELDS
                }
            ),
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditConfig":
        """Rebuild a config written by :meth:`to_dict`."""
        payload = dict(payload)
        policy = payload.pop("policy", None)
        metrics = payload.pop("metrics", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise AuditError(
                f"unknown AuditConfig fields: {sorted(unknown)}"
            )
        return cls(
            metrics=None if metrics is None else tuple(metrics),
            policy=None if policy is None else ExecutionPolicy(**policy),
            **payload,
        )

    def fingerprint(self) -> str:
        """sha256 over the serialisable fields — stable across processes.

        Streaming checkpoints embed this so accumulator state written
        under one configuration refuses to resume under another.
        """
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()
