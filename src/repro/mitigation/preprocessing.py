"""Pre-processing mitigations: fix the data before training.

* :func:`reweighing` — Kamiran & Calders instance weights that decouple
  the protected attribute from the label in expectation;
* :func:`massaging` — minimally relabel borderline instances to equalise
  group positive rates (the classic "massaging" repair);
* :func:`uniform_resampling` — resample so every (group, label) cell has
  its independence-expected share.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_random_state
from repro.data.dataset import TabularDataset
from repro.exceptions import MitigationError
from repro.models.base import Classifier
from repro.models.logistic import LogisticRegression
from repro.models.preprocessing import Standardizer

__all__ = ["reweighing", "massaging", "uniform_resampling"]


def _groups_and_labels(
    dataset: TabularDataset, attribute: str
) -> tuple[np.ndarray, np.ndarray]:
    if dataset.schema.label_name is None:
        raise MitigationError("dataset must carry labels")
    if attribute not in dataset.schema:
        raise MitigationError(f"unknown attribute {attribute!r}")
    return dataset.column(attribute), dataset.labels().astype(int)


def reweighing(dataset: TabularDataset, attribute: str) -> np.ndarray:
    """Kamiran–Calders reweighing: w(a, y) = P(a)·P(y) / P(a, y).

    Training any weight-aware classifier with these weights makes the
    protected attribute and the label statistically independent in the
    weighted empirical distribution, removing the incentive to learn the
    historical association (including through proxies).
    """
    groups, labels = _groups_and_labels(dataset, attribute)
    n = dataset.n_rows
    weights = np.zeros(n, dtype=float)
    for group in np.unique(groups):
        p_group = float(np.mean(groups == group))
        for label in (0, 1):
            cell = (groups == group) & (labels == label)
            p_cell = float(np.mean(cell))
            if p_cell == 0:
                continue
            p_label = float(np.mean(labels == label))
            weights[cell] = p_group * p_label / p_cell
    if np.any(weights <= 0):
        raise MitigationError(
            "reweighing produced non-positive weights; a (group, label) "
            "cell is empty"
        )
    return weights


def massaging(
    dataset: TabularDataset,
    attribute: str,
    ranker: Classifier | None = None,
) -> TabularDataset:
    """Relabel borderline instances to equalise group positive rates.

    Promotes the highest-scored negatives of the disadvantaged group and
    demotes the lowest-scored positives of the advantaged group, in equal
    numbers, until the positive rates match as closely as integer counts
    allow.  ``ranker`` scores "deservingness" (defaults to a logistic
    regression fitted on the dataset's features).

    Only binary protected attributes are supported (the classic setting).
    """
    groups, labels = _groups_and_labels(dataset, attribute)
    values = np.unique(groups)
    if len(values) != 2:
        raise MitigationError(
            f"massaging requires a binary attribute, got {values.tolist()}"
        )

    rates = {v: float(labels[groups == v].mean()) for v in values}
    disadvantaged = min(values, key=lambda v: rates[v])
    advantaged = max(values, key=lambda v: rates[v])
    if rates[disadvantaged] == rates[advantaged]:
        return dataset

    if ranker is None:
        ranker = LogisticRegression(max_iter=600)
    scaler = Standardizer()
    X = scaler.fit_transform(dataset.feature_matrix())
    if not ranker.is_fitted:
        ranker.fit(X, labels)
    scores = ranker.predict_proba(X)

    n_dis = int(np.sum(groups == disadvantaged))
    n_adv = int(np.sum(groups == advantaged))
    pos_dis = int(labels[groups == disadvantaged].sum())
    pos_adv = int(labels[groups == advantaged].sum())
    # Swapping m labels moves the rates toward each other; solve for the m
    # that best equalises (pos_dis + m)/n_dis ≈ (pos_adv − m)/n_adv.
    m_star = (pos_adv * n_dis - pos_dis * n_adv) / (n_dis + n_adv)
    promotable = np.flatnonzero((groups == disadvantaged) & (labels == 0))
    demotable = np.flatnonzero((groups == advantaged) & (labels == 1))
    m = int(round(max(0.0, m_star)))
    m = min(m, len(promotable), len(demotable))

    new_labels = labels.copy()
    if m > 0:
        promote = promotable[np.argsort(-scores[promotable])][:m]
        demote = demotable[np.argsort(scores[demotable])][:m]
        new_labels[promote] = 1
        new_labels[demote] = 0
    label_col = dataset.schema[dataset.schema.label_name]
    return dataset.with_column(label_col, new_labels)


def uniform_resampling(
    dataset: TabularDataset,
    attribute: str,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """Resample to the independence-expected (group, label) cell sizes.

    Keeps the dataset size constant; cells above their expected share are
    sub-sampled without replacement, cells below it are over-sampled with
    replacement.
    """
    groups, labels = _groups_and_labels(dataset, attribute)
    rng = check_random_state(random_state)
    n = dataset.n_rows
    chosen: list[int] = []
    for group in np.unique(groups):
        p_group = float(np.mean(groups == group))
        for label in (0, 1):
            p_label = float(np.mean(labels == label))
            members = np.flatnonzero((groups == group) & (labels == label))
            target = int(round(p_group * p_label * n))
            if target == 0:
                continue
            if len(members) == 0:
                raise MitigationError(
                    f"cell (group={group!r}, label={label}) is empty; "
                    "cannot resample to independence"
                )
            replace = target > len(members)
            chosen.extend(
                rng.choice(members, size=target, replace=replace).tolist()
            )
    return dataset.take(np.sort(chosen))
