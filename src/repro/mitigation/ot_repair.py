"""Optimal-transport score repair, including the group-blind variant.

Section IV.F of the paper highlights *"novel methods for so-called
fairness repair that do not require the protected attribute in the
training data, but rather only the population-wide marginals of the
protected attribute"* (Zhou & Marecek 2023; Langbridge et al. 2024).

Two repair operators are provided:

* :class:`QuantileRepair` — the classic (group-aware) Feldman-style
  repair: each group's score distribution is transported onto their
  common barycenter, fully removing distributional disparity.  Needs the
  protected value of every record.
* :class:`GroupBlindRepair` — the group-blind variant: it receives only
  (a) *population-level* group score distributions (e.g. from public
  statistics) with their marginal weights, and (b) the unlabelled scores
  to repair.  It builds one common monotone transport map from the
  mixture distribution onto the barycenter and applies it to every
  record, without ever knowing which group a record belongs to.  A single
  shared map cannot equalise the groups perfectly, but it provably
  shrinks the Wasserstein gap between them whenever the map compresses
  the region where the group densities disagree — the diagnostics report
  the achieved reduction.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_array_1d, check_in_range, check_same_length
from repro.exceptions import MitigationError, NotFittedError
from repro.stats.distances import wasserstein1_empirical

__all__ = ["QuantileRepair", "GroupBlindRepair"]


def _interp_quantile(sample: np.ndarray, levels: np.ndarray) -> np.ndarray:
    """Linear-interpolation empirical quantile function."""
    sorted_sample = np.sort(sample)
    positions = np.linspace(0.0, 1.0, len(sorted_sample))
    return np.interp(levels, positions, sorted_sample)


def _empirical_cdf(sample: np.ndarray, points: np.ndarray) -> np.ndarray:
    sorted_sample = np.sort(sample)
    return np.searchsorted(sorted_sample, points, side="right") / len(
        sorted_sample
    )


class QuantileRepair:
    """Group-aware total/partial repair onto the quantile barycenter.

    ``amount`` interpolates between no repair (0) and total repair (1):
    a repaired value is ``(1 − amount)·x + amount·Q_bary(F_g(x))``.
    """

    def __init__(self, amount: float = 1.0):
        self.amount = check_in_range(amount, "amount", 0.0, 1.0)
        self._group_samples: dict | None = None
        self._weights: dict | None = None

    def fit(self, values, groups) -> "QuantileRepair":
        values = check_array_1d(values, "values").astype(float)
        groups = check_array_1d(groups, "groups")
        check_same_length(("values", values), ("groups", groups))
        unique = np.unique(groups)
        if len(unique) < 2:
            raise MitigationError("repair requires at least two groups")
        self._group_samples = {
            g: np.sort(values[groups == g]) for g in unique
        }
        self._weights = {g: float(np.mean(groups == g)) for g in unique}
        return self

    def _barycenter_quantile(self, levels: np.ndarray) -> np.ndarray:
        """Weighted average of group quantile functions (the W2 barycenter
        of 1-D distributions)."""
        result = np.zeros_like(levels, dtype=float)
        for group, sample in self._group_samples.items():
            result += self._weights[group] * _interp_quantile(sample, levels)
        return result

    def transform(self, values, groups) -> np.ndarray:
        """Repair values using each record's group membership."""
        if self._group_samples is None:
            raise NotFittedError("QuantileRepair must be fitted first")
        values = check_array_1d(values, "values").astype(float)
        groups = check_array_1d(groups, "groups")
        check_same_length(("values", values), ("groups", groups))
        repaired = values.copy()
        for group in np.unique(groups):
            if group not in self._group_samples:
                raise MitigationError(f"group {group!r} was not seen at fit")
            mask = groups == group
            levels = _empirical_cdf(self._group_samples[group], values[mask])
            levels = np.clip(levels, 0.0, 1.0)
            target = self._barycenter_quantile(levels)
            repaired[mask] = (1 - self.amount) * values[mask] + (
                self.amount
            ) * target
        return repaired

    def fit_transform(self, values, groups) -> np.ndarray:
        return self.fit(values, groups).transform(values, groups)


class GroupBlindRepair:
    """One shared transport map built from population marginals only.

    Parameters
    ----------
    group_distributions:
        Mapping group → 1-D array of *reference* scores for that group,
        representing public population-level knowledge (census, archival
        research data) — NOT the records being repaired.
    marginals:
        Mapping group → population proportion (defaults to equal weights).
    amount:
        Interpolation toward the mapped value, as in
        :class:`QuantileRepair`.

    The map is ``T(x) = Q_bary(F_mix(x))`` where ``F_mix`` is the CDF of
    the marginal-weighted mixture of the reference distributions and
    ``Q_bary`` their quantile barycenter.  ``transform(values)`` needs no
    group labels, which is the whole point.
    """

    def __init__(
        self,
        group_distributions: dict,
        marginals: dict | None = None,
        amount: float = 1.0,
    ):
        if not group_distributions or len(group_distributions) < 2:
            raise MitigationError(
                "group_distributions must describe at least two groups"
            )
        self._references = {
            g: np.sort(np.asarray(v, dtype=float))
            for g, v in group_distributions.items()
        }
        for g, v in self._references.items():
            if v.ndim != 1 or len(v) == 0:
                raise MitigationError(
                    f"reference distribution for {g!r} must be a non-empty "
                    "1-D array"
                )
        if marginals is None:
            marginals = {g: 1.0 / len(self._references) for g in self._references}
        if set(marginals) != set(self._references):
            raise MitigationError(
                "marginals must cover exactly the groups of "
                "group_distributions"
            )
        total = sum(float(w) for w in marginals.values())
        if total <= 0:
            raise MitigationError("marginals must have positive total mass")
        self._marginals = {g: float(w) / total for g, w in marginals.items()}
        self.amount = check_in_range(amount, "amount", 0.0, 1.0)

        # Pre-build the mixture sample (for F_mix): resample every group's
        # reference to a count proportional to its marginal weight so the
        # pooled sample represents the population mixture.
        parts = []
        max_len = max(len(v) for v in self._references.values())
        for group, sample in self._references.items():
            weight = self._marginals[group]
            count = max(1, int(round(weight * max_len * len(self._references))))
            parts.append(
                _interp_quantile(sample, (np.arange(count) + 0.5) / count)
            )
        self._mixture = np.sort(np.concatenate(parts))

    def _barycenter_quantile(self, levels: np.ndarray) -> np.ndarray:
        result = np.zeros_like(levels, dtype=float)
        for group, sample in self._references.items():
            result += self._marginals[group] * _interp_quantile(sample, levels)
        return result

    def transform(self, values) -> np.ndarray:
        """Repair unlabelled scores with the shared transport map."""
        values = check_array_1d(values, "values").astype(float)
        levels = np.clip(_empirical_cdf(self._mixture, values), 0.0, 1.0)
        mapped = self._barycenter_quantile(levels)
        return (1 - self.amount) * values + self.amount * mapped

    def gap_reduction(
        self, values, groups
    ) -> dict:
        """Diagnostic: W1 gap between groups before and after repair.

        Group labels are used *only* for this evaluation, never by the
        repair itself — mirroring how the paper frames the guarantee
        ("it may be impossible to quantify the amount of bias without
        access to the protected attribute", yet repair can proceed).
        """
        values = check_array_1d(values, "values").astype(float)
        groups = check_array_1d(groups, "groups")
        check_same_length(("values", values), ("groups", groups))
        unique = np.unique(groups)
        if len(unique) != 2:
            raise MitigationError(
                "gap_reduction diagnostic requires exactly two groups"
            )
        repaired = self.transform(values)
        a, b = unique
        before = wasserstein1_empirical(values[groups == a], values[groups == b])
        after = wasserstein1_empirical(
            repaired[groups == a], repaired[groups == b]
        )
        return {
            "w1_before": float(before),
            "w1_after": float(after),
            "reduction": float(before - after),
            "relative_reduction": float(
                (before - after) / before if before > 0 else 0.0
            ),
        }
