"""Disparate-impact removal on features (Feldman et al. 2015).

Repairs each *numeric feature* so its within-group distributions match
their common barycenter, making group membership unpredictable from the
repaired features (reducing proxy capacity, Section IV.B) while
preserving within-group rank order (so the merit signal survives).
Built on :class:`repro.mitigation.ot_repair.QuantileRepair`.
"""

from __future__ import annotations

from repro._validation import check_in_range
from repro.data.dataset import TabularDataset
from repro.data.schema import ColumnKind, ColumnRole
from repro.exceptions import MitigationError
from repro.mitigation.ot_repair import QuantileRepair

__all__ = ["DisparateImpactRemover"]


class DisparateImpactRemover:
    """Repair every numeric feature toward the group barycenter.

    Parameters
    ----------
    amount:
        Repair level in [0, 1]: 0 = identity, 1 = total repair (the
        Feldman dial, the ablation axis for the fairness/utility curve).
    """

    def __init__(self, amount: float = 1.0):
        self.amount = check_in_range(amount, "amount", 0.0, 1.0)
        self._repairs: dict | None = None
        self._attribute: str | None = None

    def fit(
        self, dataset: TabularDataset, attribute: str
    ) -> "DisparateImpactRemover":
        """Learn per-feature transport maps from the dataset's groups."""
        column = dataset.schema[attribute]
        if column.role != ColumnRole.PROTECTED:
            raise MitigationError(f"column {attribute!r} is not protected")
        groups = dataset.column(attribute)
        repairs = {}
        for feature in dataset.schema.by_role(ColumnRole.FEATURE):
            if feature.kind != ColumnKind.NUMERIC:
                continue  # categorical features are left untouched
            repair = QuantileRepair(amount=self.amount)
            repair.fit(dataset.column(feature.name), groups)
            repairs[feature.name] = repair
        if not repairs:
            raise MitigationError("dataset has no numeric features to repair")
        self._repairs = repairs
        self._attribute = attribute
        return self

    def transform(self, dataset: TabularDataset) -> TabularDataset:
        """Return a dataset with every numeric feature repaired."""
        if self._repairs is None:
            raise MitigationError("DisparateImpactRemover must be fitted")
        if self._attribute not in dataset.schema:
            raise MitigationError(
                f"dataset lacks the protected column {self._attribute!r}"
            )
        groups = dataset.column(self._attribute)
        repaired = dataset
        for name, repair in self._repairs.items():
            values = repair.transform(dataset.column(name), groups)
            repaired = repaired.with_column(dataset.schema[name], values)
        return repaired

    def fit_transform(
        self, dataset: TabularDataset, attribute: str
    ) -> TabularDataset:
        return self.fit(dataset, attribute).transform(dataset)

    @property
    def repaired_features(self) -> list[str]:
        """Names of the features the remover repairs."""
        if self._repairs is None:
            raise MitigationError("DisparateImpactRemover must be fitted")
        return sorted(self._repairs)
