"""Group-wise calibration repair.

The paper's discussion lists calibration among the legally salient
definitions: a risk score must mean the same observed frequency in every
group.  :class:`GroupCalibrator` repairs miscalibration *per group* by
fitting a separate Platt map for each — afterwards a score of p
corresponds to (approximately) probability p of the outcome in every
group, closing the calibration gap measured by
:func:`repro.core.metrics.calibration_within_groups`.

Note the legal tension this embodies: using group membership at
prediction time is itself a form of disparate treatment in some
jurisdictions/sectors; the class exists to make the option explicit and
measurable, not to recommend it universally.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_array_1d,
    check_binary_array,
    check_same_length,
)
from repro.exceptions import MitigationError, NotFittedError
from repro.models.calibration import PlattCalibrator

__all__ = ["GroupCalibrator"]


class GroupCalibrator:
    """Per-group Platt recalibration of probability scores."""

    def __init__(self):
        self._calibrators: dict | None = None

    def fit(self, probabilities, groups, y_true) -> "GroupCalibrator":
        """Fit one Platt map per group on calibration data."""
        probabilities = check_array_1d(probabilities, "probabilities").astype(
            float
        )
        groups = check_array_1d(groups, "groups")
        y_true = check_binary_array(y_true, "y_true")
        check_same_length(
            ("probabilities", probabilities), ("groups", groups),
            ("y_true", y_true),
        )
        calibrators: dict = {}
        for group in np.unique(groups):
            mask = groups == group
            if len(np.unique(y_true[mask])) < 2:
                raise MitigationError(
                    f"group {group!r} lacks both outcome classes; cannot "
                    "calibrate it separately"
                )
            calibrators[group] = PlattCalibrator().fit(
                probabilities[mask], y_true[mask]
            )
        if len(calibrators) < 2:
            raise MitigationError("need at least two groups to repair")
        self._calibrators = calibrators
        return self

    def transform(self, probabilities, groups) -> np.ndarray:
        """Apply each group's calibration map."""
        if self._calibrators is None:
            raise NotFittedError("GroupCalibrator must be fitted first")
        probabilities = check_array_1d(probabilities, "probabilities").astype(
            float
        )
        groups = check_array_1d(groups, "groups")
        check_same_length(
            ("probabilities", probabilities), ("groups", groups)
        )
        out = np.empty(len(probabilities))
        for group in np.unique(groups):
            if group not in self._calibrators:
                raise MitigationError(
                    f"group {group!r} was not seen at fit time"
                )
            mask = groups == group
            out[mask] = self._calibrators[group].transform(
                probabilities[mask]
            )
        return np.clip(out, 0.0, 1.0)

    def fit_transform(self, probabilities, groups, y_true) -> np.ndarray:
        return self.fit(probabilities, groups, y_true).transform(
            probabilities, groups
        )
