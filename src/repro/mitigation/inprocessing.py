"""In-processing mitigation: fairness-penalised training.

:class:`FairLogisticRegression` augments the logistic log-loss with a
squared demographic-parity penalty on the model's *scores*:

.. math::

    L(w) = \\text{log loss} + \\frac{\\lambda}{2}
           \\bigl(\\bar p_{A=1} - \\bar p_{A=0}\\bigr)^2

where :math:`\\bar p_g` is the mean predicted probability in group g.
The penalty's gradient is exact (it flows through the sigmoid), so the
fairness/accuracy trade-off is controlled by a single dial ``fairness_weight``
— the ablation axis of benchmark M1.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_array_1d,
    check_nonnegative,
    check_same_length,
)
from repro.exceptions import ValidationError
from repro.models.logistic import LogisticRegression, sigmoid

__all__ = ["FairLogisticRegression"]


class FairLogisticRegression(LogisticRegression):
    """Logistic regression with a demographic-parity score penalty.

    Use :meth:`fit` with the additional ``groups`` array (binary group
    membership).  ``fairness_weight`` = 0 recovers the plain model.
    """

    def __init__(
        self,
        fairness_weight: float = 5.0,
        l2: float = 1e-3,
        learning_rate: float = 0.5,
        max_iter: int = 2000,
        tol: float = 1e-6,
    ):
        super().__init__(
            l2=l2, learning_rate=learning_rate, max_iter=max_iter, tol=tol
        )
        self.fairness_weight = check_nonnegative(
            fairness_weight, "fairness_weight"
        )
        self._groups: np.ndarray | None = None
        self._X_for_penalty: np.ndarray | None = None

    def fit(self, X, y, groups=None, sample_weight=None) -> "FairLogisticRegression":
        """Fit with a fairness penalty between the two ``groups`` values."""
        if groups is None:
            raise ValidationError(
                "FairLogisticRegression.fit requires a groups array"
            )
        groups = check_array_1d(groups, "groups")
        X_arr = np.asarray(X, dtype=float)
        if X_arr.ndim == 1:
            X_arr = X_arr.reshape(-1, 1)
        check_same_length(("X", X_arr), ("groups", groups))
        values = np.unique(groups)
        if len(values) != 2:
            raise ValidationError(
                f"groups must be binary, got values {values.tolist()}"
            )
        mask1 = groups == values[1]
        mask0 = ~mask1
        n1, n0 = int(mask1.sum()), int(mask0.sum())
        if n1 == 0 or n0 == 0:
            raise ValidationError("both groups must be non-empty")

        self._X_for_penalty = X_arr
        self._mask1, self._mask0 = mask1, mask0

        def penalty_gradient(weights, intercept):
            probs = sigmoid(X_arr @ weights + intercept)
            d = probs * (1.0 - probs)
            mean1 = probs[mask1].mean()
            mean0 = probs[mask0].mean()
            gap = mean1 - mean0
            # d(mean_g)/dw = mean over g of p(1-p) x
            dmean1_w = (d[mask1][:, None] * X_arr[mask1]).mean(axis=0)
            dmean0_w = (d[mask0][:, None] * X_arr[mask0]).mean(axis=0)
            dmean1_b = d[mask1].mean()
            dmean0_b = d[mask0].mean()
            grad_w = self.fairness_weight * gap * (dmean1_w - dmean0_w)
            grad_b = self.fairness_weight * gap * (dmean1_b - dmean0_b)
            return grad_w, float(grad_b)

        self._extra_gradient = penalty_gradient
        try:
            super().fit(X_arr, y, sample_weight=sample_weight)
        finally:
            self._extra_gradient = None
            self._X_for_penalty = None
        return self
