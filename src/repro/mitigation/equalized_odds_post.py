"""Exact equalized-odds post-processing (Hardt, Price & Srebro 2016).

Unlike the threshold search of :class:`repro.mitigation.postprocessing.
GroupThresholds`, this implements the original randomised construction:
for each group, the derived predictor flips the base predictor's output
with probabilities chosen so that every group's (FPR, TPR) point lands
on the *same* target — the intersection of the groups' feasible
polytopes.  Exactness comes at the price of randomisation: individual
decisions depend on coin flips, an aspect with its own legal salience
(procedural fairness) that the audit report should disclose.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_array_1d,
    check_binary_array,
    check_random_state,
    check_same_length,
)
from repro.exceptions import MitigationError, NotFittedError
from repro.models.metrics import confusion_matrix

__all__ = ["EqualizedOddsPostProcessor"]


def _rates(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[float, float]:
    cm = confusion_matrix(y_true, y_pred)
    return cm.false_positive_rate, cm.recall


class EqualizedOddsPostProcessor:
    """Randomised derived predictor achieving equalized odds exactly.

    For each group g the derived predictor keeps the base prediction
    with probability ``p_keep[ŷ]`` and replaces it by the constant
    ``ŷ = 1`` with the remaining probability, where the two mixing
    weights (one per base output) are solved so the group's ROC point
    moves to the common target.  The target is the vertex-wise midpoint
    of the groups' achievable segments — always feasible because each
    group's achievable set is the segment from (0,0) to (1,1) through
    its own (FPR, TPR) point.
    """

    def __init__(self, random_state: int | np.random.Generator | None = None):
        self._rng = check_random_state(random_state)
        self.mixing_: dict | None = None
        self.target_: tuple[float, float] | None = None

    # -- fitting ----------------------------------------------------------

    def fit(self, y_true, y_pred, groups) -> "EqualizedOddsPostProcessor":
        """Solve the mixing weights on calibration data."""
        y_true = check_binary_array(y_true, "y_true")
        y_pred = check_binary_array(y_pred, "y_pred")
        groups = check_array_1d(groups, "groups")
        check_same_length(
            ("y_true", y_true), ("y_pred", y_pred), ("groups", groups)
        )
        unique = np.unique(groups).tolist()
        if len(unique) < 2:
            raise MitigationError("need at least two groups")

        points = {}
        for group in unique:
            mask = groups == group
            if len(np.unique(y_true[mask])) < 2:
                raise MitigationError(
                    f"group {group!r} lacks both outcome classes in the "
                    "calibration data"
                )
            points[group] = _rates(y_true[mask], y_pred[mask])

        # Feasible common target: component-wise minimum of the group ROC
        # points. Each group can reach any point on the segment from
        # (0, 0) to its own (FPR, TPR) by mixing its predictor with the
        # constant-0 predictor; the scaled-down target (min FPR, min TPR
        # scaled consistently) is reachable by all groups.
        # We target t = alpha_g * (FPR_g, TPR_g) with alpha_g chosen so
        # all groups land on the same point; that requires the target to
        # be proportional to each group's point, which generally fails.
        # Instead we mix each group's predictor with BOTH constants
        # (always-0 and always-1), whose achievable set is the full
        # triangle {(0,0), (1,1), (FPR_g, TPR_g)}; the intersection of
        # these triangles is non-empty (it contains the diagonal), and we
        # pick the best common point: the one maximising TPR − FPR among
        # pairwise segment intersections, falling back to the diagonal
        # midpoint of the worst group.
        self.target_ = self._common_target(points)
        self.mixing_ = {
            group: self._solve_mixing(points[group], self.target_)
            for group in unique
        }
        return self

    @staticmethod
    def _common_target(points: dict) -> tuple[float, float]:
        """A (FPR, TPR) point inside every group's achievable triangle.

        Candidates, in decreasing order of utility (tpr − fpr): every
        group's own ROC point, pairwise midpoints, the component-wise
        minimum, and finally the diagonal fallback (always feasible, but
        a random predictor — chosen only when nothing better intersects
        all triangles).
        """

        def inside(q, p):
            # barycentric test for triangle (0,0), (1,1), p
            (x, y), (px, py) = q, p
            denom = py - px
            if abs(denom) < 1e-12:
                return abs(y - x) < 1e-9
            w_p = (y - x) / denom
            w_diag = x - w_p * px
            w_origin = 1.0 - w_p - w_diag
            return (
                -1e-9 <= w_p <= 1 + 1e-9
                and -1e-9 <= w_diag <= 1 + 1e-9
                and -1e-9 <= w_origin <= 1 + 1e-9
            )

        def segment_intersection(a1, a2, b1, b2):
            """Intersection point of segments a1-a2 and b1-b2, or None."""
            d1 = (a2[0] - a1[0], a2[1] - a1[1])
            d2 = (b2[0] - b1[0], b2[1] - b1[1])
            denom = d1[0] * d2[1] - d1[1] * d2[0]
            if abs(denom) < 1e-12:
                return None
            t = (
                (b1[0] - a1[0]) * d2[1] - (b1[1] - a1[1]) * d2[0]
            ) / denom
            s = (
                (b1[0] - a1[0]) * d1[1] - (b1[1] - a1[1]) * d1[0]
            ) / denom
            if -1e-9 <= t <= 1 + 1e-9 and -1e-9 <= s <= 1 + 1e-9:
                return (a1[0] + t * d1[0], a1[1] + t * d1[1])
            return None

        group_points = list(points.values())
        candidates = list(group_points)
        origin, one = (0.0, 0.0), (1.0, 1.0)
        for i, a in enumerate(group_points):
            for b in group_points[i + 1:]:
                candidates.append(((a[0] + b[0]) / 2, (a[1] + b[1]) / 2))
                # boundary crossings: one group's lower chord against the
                # other's upper chord — where the best feasible utility
                # typically lives when the triangles only partially overlap
                for p, q in ((a, b), (b, a)):
                    hit = segment_intersection(origin, p, q, one)
                    if hit is not None:
                        candidates.append(hit)
        candidates.append((
            min(p[0] for p in group_points),
            min(p[1] for p in group_points),
        ))

        feasible = [
            q for q in candidates
            if all(inside(q, p) for p in group_points)
        ]
        if feasible:
            return max(feasible, key=lambda q: q[1] - q[0])
        level = (
            min(p[0] for p in group_points)
            + min(p[1] for p in group_points)
        ) / 2.0
        return (level, level)

    @staticmethod
    def _solve_mixing(point: tuple[float, float], target: tuple[float, float]):
        """Convex weights over {base, always-0, always-1} hitting target."""
        px, py = point
        tx, ty = target
        # Solve w_base * (px, py) + w_one * (1, 1) = (tx, ty),
        # w_zero = 1 − w_base − w_one, all weights in [0, 1].
        denom = px - py
        if abs(denom) < 1e-12:
            # degenerate base predictor on the diagonal: use constants only
            w_base = 0.0
            w_one = tx if abs(tx - ty) < 1e-9 else (tx + ty) / 2.0
        else:
            w_base = (tx - ty) / denom
            w_one = tx - w_base * px
        w_base = float(np.clip(w_base, 0.0, 1.0))
        w_one = float(np.clip(w_one, 0.0, 1.0 - w_base))
        w_zero = 1.0 - w_base - w_one
        return {"base": w_base, "one": w_one, "zero": w_zero}

    # -- application ---------------------------------------------------------

    def predict(self, y_pred, groups) -> np.ndarray:
        """Randomised derived predictions for new data."""
        if self.mixing_ is None:
            raise NotFittedError("EqualizedOddsPostProcessor must be fitted")
        y_pred = check_binary_array(y_pred, "y_pred")
        groups = check_array_1d(groups, "groups")
        check_same_length(("y_pred", y_pred), ("groups", groups))

        out = np.empty(len(y_pred), dtype=int)
        for group in np.unique(groups):
            if group not in self.mixing_:
                raise MitigationError(
                    f"group {group!r} was not seen at fit time"
                )
            weights = self.mixing_[group]
            mask = groups == group
            n = int(mask.sum())
            choice = self._rng.choice(
                3, size=n,
                p=[weights["base"], weights["one"], weights["zero"]],
            )
            base = y_pred[mask]
            out[mask] = np.where(
                choice == 0, base, np.where(choice == 1, 1, 0)
            )
        return out
