"""Bias mitigation: pre-, in-, and post-processing, plus OT repair."""

from repro.mitigation.calibration_repair import GroupCalibrator
from repro.mitigation.equalized_odds_post import EqualizedOddsPostProcessor
from repro.mitigation.feature_repair import DisparateImpactRemover
from repro.mitigation.inprocessing import FairLogisticRegression
from repro.mitigation.ot_repair import GroupBlindRepair, QuantileRepair
from repro.mitigation.postprocessing import GroupThresholds, quota_selector
from repro.mitigation.preprocessing import (
    massaging,
    reweighing,
    uniform_resampling,
)
from repro.mitigation.reject_option import RejectOptionClassifier

__all__ = [
    "reweighing",
    "massaging",
    "uniform_resampling",
    "DisparateImpactRemover",
    "FairLogisticRegression",
    "GroupThresholds",
    "quota_selector",
    "RejectOptionClassifier",
    "EqualizedOddsPostProcessor",
    "GroupCalibrator",
    "QuantileRepair",
    "GroupBlindRepair",
]
