"""Reject-option classification (Kamiran, Karim & Zhang 2012).

A post-processing mitigation the fair-ML literature pairs with the
paper's Section IV.A discussion: decisions whose predicted probability
falls inside a *critical band* around the decision threshold — where the
model is least certain — are flipped in favour of the disadvantaged
group (and against the advantaged one).  Outside the band the model's
decision stands, so the intervention is surgical: it only overrides the
model where the evidence is weakest, which is also where historical bias
is most likely to have tipped the scale.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_array_1d,
    check_in_range,
    check_same_length,
)
from repro.exceptions import MitigationError, ValidationError

__all__ = ["RejectOptionClassifier"]


class RejectOptionClassifier:
    """Flip low-confidence decisions in the critical band.

    Parameters
    ----------
    disadvantaged_group:
        The group whose band members are promoted to the favourable
        outcome; everyone else in the band is demoted.
    band:
        Half-width of the critical region around ``threshold``: decisions
        with ``|p − threshold| <= band`` are overridden.
    threshold:
        The decision threshold the band is centred on.
    """

    def __init__(
        self,
        disadvantaged_group,
        band: float = 0.1,
        threshold: float = 0.5,
    ):
        self.disadvantaged_group = disadvantaged_group
        self.band = check_in_range(band, "band", 0.0, 0.5)
        self.threshold = check_in_range(threshold, "threshold", 0.0, 1.0)

    def predict(self, probabilities, groups) -> np.ndarray:
        """Apply the reject-option rule to scores and group labels."""
        probabilities = check_array_1d(probabilities, "probabilities").astype(
            float
        )
        groups = check_array_1d(groups, "groups")
        check_same_length(("probabilities", probabilities), ("groups", groups))
        if np.any((probabilities < 0) | (probabilities > 1)):
            raise ValidationError("probabilities must lie in [0, 1]")
        present = set(np.unique(groups).tolist())
        if self.disadvantaged_group not in present:
            raise MitigationError(
                f"disadvantaged group {self.disadvantaged_group!r} absent "
                f"from groups; present: {sorted(present, key=repr)}"
            )

        decisions = (probabilities >= self.threshold).astype(int)
        in_band = np.abs(probabilities - self.threshold) <= self.band
        disadvantaged = groups == self.disadvantaged_group
        decisions[in_band & disadvantaged] = 1
        decisions[in_band & ~disadvantaged] = 0
        return decisions

    def band_size(self, probabilities) -> int:
        """How many decisions the current band would override."""
        probabilities = check_array_1d(probabilities, "probabilities").astype(
            float
        )
        return int(np.sum(np.abs(probabilities - self.threshold) <= self.band))

    def widen_until_fair(
        self,
        probabilities,
        groups,
        tolerance: float = 0.05,
        step: float = 0.02,
        max_band: float = 0.5,
    ) -> float:
        """Grow the band until demographic parity holds (or max_band).

        Returns the band that first satisfies the tolerance; raises when
        even the maximal band cannot (the disadvantaged group may simply
        be too small for flips to close the gap).
        """
        from repro.core.metrics import demographic_parity

        band = 0.0
        while band <= max_band + 1e-12:
            self.band = min(band, 0.5)
            decisions = self.predict(probabilities, groups)
            if demographic_parity(decisions, groups, tolerance=tolerance).satisfied:
                return self.band
            band += step
        raise MitigationError(
            f"no band up to {max_band} achieves a demographic-parity gap "
            f"within {tolerance}"
        )
