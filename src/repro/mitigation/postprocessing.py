"""Post-processing mitigations: adjust decisions, not the model.

* :class:`GroupThresholds` — per-group decision thresholds achieving
  demographic parity or equal opportunity on calibration data (the Hardt
  et al. post-processing idea, threshold-search form);
* :func:`quota_selector` — affirmative-action selection: fill a fixed
  number of positions with per-group quotas (paper IV.A: *"affirmative
  action or a company's policy would require a minimum quota in female
  acceptances"*).
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_array_1d,
    check_binary_array,
    check_membership,
    check_positive_int,
    check_same_length,
)
from repro.exceptions import MitigationError, NotFittedError, ValidationError

__all__ = ["GroupThresholds", "quota_selector"]


class GroupThresholds:
    """Per-group probability thresholds fitted to a fairness target.

    Parameters
    ----------
    target:
        ``"demographic_parity"`` — each group's selection rate matches the
        overall base selection rate of the calibration scores; or
        ``"equal_opportunity"`` — each group's TPR matches the overall TPR
        at threshold 0.5 (requires ``y_true`` at fit time).

    The search scans each group's score quantiles for the threshold whose
    achieved rate is closest to the target — exact up to the granularity
    of the group's score distribution (ties broken toward the lower
    threshold, favouring inclusion).
    """

    TARGETS = ("demographic_parity", "equal_opportunity")

    def __init__(self, target: str = "demographic_parity"):
        check_membership(target, "target", self.TARGETS)
        self.target = target
        self.thresholds_: dict | None = None
        self.target_rate_: float | None = None

    # -- fitting ------------------------------------------------------------

    def fit(self, probabilities, groups, y_true=None) -> "GroupThresholds":
        """Learn per-group thresholds on calibration data."""
        probabilities = check_array_1d(probabilities, "probabilities").astype(
            float
        )
        groups = check_array_1d(groups, "groups")
        check_same_length(("probabilities", probabilities), ("groups", groups))
        if np.any((probabilities < 0) | (probabilities > 1)):
            raise ValidationError("probabilities must lie in [0, 1]")

        if self.target == "equal_opportunity":
            if y_true is None:
                raise MitigationError(
                    "equal_opportunity target requires y_true at fit time"
                )
            y_true = check_binary_array(y_true, "y_true")
            check_same_length(("probabilities", probabilities), ("y_true", y_true))
            positives = y_true == 1
            if not positives.any():
                raise MitigationError("no actual positives in calibration data")
            target_rate = float(
                np.mean(probabilities[positives] >= 0.5)
            )
        else:
            target_rate = float(np.mean(probabilities >= 0.5))

        thresholds: dict = {}
        for group in np.unique(groups):
            mask = groups == group
            if self.target == "equal_opportunity":
                mask = mask & (y_true == 1)
                if not mask.any():
                    raise MitigationError(
                        f"group {group!r} has no actual positives to "
                        "calibrate on"
                    )
            scores = np.sort(probabilities[mask])
            candidates = np.unique(np.concatenate([[0.0], scores, [1.0 + 1e-9]]))
            best_threshold, best_error = 0.5, float("inf")
            for threshold in candidates:
                rate = float(np.mean(probabilities[mask] >= threshold))
                error = abs(rate - target_rate)
                if error < best_error - 1e-12:
                    best_error = error
                    best_threshold = float(threshold)
            thresholds[group] = best_threshold
        self.thresholds_ = thresholds
        self.target_rate_ = target_rate
        return self

    # -- application -----------------------------------------------------------

    def predict(self, probabilities, groups) -> np.ndarray:
        """Apply the fitted per-group thresholds."""
        if self.thresholds_ is None:
            raise NotFittedError("GroupThresholds must be fitted first")
        probabilities = check_array_1d(probabilities, "probabilities").astype(
            float
        )
        groups = check_array_1d(groups, "groups")
        check_same_length(("probabilities", probabilities), ("groups", groups))
        decisions = np.zeros(len(probabilities), dtype=int)
        for group in np.unique(groups):
            if group not in self.thresholds_:
                raise MitigationError(
                    f"group {group!r} was not seen at fit time; known: "
                    f"{sorted(self.thresholds_, key=repr)}"
                )
            mask = groups == group
            decisions[mask] = (
                probabilities[mask] >= self.thresholds_[group]
            ).astype(int)
        return decisions


def quota_selector(
    scores,
    groups,
    n_select: int,
    quotas: dict | None = None,
) -> np.ndarray:
    """Select ``n_select`` candidates under per-group quotas.

    ``quotas`` maps group → minimum *proportion* of selections reserved
    for it; defaults to each group's share of the candidate pool
    (proportional representation, the paper's IV.A example).  Within each
    group, selection is by descending score; any seats left after quotas
    are filled go to the best remaining candidates regardless of group.

    Returns a binary selection array aligned with the inputs.
    """
    scores = check_array_1d(scores, "scores").astype(float)
    groups = check_array_1d(groups, "groups")
    check_same_length(("scores", scores), ("groups", groups))
    check_positive_int(n_select, "n_select")
    if n_select > len(scores):
        raise MitigationError(
            f"cannot select {n_select} from {len(scores)} candidates"
        )

    unique_groups = np.unique(groups).tolist()
    if quotas is None:
        quotas = {
            g: float(np.mean(groups == g)) for g in unique_groups
        }
    for group, proportion in quotas.items():
        if group not in unique_groups:
            raise MitigationError(f"quota group {group!r} not in candidates")
        if proportion < 0:
            raise MitigationError("quota proportions must be non-negative")
    if sum(quotas.values()) > 1.0 + 1e-9:
        raise MitigationError(
            f"quota proportions sum to {sum(quotas.values()):.3f} > 1"
        )

    selected = np.zeros(len(scores), dtype=int)
    remaining = n_select
    # Reserved seats per group, floor-rounded; leftovers filled on merit.
    for group in unique_groups:
        reserve = int(np.floor(quotas.get(group, 0.0) * n_select))
        members = np.flatnonzero(groups == group)
        take = min(reserve, len(members), remaining)
        if take > 0:
            best = members[np.argsort(-scores[members])][:take]
            selected[best] = 1
            remaining -= take
    if remaining > 0:
        pool = np.flatnonzero(selected == 0)
        best = pool[np.argsort(-scores[pool])][:remaining]
        selected[best] = 1
    return selected
