"""Backend selection for the compute kernel.

Two implementations of every hot path coexist:

* ``"kernel"`` — cached categorical code tables plus a joint-contingency
  engine (one ``np.bincount`` over combined codes yields the confusion
  counts of every group at once);
* ``"reference"`` — the original per-group boolean-mask loops, kept
  verbatim as the ground truth for equivalence testing and for honest
  before/after benchmarking.

The default comes from ``REPRO_KERNEL_BACKEND`` (falling back to
``"kernel"``); tests switch temporarily with :func:`use_backend`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.exceptions import ValidationError

__all__ = ["BACKENDS", "get_backend", "set_backend", "use_backend"]

BACKENDS = ("kernel", "reference")

_backend = os.environ.get("REPRO_KERNEL_BACKEND", "kernel")
if _backend not in BACKENDS:
    _backend = "kernel"


def get_backend() -> str:
    """The active kernel backend, ``"kernel"`` or ``"reference"``."""
    return _backend


def set_backend(name: str) -> str:
    """Select the backend for subsequent metric/scan evaluations."""
    global _backend
    if name not in BACKENDS:
        raise ValidationError(
            f"backend must be one of {list(BACKENDS)}, got {name!r}"
        )
    _backend = name
    return _backend


@contextmanager
def use_backend(name: str):
    """Temporarily select a backend (restores the previous one on exit)."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)
