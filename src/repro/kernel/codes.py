"""Categorical code tables: encode once, mask lazily, cache by identity.

Every group-wise computation in the library reduces to "which rows
belong to category c of column A".  The reference implementation
re-derives that from scratch (``np.unique`` + one equality scan per
group per metric); a :class:`CodeTable` instead encodes the column once
into int64 codes whose order matches the library-wide deterministic
group order (sorted by ``repr``), and materialises per-category boolean
masks lazily, caching them on the table.

Tables themselves are cached by *array identity* (:func:`codes_for`):
dataset columns are stable, read-only arrays, so the ``id`` of the
array — held via a weakref that evicts the entry when the array dies —
is a sound cache key.  Cache traffic is counted in the PR 2 metrics
registry as ``kernel.cache_hit`` / ``kernel.cache_miss``.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from repro.exceptions import ValidationError
from repro.observability.metrics import get_metrics

__all__ = ["CodeTable", "encode", "codes_for", "cache_get", "cache_put", "clear_cache"]


class CodeTable:
    """One column encoded to int codes, with lazy per-category masks.

    ``categories`` lists the category values as Python scalars in the
    deterministic library order (sorted by ``repr``, matching
    ``_group_order`` in :mod:`repro.core.metrics`); ``codes[i]`` is the
    position of row ``i``'s value in that list, or ``-1`` for values
    outside an explicitly supplied category set.
    """

    __slots__ = ("categories", "categories_array", "codes", "index", "_masks")

    def __init__(self, categories: list, categories_array: np.ndarray, codes: np.ndarray):
        self.categories = categories
        self.categories_array = categories_array
        self.codes = codes
        self.index = {category: code for code, category in enumerate(categories)}
        self._masks: dict = {}

    @property
    def n_categories(self) -> int:
        return len(self.categories)

    @property
    def n_rows(self) -> int:
        return len(self.codes)

    def counts(self) -> np.ndarray:
        """Row count per category, aligned with ``categories``."""
        valid = self.codes[self.codes >= 0] if (self.codes < 0).any() else self.codes
        return np.bincount(valid, minlength=self.n_categories)

    def mask(self, category) -> np.ndarray:
        """Read-only boolean mask of rows equal to ``category`` (cached)."""
        cached = self._masks.get(category)
        if cached is not None:
            return cached
        code = self.index.get(category)
        if code is None:
            mask = np.zeros(self.n_rows, dtype=bool)
        else:
            mask = self.codes == code
        mask.setflags(write=False)
        self._masks[category] = mask
        return mask

    def __repr__(self) -> str:
        return f"CodeTable(n_rows={self.n_rows}, categories={self.categories!r})"


def encode(values, categories: list | None = None) -> CodeTable:
    """Encode a 1-D array into a :class:`CodeTable`.

    With ``categories=None`` the table's categories are the distinct
    values present, repr-sorted.  An explicit ``categories`` list fixes
    the code assignment (e.g. a schema's declared order); values outside
    it encode to ``-1``.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError(
            f"encode requires a 1-D array, got shape {values.shape}"
        )
    uniques, inverse = np.unique(values, return_inverse=True)
    unique_list = uniques.tolist()
    if categories is None:
        order = sorted(range(len(unique_list)), key=lambda i: repr(unique_list[i]))
        cats = [unique_list[i] for i in order]
        cats_array = uniques[order]
        remap = np.empty(len(unique_list), dtype=np.int64)
        for position, unique_index in enumerate(order):
            remap[unique_index] = position
    else:
        cats = list(categories)
        positions = {category: code for code, category in enumerate(cats)}
        remap = np.array(
            [positions.get(u, -1) for u in unique_list], dtype=np.int64
        )
        try:
            cats_array = np.asarray(cats, dtype=values.dtype)
        except (TypeError, ValueError):
            cats_array = np.asarray(cats, dtype=object)
    codes = remap[inverse] if len(unique_list) else np.zeros(0, dtype=np.int64)
    return CodeTable(cats, cats_array, codes)


class _IdentityCache:
    """Weakref-evicted cache keyed by the ids of input arrays.

    An entry dies with any of its key arrays, so a recycled ``id`` can
    never alias a live entry; :meth:`get` additionally re-verifies the
    weakrefs still point at the arrays passed in.
    """

    def __init__(self):
        self._entries: dict = {}
        self._lock = threading.Lock()

    def get(self, arrays: tuple, extra):
        key = tuple(id(a) for a in arrays) + (extra,)
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        refs, value = entry
        if any(ref() is not array for ref, array in zip(refs, arrays)):
            with self._lock:
                self._entries.pop(key, None)
            return None
        return value

    def put(self, arrays: tuple, extra, value):
        key = tuple(id(a) for a in arrays) + (extra,)

        def evict(_ref, key=key):
            with self._lock:
                self._entries.pop(key, None)

        try:
            refs = tuple(weakref.ref(array, evict) for array in arrays)
        except TypeError:
            return value
        with self._lock:
            self._entries[key] = (refs, value)
        return value

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_cache = _IdentityCache()


def cache_get(arrays: tuple, extra):
    """Fetch a kernel cache entry, counting ``kernel.cache_hit/miss``."""
    value = _cache.get(arrays, extra)
    if value is None:
        get_metrics().counter("kernel.cache_miss").inc()
    else:
        get_metrics().counter("kernel.cache_hit").inc()
    return value


def cache_put(arrays: tuple, extra, value):
    """Store a kernel cache entry (no-op for unweakrefable inputs)."""
    return _cache.put(arrays, extra, value)


def clear_cache() -> None:
    """Drop every cached table/count tensor and published shm segment.

    Shared-memory segments published for ``jobs=N`` scans (see
    :mod:`repro.kernel.shm`) are part of the code-table cache lifecycle:
    clearing the cache must also unlink them, or every cleared scan
    would leak a ``/dev/shm`` file until interpreter exit.
    """
    _cache.clear()
    from repro.kernel import shm

    shm.release_all()


def codes_for(values, categories: list | None = None) -> CodeTable:
    """The :class:`CodeTable` for an array, cached by array identity."""
    categories_key = None if categories is None else tuple(categories)
    if isinstance(values, np.ndarray):
        table = cache_get((values,), ("codes", categories_key))
        if table is not None:
            return table
        table = encode(values, categories)
        return cache_put((values,), ("codes", categories_key), table)
    return encode(values, categories)
