"""Parallel subgroup-scan scoring: pure count arithmetic, cheap to ship.

The subgroup scan is embarrassingly parallel once each subgroup is
reduced to two integers (positives inside, members inside): workers
need no arrays, just count tuples, so dispatch cost is a few bytes per
subgroup.  Chunk boundaries are aligned to absolute multiples of the
checkpoint interval, which makes the parallel scan's checkpoint cadence
— and therefore every checkpoint file — byte-identical to the serial
scan's.

Since ISSUE 5 scoring is *batched*: :func:`score_chunk` hands its whole
chunk of count pairs to :func:`repro.stats.batch.batch_score_counts`,
which runs one vectorized z-test and one Wilson batch for the entire
chunk instead of two scalar calls per subgroup — the payloads stay
bit-identical to the per-subgroup scalar loop (the property suite in
``tests/perf/test_batch_stats.py`` holds the equivalence).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.stats.batch import batch_score_counts

__all__ = [
    "score_counts",
    "score_chunk",
    "score_chunk_telemetry",
    "count_score_chunk",
    "count_cells_chunk",
    "read_spills",
    "chunk_ranges",
    "pruned_ranges",
]


def score_counts(
    positives_inside: int, n_inside: int, positives_total: int, n_total: int
) -> dict | None:
    """Disparity statistics for one subgroup from its count pair.

    A length-1 batch through :func:`batch_score_counts`: the rates are
    the same integer divisions, and the z-test/Wilson interval see the
    same integer inputs as the scalar scoring ever did.  Returns
    ``None`` when the subgroup covers the whole population (no
    complement to compare against).
    """
    return batch_score_counts(
        positives_inside, n_inside, positives_total, n_total
    )[0]


def score_chunk(
    entries: list[tuple[int, int]], positives_total: int, n_total: int
) -> list[dict | None]:
    """Score a chunk of ``(positives_inside, n_inside)`` pairs in order.

    One batch call for the whole chunk: the count pairs are folded into
    two int64 vectors and every subgroup's z-test, Wilson interval, and
    rate arithmetic runs as a single vectorized pass.
    """
    if not entries:
        return []
    positives = np.fromiter(
        (entry[0] for entry in entries), dtype=np.int64, count=len(entries)
    )
    sizes = np.fromiter(
        (entry[1] for entry in entries), dtype=np.int64, count=len(entries)
    )
    return batch_score_counts(positives, sizes, positives_total, n_total)


def score_chunk_telemetry(
    entries: list[tuple[int, int]],
    positives_total: int,
    n_total: int,
    spill: dict,
) -> list[dict | None]:
    """:func:`score_chunk` plus a telemetry *spill file* for the parent.

    The pool-worker entry point of the unified telemetry pipeline:
    the chunk is scored inside a ``subgroups.score_chunk`` span that
    continues the parent's :class:`~repro.observability.context.
    TraceContext` (one trace_id from the HTTP edge to here), and the
    worker's metric deltas — chunk/entry counters, scoring latency —
    are recorded into a fresh registry instead of the worker process's
    throwaway default.  Both are written to
    ``<spill.dir>/chunk-<lo>-<hi>.jsonl`` for the parent to merge on
    join.

    ``spill`` keys: ``dir`` (spill directory), ``lo``/``hi`` (chunk
    range, used for the file name and span attrs), optional ``context``
    (a ``TraceContext.to_dict()`` payload; absent means tracing is off)
    and ``run_id``.

    The spill write is deliberately *non-atomic* (a killed worker leaves
    a torn file); the parent-side reader (:func:`read_spills`) is
    tolerant, and metric deltas apply all-or-nothing, so a partial spill
    can never corrupt the parent's registry.  Scoring results are
    returned through the future as usual — a lost spill loses telemetry,
    never data.
    """
    from repro.observability.context import TraceContext
    from repro.observability.metrics import MetricsRegistry, use_metrics
    from repro.observability.trace import Tracer, use_tracer

    registry = MetricsRegistry()
    context = spill.get("context")
    tracer = (
        Tracer(
            run_id=spill.get("run_id", ""),
            context=TraceContext.from_dict(context),
        )
        if context
        else None
    )
    lo, hi = spill["lo"], spill["hi"]
    with use_metrics(registry):
        registry.counter("subgroups.chunks_scored").inc()
        registry.counter("subgroups.entries_scored").inc(len(entries))
        if tracer is not None:
            with use_tracer(tracer), tracer.span(
                "subgroups.score_chunk", lo=lo, hi=hi, size=len(entries)
            ), registry.timer("subgroups.chunk_seconds"):
                result = score_chunk(entries, positives_total, n_total)
        else:
            with registry.timer("subgroups.chunk_seconds"):
                result = score_chunk(entries, positives_total, n_total)

    lines = tracer.to_lines() if tracer is not None else [
        {
            "kind": "spill_meta",
            "created": time.time(),
            "process_id": os.getpid(),
        }
    ]
    lines.append({"kind": "metrics_delta", "delta": registry.delta()})
    path = Path(spill["dir"]) / f"chunk-{lo}-{hi}.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "\n".join(json.dumps(line, sort_keys=True) for line in lines)
            + "\n"
        )
    return result


# -- zero-copy counting workers (out-of-core data plane) ---------------------
#
# Since ISSUE 8 the parent no longer counts: workers receive *source
# manifests* — ``{"kind": "shm", ...}`` naming a shared-memory segment
# published by :mod:`repro.kernel.shm`, or ``{"kind": "npy", ...}``
# locating a packed column file — and derive the count pairs themselves.
# No column-sized array ever crosses the pickle boundary.

#: per-process source cache, keyed by the scan token: attached segments,
#: their array views, and per-subset count tensors.  Reset whenever a
#: different scan's token arrives, so a long-lived pool worker holds at
#: most one scan's attachments.
_WORKER_SOURCES: dict = {
    "token": None,
    "segments": {},
    "arrays": {},
    "counts": {},
}


def _reset_worker_sources() -> None:
    for segment in _WORKER_SOURCES["segments"].values():
        try:
            segment.close()
        except OSError:  # pragma: no cover — mapping already gone
            pass
    _WORKER_SOURCES.update(token=None, segments={}, arrays={}, counts={})


def _ensure_token(token: str) -> dict:
    if _WORKER_SOURCES["token"] != token:
        _reset_worker_sources()
        _WORKER_SOURCES["token"] = token
    return _WORKER_SOURCES


def _read_int64(manifest: dict, lo: int, hi: int, fresh: bool) -> np.ndarray:
    """Rows ``[lo, hi)`` of a source manifest as int64.

    ``fresh=True`` guarantees a private writable array (the accumulator
    the caller mutates in place); ``fresh=False`` may return a read-only
    view into shared memory (used only as a right-hand side).
    """
    if manifest["kind"] == "shm":
        arrays = _WORKER_SOURCES["arrays"]
        array = arrays.get(manifest["name"])
        if array is None:
            from repro.kernel import shm as _shm

            array, segment = _shm.attach_array(manifest)
            _WORKER_SOURCES["segments"][manifest["name"]] = segment
            arrays[manifest["name"]] = array
        chunk = array[lo:hi]
        return np.array(chunk, dtype=np.int64) if fresh else chunk
    dtype = np.dtype(manifest["dtype"])
    count = hi - lo
    chunk = np.fromfile(
        manifest["path"],
        dtype=dtype,
        count=count,
        offset=manifest["offset"] + lo * dtype.itemsize,
    )
    if len(chunk) != count:
        raise OSError(
            f"short read from {manifest['path']}: wanted rows [{lo}, {hi}), "
            f"got {len(chunk)}"
        )
    return chunk if chunk.dtype == np.int64 else chunk.astype(np.int64)


def _subset_cell_counts(sources: dict, subset_idx: int) -> np.ndarray:
    """``(n_cells, 2)`` joint counts for one attribute subset, cached.

    Chunked row-major fold of the subset's code sources against the
    prediction source — integer bincount accumulation, so the result is
    bit-identical to a one-shot :func:`repro.kernel.contingency.
    joint_counts` over the whole column.
    """
    state = _ensure_token(sources["token"])
    cached = state["counts"].get(subset_idx)
    if cached is not None:
        return cached
    subset = sources["subsets"][subset_idx]
    manifests = subset["columns"]
    n_categories = subset["n_categories"]
    n_cells = 1
    for n in n_categories:
        n_cells *= n
    n_rows = sources["n_rows"]
    step = sources["chunk_rows"]
    totals = np.zeros(n_cells * 2, dtype=np.int64)
    for lo in range(0, n_rows, step):
        hi = min(lo + step, n_rows)
        combined = _read_int64(manifests[0], lo, hi, fresh=True)
        for manifest, n_cats in zip(manifests[1:], n_categories[1:]):
            combined *= n_cats
            combined += _read_int64(manifest, lo, hi, fresh=False)
        combined *= 2
        combined += _read_int64(sources["predictions"], lo, hi, fresh=False)
        totals += np.bincount(combined, minlength=n_cells * 2)
    counts = totals.reshape(n_cells, 2)
    state["counts"][subset_idx] = counts
    return counts


def count_score_chunk(
    sources: dict,
    items: list[tuple[int, int, int]],
    positives_total: int,
    n_total: int,
    spill: dict | None = None,
) -> list[dict | None]:
    """Derive count pairs from shared sources, then score the chunk.

    ``sources`` carries the scan ``token``, ``n_rows``, ``chunk_rows``,
    a ``predictions`` manifest, and per-subset column manifests;
    ``items`` is the chunk's ``(subset_idx, cell, size)`` triples.  The
    per-subset count tensors are computed once per worker process and
    reused across chunks of the same scan, so each worker reads every
    source row at most once however many chunks it scores.

    With ``spill`` the scoring runs through
    :func:`score_chunk_telemetry`, preserving the frozen telemetry
    contract (``subgroups.score_chunk`` spans, chunk/entry counters,
    spill file format) byte-for-byte.
    """
    entries = [
        (int(_subset_cell_counts(sources, subset_idx)[cell, 1]), size)
        for subset_idx, cell, size in items
    ]
    if spill is None:
        return score_chunk(entries, positives_total, n_total)
    return score_chunk_telemetry(entries, positives_total, n_total, spill)


def count_cells_chunk(
    sources: dict, lo: int, hi: int
) -> tuple[list[int], list[int]]:
    """Sparse joint-cell counts for rows ``[lo, hi)`` of a scan's sources.

    The ingest worker of the lattice scan (:mod:`repro.subgroup.search`):
    folds every protected column plus the prediction column into one
    row-major combined code per row — the same mixed-radix fold as
    :func:`repro.kernel.contingency.combined_codes` — and returns the
    observed ``(code, count)`` pairs.  ``sources`` carries the scan
    ``token``, per-column manifests under ``columns``, their full-schema
    ``n_categories``, and a ``predictions`` manifest.  Counts are plain
    integers, so the parent's merge (integer addition per cell) is
    independent of how rows were chunked across workers.
    """
    _ensure_token(sources["token"])
    manifests = sources["columns"]
    n_categories = sources["n_categories"]
    combined = _read_int64(manifests[0], lo, hi, fresh=True)
    for manifest, n_cats in zip(manifests[1:], n_categories[1:]):
        combined *= n_cats
        combined += _read_int64(manifest, lo, hi, fresh=False)
    combined *= 2
    combined += _read_int64(sources["predictions"], lo, hi, fresh=False)
    codes, counts = np.unique(combined, return_counts=True)
    return [int(c) for c in codes], [int(c) for c in counts]


def read_spills(spill_dir) -> list[dict]:
    """Parse every spill file in a directory, tolerantly.

    Returns one ``{"created": float | None, "spans": [...], "deltas":
    [...]}`` per readable file.  Torn lines (killed workers) are
    skipped; a file that contributed nothing parseable is omitted.  The
    parent pairs this with :meth:`Tracer.absorb` (``created`` gives the
    wall-clock offset) and :meth:`MetricsRegistry.merge_delta`.
    """
    spills = []
    try:
        paths = sorted(Path(spill_dir).glob("chunk-*.jsonl"))
    except OSError:
        return []
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        created = None
        spans: list[dict] = []
        deltas: list[dict] = []
        for raw in text.splitlines():
            if not raw.strip():
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError:
                continue  # torn by a killed worker
            if not isinstance(line, dict):
                continue
            kind = line.get("kind")
            if kind in ("trace_meta", "spill_meta"):
                if created is None and isinstance(
                    line.get("created"), (int, float)
                ):
                    created = float(line["created"])
            elif kind == "span":
                spans.append(line)
            elif kind == "metrics_delta" and isinstance(
                line.get("delta"), dict
            ):
                deltas.append(line["delta"])
        if created is None and not spans and not deltas:
            continue
        spills.append({"created": created, "spans": spans, "deltas": deltas})
    return spills


def chunk_ranges(start: int, total: int, chunk: int) -> list[tuple[int, int]]:
    """Half-open index ranges covering [start, total), aligned so every
    boundary (except possibly ``start``) is an absolute multiple of
    ``chunk`` — the alignment that keeps parallel checkpoints identical
    to serial ones."""
    ranges = []
    index = start
    while index < total:
        end = min(((index // chunk) + 1) * chunk, total)
        ranges.append((index, end))
        index = end
    return ranges


def pruned_ranges(
    keep: list[bool], chunk: int, start: int = 0
) -> list[tuple[int, int]]:
    """:func:`chunk_ranges` minus the ranges with nothing left to score.

    The bound-aware scheduler of the pruned scan: boundaries stay on the
    same absolute multiples of ``chunk`` as the exhaustive scan's (so
    checkpoint cadence — and checkpoint bytes — are unchanged), but a
    range whose every subgroup was pruned is never dispatched, so with
    ``jobs=N`` the workers only ever receive chunks that contain live
    work.
    """
    return [
        (lo, hi)
        for lo, hi in chunk_ranges(start, len(keep), chunk)
        if any(keep[lo:hi])
    ]
