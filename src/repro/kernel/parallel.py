"""Parallel subgroup-scan scoring: pure count arithmetic, cheap to ship.

The subgroup scan is embarrassingly parallel once each subgroup is
reduced to two integers (positives inside, members inside): workers
need no arrays, just count tuples, so dispatch cost is a few bytes per
subgroup.  Chunk boundaries are aligned to absolute multiples of the
checkpoint interval, which makes the parallel scan's checkpoint cadence
— and therefore every checkpoint file — byte-identical to the serial
scan's.

Since ISSUE 5 scoring is *batched*: :func:`score_chunk` hands its whole
chunk of count pairs to :func:`repro.stats.batch.batch_score_counts`,
which runs one vectorized z-test and one Wilson batch for the entire
chunk instead of two scalar calls per subgroup — the payloads stay
bit-identical to the per-subgroup scalar loop (the property suite in
``tests/perf/test_batch_stats.py`` holds the equivalence).
"""

from __future__ import annotations

import numpy as np

from repro.stats.batch import batch_score_counts

__all__ = ["score_counts", "score_chunk", "chunk_ranges"]


def score_counts(
    positives_inside: int, n_inside: int, positives_total: int, n_total: int
) -> dict | None:
    """Disparity statistics for one subgroup from its count pair.

    A length-1 batch through :func:`batch_score_counts`: the rates are
    the same integer divisions, and the z-test/Wilson interval see the
    same integer inputs as the scalar scoring ever did.  Returns
    ``None`` when the subgroup covers the whole population (no
    complement to compare against).
    """
    return batch_score_counts(
        positives_inside, n_inside, positives_total, n_total
    )[0]


def score_chunk(
    entries: list[tuple[int, int]], positives_total: int, n_total: int
) -> list[dict | None]:
    """Score a chunk of ``(positives_inside, n_inside)`` pairs in order.

    One batch call for the whole chunk: the count pairs are folded into
    two int64 vectors and every subgroup's z-test, Wilson interval, and
    rate arithmetic runs as a single vectorized pass.
    """
    if not entries:
        return []
    positives = np.fromiter(
        (entry[0] for entry in entries), dtype=np.int64, count=len(entries)
    )
    sizes = np.fromiter(
        (entry[1] for entry in entries), dtype=np.int64, count=len(entries)
    )
    return batch_score_counts(positives, sizes, positives_total, n_total)


def chunk_ranges(start: int, total: int, chunk: int) -> list[tuple[int, int]]:
    """Half-open index ranges covering [start, total), aligned so every
    boundary (except possibly ``start``) is an absolute multiple of
    ``chunk`` — the alignment that keeps parallel checkpoints identical
    to serial ones."""
    ranges = []
    index = start
    while index < total:
        end = min(((index // chunk) + 1) * chunk, total)
        ranges.append((index, end))
        index = end
    return ranges
