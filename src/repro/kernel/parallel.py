"""Parallel subgroup-scan scoring: pure count arithmetic, cheap to ship.

The subgroup scan is embarrassingly parallel once each subgroup is
reduced to two integers (positives inside, members inside): workers
need no arrays, just count tuples, so dispatch cost is a few bytes per
subgroup.  Chunk boundaries are aligned to absolute multiples of the
checkpoint interval, which makes the parallel scan's checkpoint cadence
— and therefore every checkpoint file — byte-identical to the serial
scan's.
"""

from __future__ import annotations

from repro.stats.tests import two_proportion_z_test, wilson_interval

__all__ = ["score_counts", "score_chunk", "chunk_ranges"]


def score_counts(
    positives_inside: int, n_inside: int, positives_total: int, n_total: int
) -> dict | None:
    """Disparity statistics for one subgroup from its count pair.

    Reproduces the serial mask-based scoring exactly: the rates are the
    same integer divisions, and the z-test/Wilson interval see the same
    integer inputs.  Returns ``None`` when the subgroup covers the whole
    population (no complement to compare against).
    """
    n_outside = n_total - n_inside
    if n_outside <= 0:
        return None
    positives_outside = positives_total - positives_inside
    rate = positives_inside / n_inside
    complement = positives_outside / n_outside
    test = two_proportion_z_test(
        positives_inside, n_inside, positives_outside, n_outside
    )
    ci_low, ci_high = wilson_interval(positives_inside, n_inside)
    return {
        "rate": rate,
        "complement_rate": complement,
        "gap": rate - complement,
        "ci_low": ci_low,
        "ci_high": ci_high,
        "p_value": test.p_value,
    }


def score_chunk(
    entries: list[tuple[int, int]], positives_total: int, n_total: int
) -> list[dict | None]:
    """Score a chunk of ``(positives_inside, n_inside)`` pairs in order."""
    return [
        score_counts(positives, n, positives_total, n_total)
        for positives, n in entries
    ]


def chunk_ranges(start: int, total: int, chunk: int) -> list[tuple[int, int]]:
    """Half-open index ranges covering [start, total), aligned so every
    boundary (except possibly ``start``) is an absolute multiple of
    ``chunk`` — the alignment that keeps parallel checkpoints identical
    to serial ones."""
    ranges = []
    index = start
    while index < total:
        end = min(((index // chunk) + 1) * chunk, total)
        ranges.append((index, end))
        index = end
    return ranges
