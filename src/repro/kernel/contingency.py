"""Joint-contingency engine: all group confusion counts in one bincount.

Combining a group code ``g`` with binary outcome/label codes folds the
whole (group × label × prediction) contingency table into a single flat
code per row; one ``np.bincount`` over those codes then yields the full
confusion-matrix counts of *every* group at once.  Demographic parity,
equal opportunity, equalized odds, predictive parity, treatment
equality, FPR parity, accuracy equality, and the conditional variants
all read from this one shared count tensor instead of re-masking the
arrays per metric per group.

Counts are exact integers, so every derived rate (``positives / n``)
is bit-identical to the reference per-group-mask computation.  The
engine's latency feeds the ``kernel.contingency`` histogram; count
tensors are cached by array identity next to the code tables.
"""

from __future__ import annotations

import numpy as np

from repro.kernel.codes import CodeTable, cache_get, cache_put, codes_for
from repro.observability.metrics import get_metrics

__all__ = [
    "GroupCounts",
    "StratifiedCounts",
    "combined_codes",
    "joint_counts",
    "group_counts",
    "stratified_counts",
]


def combined_codes(tables: list[CodeTable]) -> tuple[np.ndarray, int]:
    """Fold several code tables into one joint code per row.

    Returns ``(codes, n_cells)`` where cell ``(c_1, ..., c_k)`` maps to
    ``((c_1 * |T_2| + c_2) * |T_3| + c_3) ...`` — row-major order over
    the tables' category axes.  Any ``-1`` component leaves the joint
    code negative, so out-of-table rows stay identifiable.
    """
    codes = tables[0].codes
    n_cells = tables[0].n_categories
    for table in tables[1:]:
        negative = (codes < 0) | (table.codes < 0)
        codes = codes * table.n_categories + table.codes
        if negative.any():
            codes = np.where(negative, -1, codes)
        n_cells *= table.n_categories
    return codes, n_cells


def joint_counts(codes: np.ndarray, n_cells: int, *binary: np.ndarray) -> np.ndarray:
    """Contingency counts over joint codes crossed with binary arrays.

    With no binary arrays the result has shape ``(n_cells,)``; each
    additional binary (0/1 int) array appends an axis of length 2, e.g.
    ``joint_counts(g, G, y, r)[g, y, r]`` is the number of rows in group
    ``g`` with label ``y`` and prediction ``r``.  Rows with negative
    codes are excluded.
    """
    with get_metrics().timer("kernel.contingency"):
        if np.any(codes < 0):
            valid = codes >= 0
            codes = codes[valid]
            binary = tuple(b[valid] for b in binary)
        combined = codes
        for b in binary:
            combined = combined * 2 + b
        cells = n_cells * (2 ** len(binary))
        counts = np.bincount(combined, minlength=cells)
    return counts.reshape((n_cells,) + (2,) * len(binary))


class GroupCounts:
    """Per-group confusion counts for one protected attribute.

    All fields are plain Python ints aligned with ``categories`` (the
    repr-sorted group order).  The label-side fields (``tp`` etc.) are
    ``None`` when built without ``y_true``.
    """

    __slots__ = ("categories", "n", "pred_pos", "tp", "fp", "fn", "tn")

    def __init__(self, categories, counts: np.ndarray):
        self.categories = categories
        if counts.ndim == 2:  # (group, prediction)
            self.n = [int(x) for x in counts.sum(axis=1)]
            self.pred_pos = [int(x) for x in counts[:, 1]]
            self.tp = self.fp = self.fn = self.tn = None
        else:  # (group, label, prediction)
            self.n = [int(x) for x in counts.sum(axis=(1, 2))]
            self.tp = [int(x) for x in counts[:, 1, 1]]
            self.fn = [int(x) for x in counts[:, 1, 0]]
            self.fp = [int(x) for x in counts[:, 0, 1]]
            self.tn = [int(x) for x in counts[:, 0, 0]]
            self.pred_pos = [t + f for t, f in zip(self.tp, self.fp)]


class StratifiedCounts:
    """Per-(stratum, group) positive-prediction counts.

    ``counts[s, g, r]`` is the number of rows in stratum ``s`` (order of
    ``strata_table.categories``) and group ``g`` with prediction ``r``.
    """

    __slots__ = ("strata_table", "group_table", "counts")

    def __init__(self, strata_table: CodeTable, group_table: CodeTable, counts: np.ndarray):
        self.strata_table = strata_table
        self.group_table = group_table
        self.counts = counts


def group_counts(protected, predictions, y_true=None) -> GroupCounts:
    """Confusion counts per protected group, cached by array identity."""
    arrays = (protected, predictions) if y_true is None else (protected, predictions, y_true)
    cacheable = all(isinstance(a, np.ndarray) for a in arrays)
    extra = ("group_counts", len(arrays))
    if cacheable:
        cached = cache_get(arrays, extra)
        if cached is not None:
            return cached
    table = codes_for(protected)
    binary = (predictions,) if y_true is None else (y_true, predictions)
    counts = joint_counts(table.codes, table.n_categories, *binary)
    result = GroupCounts(table.categories, counts)
    if cacheable:
        cache_put(arrays, extra, result)
    return result


def stratified_counts(strata, protected, predictions) -> StratifiedCounts:
    """Per-(stratum, group) prediction counts, cached by array identity."""
    arrays = (strata, protected, predictions)
    cacheable = all(isinstance(a, np.ndarray) for a in arrays)
    extra = ("stratified_counts",)
    if cacheable:
        cached = cache_get(arrays, extra)
        if cached is not None:
            return cached
    strata_table = codes_for(strata)
    group_table = codes_for(protected)
    codes, n_cells = combined_codes([strata_table, group_table])
    counts = joint_counts(codes, n_cells, predictions).reshape(
        strata_table.n_categories, group_table.n_categories, 2
    )
    result = StratifiedCounts(strata_table, group_table, counts)
    if cacheable:
        cache_put(arrays, extra, result)
    return result
