"""Shared-memory publication of kernel arrays for zero-copy workers.

``audit_subgroups(jobs=N)`` used to pickle nothing but count tuples to
its pool workers — cheap, but it forced the *parent* to do all the
counting.  The out-of-core data plane moves counting into the workers,
which means they need the code arrays and the prediction vector.  Those
must not cross the pickle boundary (an N-row array per chunk per worker
is exactly the copy storm this layer exists to avoid), so the parent
*publishes* each array once into a POSIX shared-memory segment and
ships only a tiny manifest (``{"kind": "shm", "name": ..., "dtype":
..., "shape": ...}``); workers attach by name and read the same pages.

Lifecycle rules (the no-``/dev/shm``-leak contract):

* publications are cached by array identity — one segment per array,
  however many scans reuse it — and evicted (segment unlinked) when the
  source array is garbage-collected;
* :func:`release_all` unlinks everything; it runs from
  :func:`repro.kernel.clear_cache` and at interpreter exit;
* attachers call :func:`attach`, which keeps the attach *out of* the
  attaching process's ``resource_tracker``.  Otherwise a pool worker
  exiting (normally or not) could let a tracker unlink the parent-owned
  segment out from under every other worker — the classic CPython
  < 3.13 shared-memory footgun.  A worker killed ``-9`` simply drops
  its mapping; the parent still owns, and eventually unlinks, the
  segment.
"""

from __future__ import annotations

import atexit
import threading
import uuid
import weakref
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "publish",
    "attach",
    "attach_array",
    "release",
    "release_all",
    "active_segments",
]

#: every segment this library creates carries this name prefix, so leak
#: checks (tests/perf) can enumerate ``/dev/shm`` unambiguously.
SEGMENT_PREFIX = "repro_shm_"

_lock = threading.Lock()
#: id(array) -> (weakref-to-array, SharedMemory, manifest)
_published: dict[int, tuple] = {}


def _unlink_quietly(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except OSError:  # pragma: no cover — buffer already released
        pass
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover
        pass


def publish(array: np.ndarray) -> dict:
    """Copy ``array`` into a shared-memory segment once; return its manifest.

    Idempotent per array object: repeat calls for the same (alive) array
    return the existing manifest without touching the segment.  The
    manifest is plain JSON-able data — safe to pickle to workers.
    """
    arr = np.ascontiguousarray(array)
    key = id(array)
    with _lock:
        entry = _published.get(key)
        if entry is not None:
            ref, _segment, manifest = entry
            if ref() is array:
                return manifest
            # recycled id; the evict callback is about to drop it anyway
            _published.pop(key, None)

    segment = shared_memory.SharedMemory(
        create=True,
        size=max(1, arr.nbytes),
        name=f"{SEGMENT_PREFIX}{uuid.uuid4().hex[:16]}",
    )
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
    view[...] = arr
    manifest = {
        "kind": "shm",
        "name": segment.name,
        "dtype": np.lib.format.dtype_to_descr(arr.dtype),
        "shape": list(arr.shape),
    }

    def _evict(_ref, key=key):
        with _lock:
            entry = _published.pop(key, None)
        if entry is not None:
            _unlink_quietly(entry[1])

    try:
        ref = weakref.ref(array, _evict)
    except TypeError:
        # unweakrefable input: keep the segment until release_all()
        ref = lambda: array  # noqa: E731 — constant closure stands in
    with _lock:
        _published[key] = (ref, segment, manifest)
    return manifest


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a published segment by name (worker side).

    The attach is *not* registered with the ``resource_tracker``:
    attachers borrow the segment, they do not own it, and their exit —
    normal or abnormal — must never unlink it.  (Registering and then
    unregistering would race a fork-shared tracker: a worker's
    unregister removes the parent's registration, and the parent's
    eventual ``unlink`` then KeyErrors inside the tracker process.
    CPython grew ``track=False`` for exactly this in 3.13; this is the
    portable equivalent.)
    """
    with _lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    return segment


def attach_array(manifest: dict) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach a manifest and view it as a read-only ndarray.

    Returns ``(array, segment)``; the caller must keep ``segment`` alive
    as long as the array is in use, and ``segment.close()`` when done.
    """
    segment = attach(manifest["name"])
    array = np.ndarray(
        tuple(manifest["shape"]),
        dtype=np.dtype(manifest["dtype"]),
        buffer=segment.buf,
    )
    array.setflags(write=False)
    return array, segment


def release(array: np.ndarray) -> bool:
    """Unlink the segment published for ``array``; True if one existed."""
    with _lock:
        entry = _published.pop(id(array), None)
    if entry is None:
        return False
    _unlink_quietly(entry[1])
    return True


def release_all() -> None:
    """Unlink every published segment (``clear_cache`` / atexit hook)."""
    with _lock:
        entries = list(_published.values())
        _published.clear()
    for _ref, segment, _manifest in entries:
        _unlink_quietly(segment)


def active_segments() -> list[str]:
    """Names of currently published segments (leak-check helper)."""
    with _lock:
        return sorted(entry[2]["name"] for entry in _published.values())


atexit.register(release_all)
