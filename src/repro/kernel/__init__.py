"""Compute kernel: shared group statistics for metrics and scans.

The kernel is the library's hot path (ROADMAP: "fast as the hardware
allows").  It has three parts:

* **code tables** (:mod:`repro.kernel.codes`) — each sensitive column
  encoded once to int codes, per-category boolean masks computed lazily
  and cached; tables are cached by array identity and, on datasets, by
  the dataset's sha256 fingerprint (``TabularDataset.codes``);
* **joint contingency** (:mod:`repro.kernel.contingency`) — one
  ``np.bincount`` over combined (group × outcome × label) codes yields
  the confusion counts of every group at once, shared by all of the
  Section III metrics;
* **parallel scan** (:mod:`repro.kernel.parallel`) — chunked scoring of
  the subgroup enumeration for ``audit_subgroups(jobs=N)``, merged in
  enumeration order so results stay byte-identical to serial.

Everything is instrumented through the PR 2 metrics registry
(``kernel.cache_hit`` / ``kernel.cache_miss`` counters, the
``kernel.contingency`` latency histogram), and the original slow paths
remain available behind the ``"reference"`` backend
(:func:`use_backend`) for equivalence testing and honest benchmarking.
"""

from repro.kernel._backend import BACKENDS, get_backend, set_backend, use_backend
from repro.kernel.codes import CodeTable, clear_cache, codes_for, encode
from repro.kernel.contingency import (
    GroupCounts,
    StratifiedCounts,
    combined_codes,
    group_counts,
    joint_counts,
    stratified_counts,
)
from repro.kernel.parallel import (
    chunk_ranges,
    count_cells_chunk,
    count_score_chunk,
    pruned_ranges,
    read_spills,
    score_chunk,
    score_chunk_telemetry,
    score_counts,
)
from repro.kernel.shm import attach_array, publish, release_all

__all__ = [
    "BACKENDS",
    "get_backend",
    "set_backend",
    "use_backend",
    "CodeTable",
    "encode",
    "codes_for",
    "clear_cache",
    "GroupCounts",
    "StratifiedCounts",
    "combined_codes",
    "joint_counts",
    "group_counts",
    "stratified_counts",
    "score_counts",
    "score_chunk",
    "score_chunk_telemetry",
    "count_score_chunk",
    "count_cells_chunk",
    "read_spills",
    "chunk_ranges",
    "pruned_ranges",
    "publish",
    "attach_array",
    "release_all",
]
