"""Immutable tabular dataset used throughout the library.

:class:`TabularDataset` is a small column store: a :class:`~repro.data.schema.Schema`
plus one numpy array per column.  It is deliberately immutable — every
transformation returns a new dataset — so that audits, mitigations, and
simulations can never silently corrupt each other's inputs.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Mapping

import numpy as np

from repro._validation import check_probability, check_random_state
from repro.data.schema import Column, ColumnKind, ColumnRole, Schema
from repro.exceptions import DatasetError, SchemaError

__all__ = ["TabularDataset"]


def _as_column_array(values, column: Column) -> np.ndarray:
    """Coerce raw values into the canonical array for a column."""
    if column.kind == ColumnKind.NUMERIC:
        arr = np.asarray(values, dtype=float)
    else:
        arr = np.asarray(values)
        if arr.dtype.kind in "fiub" and all(
            isinstance(c, (int, float, bool, np.integer, np.floating))
            for c in column.categories
        ):
            arr = arr.astype(np.asarray(column.categories).dtype)
    if arr.ndim != 1:
        raise DatasetError(
            f"column {column.name!r} must be 1-dimensional, got shape {arr.shape}"
        )
    if column.is_discrete:
        allowed = set(column.categories)
        present = set(np.unique(arr).tolist())
        extra = present - allowed
        if extra:
            raise DatasetError(
                f"column {column.name!r} contains values outside its declared "
                f"categories {column.categories}: {sorted(extra, key=repr)}"
            )
    arr = arr.copy()
    arr.setflags(write=False)
    return arr


class TabularDataset:
    """A schema-validated, immutable table of fairness-analysis data.

    Parameters
    ----------
    schema:
        Column definitions (see :class:`repro.data.schema.Schema`).
    data:
        Mapping from column name to a 1-D sequence.  Every schema column
        must be present and all columns must share one length.

    Examples
    --------
    >>> from repro.data import Column, Schema, TabularDataset
    >>> schema = Schema((
    ...     Column("experience", kind="numeric"),
    ...     Column("sex", kind="categorical", role="protected",
    ...            categories=("male", "female")),
    ...     Column("hired", kind="binary", role="label"),
    ... ))
    >>> ds = TabularDataset(schema, {
    ...     "experience": [3.0, 5.0], "sex": ["female", "male"],
    ...     "hired": [0, 1],
    ... })
    >>> ds.n_rows
    2
    """

    def __init__(self, schema: Schema, data: Mapping[str, Iterable]):
        if not isinstance(schema, Schema):
            raise DatasetError(f"schema must be a Schema, got {type(schema).__name__}")
        missing = [c.name for c in schema if c.name not in data]
        if missing:
            raise DatasetError(f"data missing columns declared in schema: {missing}")
        extra = [name for name in data if name not in schema]
        if extra:
            raise DatasetError(f"data has columns absent from schema: {extra}")
        self._schema = schema
        self._columns: dict[str, np.ndarray] = {
            col.name: _as_column_array(data[col.name], col) for col in schema
        }
        lengths = {name: len(arr) for name, arr in self._columns.items()}
        if len(set(lengths.values())) > 1:
            raise DatasetError(f"columns have mismatched lengths: {lengths}")
        self._n_rows = next(iter(lengths.values())) if lengths else 0

    @classmethod
    def _trusted(
        cls, schema: Schema, columns: dict[str, np.ndarray], n_rows: int
    ) -> "TabularDataset":
        """Build a dataset from already-canonical column arrays.

        Internal fast path for operations whose outputs are canonical by
        construction (``take``/``concat`` of validated columns, packed
        chunk reads): skips the per-column re-validation *and the copy*
        of ``__init__``.  Callers guarantee the arrays are 1-D, schema
        complete, length-consistent, read-only, and dtype-canonical.
        """
        ds = object.__new__(cls)
        ds._schema = schema
        ds._columns = columns
        ds._n_rows = n_rows
        return ds

    # -- basic access ------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The dataset schema."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._schema

    def column(self, name: str) -> np.ndarray:
        """The (read-only) array for one column."""
        if name not in self._columns:
            raise SchemaError(
                f"unknown column {name!r}; available: {self._schema.names()}"
            )
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def labels(self) -> np.ndarray:
        """The label column, when the schema declares one."""
        name = self._schema.label_name
        if name is None:
            raise DatasetError("dataset has no label column")
        return self.column(name)

    def protected(self, name: str | None = None) -> np.ndarray:
        """A protected column; defaults to the single protected column."""
        if name is None:
            protected = self._schema.protected_names
            if len(protected) != 1:
                raise DatasetError(
                    "protected() without a name requires exactly one "
                    f"protected column, dataset has {protected}"
                )
            name = protected[0]
        if self._schema[name].role != ColumnRole.PROTECTED:
            raise DatasetError(f"column {name!r} is not protected")
        return self.column(name)

    def feature_matrix(self, encode_categoricals: bool = True) -> np.ndarray:
        """Feature columns stacked into a 2-D float matrix.

        Categorical feature columns are one-hot encoded (one column per
        category, in the schema's category order) unless
        ``encode_categoricals`` is False, in which case categorical
        features raise.
        """
        blocks: list[np.ndarray] = []
        for col in self._schema.by_role(ColumnRole.FEATURE):
            arr = self._columns[col.name]
            if col.kind == ColumnKind.NUMERIC:
                blocks.append(arr.astype(float).reshape(-1, 1))
            elif col.kind == ColumnKind.BINARY:
                blocks.append(arr.astype(float).reshape(-1, 1))
            elif encode_categoricals:
                onehot = np.zeros((self._n_rows, len(col.categories)))
                for j, cat in enumerate(col.categories):
                    onehot[:, j] = (arr == cat).astype(float)
                blocks.append(onehot)
            else:
                raise DatasetError(
                    f"categorical feature {col.name!r} requires encoding"
                )
        if not blocks:
            return np.zeros((self._n_rows, 0))
        return np.hstack(blocks)

    def feature_matrix_names(self) -> list[str]:
        """Column names of :meth:`feature_matrix`, expanding one-hots."""
        names: list[str] = []
        for col in self._schema.by_role(ColumnRole.FEATURE):
            if col.kind == ColumnKind.CATEGORICAL:
                names.extend(f"{col.name}={cat}" for cat in col.categories)
            else:
                names.append(col.name)
        return names

    # -- row selection -----------------------------------------------------

    def take(self, indices) -> "TabularDataset":
        """A new dataset containing the rows at ``indices`` (in order)."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if len(indices) != self._n_rows:
                raise DatasetError(
                    f"boolean mask length {len(indices)} != n_rows {self._n_rows}"
                )
            indices = np.flatnonzero(indices)
        if indices.ndim != 1:
            raise DatasetError(
                f"take indices must be 1-dimensional, got shape {indices.shape}"
            )
        # fancy indexing of already-canonical columns yields canonical
        # arrays (dtype preserved, fresh contiguous copy), so the
        # re-validating constructor — and its second full copy — is
        # unnecessary here.
        columns: dict[str, np.ndarray] = {}
        for name, arr in self._columns.items():
            picked = arr[indices]
            picked.setflags(write=False)
            columns[name] = picked
        return TabularDataset._trusted(self._schema, columns, len(indices))

    def filter(self, **conditions) -> "TabularDataset":
        """Rows where every ``column=value`` condition holds.

        >>> ds.filter(sex="female", hired=1)  # doctest: +SKIP
        """
        mask = np.ones(self._n_rows, dtype=bool)
        for name, value in conditions.items():
            mask &= self.column(name) == value
        return self.take(mask)

    def split(
        self,
        test_fraction: float = 0.25,
        random_state: int | np.random.Generator | None = None,
        stratify_by: str | None = None,
    ) -> tuple["TabularDataset", "TabularDataset"]:
        """Random (train, test) split.

        When ``stratify_by`` names a discrete column, the split preserves
        that column's group proportions — important when sensitive groups
        are small, per the paper's Section IV.C sparsity warning.
        """
        check_probability(test_fraction, "test_fraction")
        rng = check_random_state(random_state)
        if stratify_by is None:
            order = rng.permutation(self._n_rows)
            n_test = int(round(test_fraction * self._n_rows))
            return self.take(order[n_test:]), self.take(order[:n_test])
        values = self.column(stratify_by)
        train_idx: list[int] = []
        test_idx: list[int] = []
        for value in np.unique(values):
            members = np.flatnonzero(values == value)
            members = rng.permutation(members)
            n_test = int(round(test_fraction * len(members)))
            test_idx.extend(members[:n_test])
            train_idx.extend(members[n_test:])
        return self.take(np.sort(train_idx)), self.take(np.sort(test_idx))

    def groupby(self, name: str):
        """Yield ``(value, subset)`` pairs for each distinct column value."""
        values = self.column(name)
        col = self._schema[name]
        ordered = (
            [c for c in col.categories if c in set(values.tolist())]
            if col.is_discrete
            else sorted(np.unique(values).tolist())
        )
        for value in ordered:
            yield value, self.take(values == value)

    # -- column transformation ----------------------------------------------

    def with_column(self, column: Column, values) -> "TabularDataset":
        """A new dataset with ``column`` added (or replaced if same-named)."""
        if column.name in self._schema:
            schema = self._schema.replace_column(column)
        else:
            schema = self._schema.add(column)
        data = dict(self._columns)
        data[column.name] = values
        return TabularDataset(schema, data)

    def with_predictions(
        self, values, name: str = "prediction"
    ) -> "TabularDataset":
        """Attach a binary prediction column (role ``prediction``)."""
        column = Column(name, kind=ColumnKind.BINARY, role=ColumnRole.PREDICTION)
        return self.with_column(column, values)

    def drop_column(self, name: str) -> "TabularDataset":
        """A new dataset without the named column."""
        schema = self._schema.drop(name)
        data = {k: v for k, v in self._columns.items() if k != name}
        return TabularDataset(schema, data)

    def with_role(self, name: str, role: str) -> "TabularDataset":
        """A new dataset in which column ``name`` has a different role.

        The canonical use is *fairness through unawareness* experiments:
        demote a protected column to metadata so models cannot see it.
        """
        column = self._schema[name].with_role(role)
        return TabularDataset(self._schema.replace_column(column), self._columns)

    def concat(self, other: "TabularDataset") -> "TabularDataset":
        """Row-wise concatenation; schemas must declare identical columns."""
        if self._schema.names() != other.schema.names():
            raise DatasetError(
                "cannot concat datasets with different columns: "
                f"{self._schema.names()} vs {other.schema.names()}"
            )
        if other.schema == self._schema:
            # identical schemas mean both sides' columns are already
            # canonical for *this* schema; concatenate once and skip the
            # validating constructor's second full copy.
            columns: dict[str, np.ndarray] = {}
            for name in self._schema.names():
                joined = np.concatenate([self._columns[name], other.column(name)])
                joined.setflags(write=False)
                columns[name] = joined
            return TabularDataset._trusted(
                self._schema, columns, self._n_rows + other.n_rows
            )
        data = {
            name: np.concatenate([self._columns[name], other.column(name)])
            for name in self._schema.names()
        }
        return TabularDataset(self._schema, data)

    # -- interchange ---------------------------------------------------------

    def to_dict(self) -> dict[str, list]:
        """Plain dict-of-lists representation."""
        return {name: arr.tolist() for name, arr in self._columns.items()}

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Mapping]) -> "TabularDataset":
        """Build a dataset from an iterable of row mappings."""
        rows = list(rows)
        data = {
            col.name: [row[col.name] for row in rows] for col in schema
        }
        return cls(schema, data)

    def to_csv(self) -> str:
        """Serialise to a CSV string (header row + one row per record)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        names = self._schema.names()
        writer.writerow(names)
        for i in range(self._n_rows):
            writer.writerow([self._columns[name][i] for name in names])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, schema: Schema, text: str) -> "TabularDataset":
        """Parse a CSV string produced by :meth:`to_csv` under ``schema``."""
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError("CSV input is empty") from None
        if header != schema.names():
            raise DatasetError(
                f"CSV header {header} does not match schema {schema.names()}"
            )
        raw_rows = [row for row in reader if row]
        data: dict[str, list] = {name: [] for name in header}
        for row in raw_rows:
            if len(row) != len(header):
                raise DatasetError(f"malformed CSV row: {row}")
            for name, cell in zip(header, row):
                data[name].append(_parse_cell(cell, schema[name]))
        return cls(schema, data)

    # -- kernel integration ----------------------------------------------------

    def fingerprint(self) -> str:
        """sha256 content fingerprint (schema layout + column bytes)."""
        from repro.observability.provenance import dataset_fingerprint

        return dataset_fingerprint(self)

    def codes(self, name: str, categories: list | None = None):
        """The kernel :class:`~repro.kernel.CodeTable` for a column.

        Each column is encoded exactly once per dataset: tables are
        cached on the instance keyed by ``(fingerprint, name, category
        order)``, and the table itself materialises per-category boolean
        masks lazily.  Repeat lookups count as ``kernel.cache_hit``.
        """
        from repro.kernel.codes import codes_for
        from repro.observability.metrics import get_metrics

        key = (
            self.fingerprint(),
            name,
            None if categories is None else tuple(categories),
        )
        cache = getattr(self, "_code_tables", None)
        if cache is None:
            cache = {}
            self._code_tables = cache
        table = cache.get(key)
        if table is not None:
            get_metrics().counter("kernel.cache_hit").inc()
            return table
        table = codes_for(self.column(name), categories=categories)
        cache[key] = table
        return table

    def category_mask(self, name: str, value) -> np.ndarray:
        """Cached read-only boolean mask of rows where ``column == value``."""
        return self.codes(name).mask(value)

    # -- summaries -------------------------------------------------------------

    def rate(self, column: str, value=1, where: np.ndarray | None = None) -> float:
        """P(column == value), optionally restricted to a boolean mask."""
        arr = self.column(column)
        if where is not None:
            arr = arr[np.asarray(where, dtype=bool)]
        if len(arr) == 0:
            raise DatasetError(f"rate over empty selection for column {column!r}")
        return float(np.mean(arr == value))

    def describe(self) -> dict[str, dict]:
        """Per-column summary: counts for discrete, moments for numeric."""
        summary: dict[str, dict] = {}
        for col in self._schema:
            arr = self._columns[col.name]
            if col.is_discrete:
                values, counts = np.unique(arr, return_counts=True)
                summary[col.name] = {
                    "kind": col.kind,
                    "role": col.role,
                    "counts": dict(zip(values.tolist(), counts.tolist())),
                }
            else:
                summary[col.name] = {
                    "kind": col.kind,
                    "role": col.role,
                    "mean": float(np.mean(arr)) if len(arr) else float("nan"),
                    "std": float(np.std(arr)) if len(arr) else float("nan"),
                    "min": float(np.min(arr)) if len(arr) else float("nan"),
                    "max": float(np.max(arr)) if len(arr) else float("nan"),
                }
        return summary

    def __repr__(self) -> str:
        roles = {
            "features": len(self._schema.feature_names),
            "protected": len(self._schema.protected_names),
        }
        return (
            f"TabularDataset(n_rows={self._n_rows}, "
            f"n_features={roles['features']}, n_protected={roles['protected']}, "
            f"label={self._schema.label_name!r})"
        )


def _parse_cell(cell: str, column: Column):
    """Parse one CSV cell according to its column definition."""
    if column.kind == ColumnKind.NUMERIC:
        return float(cell)
    if column.categories and all(
        isinstance(c, (int, np.integer)) for c in column.categories
    ):
        return int(cell)
    if column.categories and all(
        isinstance(c, (float, np.floating)) for c in column.categories
    ):
        return float(cell)
    return cell
