"""Tabular data substrate: schemas, datasets, generators, bias injectors."""

from repro.data.admissions import ETHNICITY_GROUPS, make_admissions
from repro.data.bias import (
    inject_label_bias,
    inject_measurement_noise,
    inject_proxy_column,
    inject_representation_bias,
    swap_protected_values,
)
from repro.data.dataset import TabularDataset
from repro.data.generators import (
    make_credit,
    make_hiring,
    make_housing,
    make_intersectional,
    make_recidivism,
)
from repro.data.marginals import PopulationMarginals
from repro.data.ooc import (
    MemmapDataset,
    PackedWriter,
    is_packed,
    open_dataset,
    pack_dataset,
    packed_fingerprint,
    stream_chunks,
)
from repro.data.schema import Column, ColumnKind, ColumnRole, Schema

__all__ = [
    "Column",
    "ColumnKind",
    "ColumnRole",
    "Schema",
    "TabularDataset",
    "MemmapDataset",
    "PackedWriter",
    "pack_dataset",
    "open_dataset",
    "is_packed",
    "packed_fingerprint",
    "stream_chunks",
    "PopulationMarginals",
    "make_hiring",
    "make_credit",
    "make_housing",
    "make_recidivism",
    "make_intersectional",
    "make_admissions",
    "ETHNICITY_GROUPS",
    "inject_label_bias",
    "inject_representation_bias",
    "inject_proxy_column",
    "inject_measurement_noise",
    "swap_protected_values",
]
