"""Synthetic workload generators for fairness experiments.

The paper motivates every criterion with hiring, credit, and housing
scenarios; these generators produce the corresponding datasets with
*explicit, controllable* bias so that experiments can dial each phenomenon
in or out:

* :func:`make_hiring` — the paper's running example: applicants with a
  latent qualification, a protected ``sex`` attribute, optional direct
  label bias, and optional proxy columns correlated with sex.
* :func:`make_credit` — an ECOA-style credit-scoring population.
* :func:`make_housing` — an FHA-style rental-application population.
* :func:`make_recidivism` — a COMPAS-style risk-scoring population.
* :func:`make_intersectional` — a population that is marginally fair on
  each of two protected attributes but unfair on their intersection
  (the Section IV.C construction).

Every generator takes a ``random_state`` and is fully deterministic given
a seed, as required for reproducible benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_in_range,
    check_positive_int,
    check_probability,
    check_random_state,
)
from repro.data.dataset import TabularDataset
from repro.data.schema import Column, ColumnKind, ColumnRole, Schema

__all__ = [
    "make_hiring",
    "make_credit",
    "make_housing",
    "make_recidivism",
    "make_intersectional",
]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


def make_hiring(
    n: int = 2000,
    female_fraction: float = 0.5,
    direct_bias: float = 0.0,
    proxy_strength: float = 0.0,
    label_noise: float = 0.05,
    base_rate: float = 0.5,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """Hiring population: the paper's running example.

    Each applicant has a latent qualification ``q ~ N(0, 1)`` from which
    observable merit features derive (``experience``, ``skill_score``,
    ``education``).  The hiring label is a noisy threshold on ``q``.

    Parameters
    ----------
    direct_bias:
        Amount subtracted from the label logit of female applicants —
        direct (disparate-treatment-style) label bias.  0 means labels
        depend on qualification alone.
    proxy_strength:
        In [0, 1]; correlation strength between the ``university`` proxy
        column and ``sex``.  At 1, university deterministically encodes
        sex (the Section IV.B construction); at 0 it is independent.
    label_noise:
        Probability of flipping each label, independent of group.
    base_rate:
        Target overall positive rate of the *unbiased* labels.
    """
    n = check_positive_int(n, "n")
    check_probability(female_fraction, "female_fraction")
    check_probability(proxy_strength, "proxy_strength")
    check_probability(label_noise, "label_noise")
    check_in_range(base_rate, "base_rate", 0.01, 0.99)
    rng = check_random_state(random_state)

    sex = np.where(rng.random(n) < female_fraction, "female", "male")
    is_female = sex == "female"
    qualification = rng.normal(0.0, 1.0, n)

    experience = np.clip(4.0 + 2.0 * qualification + rng.normal(0, 1.0, n), 0, None)
    skill_score = np.clip(
        60.0 + 12.0 * qualification + rng.normal(0, 6.0, n), 0, 100
    )
    education = np.clip(
        np.rint(2.0 + 0.8 * qualification + rng.normal(0, 0.7, n)), 0, 5
    ).astype(float)

    # A proxy column: with probability proxy_strength the university group
    # reveals sex exactly; otherwise it is assigned uniformly at random.
    reveal = rng.random(n) < proxy_strength
    random_univ = rng.integers(0, 2, n)
    univ_code = np.where(reveal, is_female.astype(int), random_univ)
    university = np.where(univ_code == 1, "u_alpha", "u_beta")

    threshold = float(np.quantile(qualification, 1.0 - base_rate))
    logit = 3.0 * (qualification - threshold)
    logit = logit - direct_bias * is_female
    hired = (rng.random(n) < _sigmoid(logit)).astype(int)
    flip = rng.random(n) < label_noise
    hired = np.where(flip, 1 - hired, hired)

    schema = Schema((
        Column("experience", kind=ColumnKind.NUMERIC),
        Column("skill_score", kind=ColumnKind.NUMERIC),
        Column("education", kind=ColumnKind.NUMERIC),
        Column(
            "university",
            kind=ColumnKind.CATEGORICAL,
            categories=("u_beta", "u_alpha"),
        ),
        Column(
            "sex",
            kind=ColumnKind.CATEGORICAL,
            role=ColumnRole.PROTECTED,
            categories=("male", "female"),
            statute_tags=("title_vii", "eu_2006_54"),
        ),
        Column("qualification", kind=ColumnKind.NUMERIC, role=ColumnRole.METADATA),
        Column("hired", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
    ))
    return TabularDataset(schema, {
        "experience": experience,
        "skill_score": skill_score,
        "education": education,
        "university": university,
        "sex": sex,
        "qualification": qualification,
        "hired": hired,
    })


def make_credit(
    n: int = 2000,
    minority_fraction: float = 0.3,
    redlining_strength: float = 0.0,
    income_gap: float = 0.0,
    label_noise: float = 0.05,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """ECOA-style credit population with optional structural bias.

    Parameters
    ----------
    redlining_strength:
        In [0, 1]; correlation between ``zip_region`` and ``race`` — the
        classic residence-as-race proxy the paper cites (Section IV.B).
    income_gap:
        Mean income shortfall (in z-score units) applied to the minority
        group, modelling *structural* inequality: creditworthiness labels
        then disadvantage the group through a facially neutral feature.
    """
    n = check_positive_int(n, "n")
    check_probability(minority_fraction, "minority_fraction")
    check_probability(redlining_strength, "redlining_strength")
    check_probability(label_noise, "label_noise")
    rng = check_random_state(random_state)

    race = np.where(rng.random(n) < minority_fraction, "minority", "majority")
    is_minority = race == "minority"

    creditworthiness = rng.normal(0.0, 1.0, n)
    income_z = creditworthiness * 0.7 + rng.normal(0, 0.7, n)
    income_z = income_z - income_gap * is_minority
    income = np.clip(45000 + 18000 * income_z, 5000, None)
    debt_ratio = np.clip(
        0.35 - 0.1 * creditworthiness + rng.normal(0, 0.08, n), 0.0, 1.0
    )
    history_years = np.clip(
        8 + 3 * creditworthiness + rng.normal(0, 2.0, n), 0, None
    )

    reveal = rng.random(n) < redlining_strength
    random_region = rng.integers(0, 2, n)
    region_code = np.where(reveal, is_minority.astype(int), random_region)
    zip_region = np.where(region_code == 1, "region_a", "region_b")

    logit = 2.2 * creditworthiness + 0.8 * income_z - 1.5 * (debt_ratio - 0.35)
    approved = (rng.random(n) < _sigmoid(logit)).astype(int)
    flip = rng.random(n) < label_noise
    approved = np.where(flip, 1 - approved, approved)

    schema = Schema((
        Column("income", kind=ColumnKind.NUMERIC),
        Column("debt_ratio", kind=ColumnKind.NUMERIC),
        Column("history_years", kind=ColumnKind.NUMERIC),
        Column(
            "zip_region",
            kind=ColumnKind.CATEGORICAL,
            categories=("region_b", "region_a"),
        ),
        Column(
            "race",
            kind=ColumnKind.CATEGORICAL,
            role=ColumnRole.PROTECTED,
            categories=("majority", "minority"),
            statute_tags=("ecoa", "eu_2000_43"),
        ),
        Column(
            "creditworthiness", kind=ColumnKind.NUMERIC, role=ColumnRole.METADATA
        ),
        Column("approved", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
    ))
    return TabularDataset(schema, {
        "income": income,
        "debt_ratio": debt_ratio,
        "history_years": history_years,
        "zip_region": zip_region,
        "race": race,
        "creditworthiness": creditworthiness,
        "approved": approved,
    })


def make_housing(
    n: int = 2000,
    protected_fraction: float = 0.25,
    familial_penalty: float = 0.0,
    label_noise: float = 0.05,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """FHA-style rental application population.

    ``familial_penalty`` injects direct label bias against applicants with
    children (familial status is FHA-protected), holding ability-to-pay
    fixed.
    """
    n = check_positive_int(n, "n")
    check_probability(protected_fraction, "protected_fraction")
    check_probability(label_noise, "label_noise")
    rng = check_random_state(random_state)

    familial = np.where(
        rng.random(n) < protected_fraction, "with_children", "no_children"
    )
    has_children = familial == "with_children"

    ability = rng.normal(0.0, 1.0, n)
    income = np.clip(40000 + 15000 * ability + rng.normal(0, 5000, n), 8000, None)
    rent_ratio = np.clip(
        0.3 - 0.05 * ability + rng.normal(0, 0.05, n), 0.05, 0.95
    )
    references = np.clip(
        np.rint(2 + ability + rng.normal(0, 0.8, n)), 0, 5
    ).astype(float)

    logit = 2.0 * ability - familial_penalty * has_children
    accepted = (rng.random(n) < _sigmoid(logit)).astype(int)
    flip = rng.random(n) < label_noise
    accepted = np.where(flip, 1 - accepted, accepted)

    schema = Schema((
        Column("income", kind=ColumnKind.NUMERIC),
        Column("rent_ratio", kind=ColumnKind.NUMERIC),
        Column("references", kind=ColumnKind.NUMERIC),
        Column(
            "familial_status",
            kind=ColumnKind.CATEGORICAL,
            role=ColumnRole.PROTECTED,
            categories=("no_children", "with_children"),
            statute_tags=("fha",),
        ),
        Column("ability", kind=ColumnKind.NUMERIC, role=ColumnRole.METADATA),
        Column("accepted", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
    ))
    return TabularDataset(schema, {
        "income": income,
        "rent_ratio": rent_ratio,
        "references": references,
        "familial_status": familial,
        "ability": ability,
        "accepted": accepted,
    })


def make_recidivism(
    n: int = 2000,
    minority_fraction: float = 0.4,
    measurement_bias: float = 0.0,
    label_noise: float = 0.05,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """COMPAS-style recidivism population.

    ``measurement_bias`` raises the *recorded* re-arrest probability of the
    minority group over its true re-offence probability — modelling the
    well-known gap between offence and arrest data.  The true propensity
    is retained as metadata so experiments can compare labels against
    ground truth.
    """
    n = check_positive_int(n, "n")
    check_probability(minority_fraction, "minority_fraction")
    check_probability(measurement_bias, "measurement_bias")
    check_probability(label_noise, "label_noise")
    rng = check_random_state(random_state)

    race = np.where(rng.random(n) < minority_fraction, "minority", "majority")
    is_minority = race == "minority"

    propensity = rng.normal(0.0, 1.0, n)
    priors = np.clip(
        np.rint(1.5 + 1.2 * propensity + rng.normal(0, 1.0, n)), 0, None
    ).astype(float)
    age = np.clip(35 - 4 * propensity + rng.normal(0, 7, n), 18, 80)
    charge_severity = np.clip(
        2 + propensity + rng.normal(0, 0.8, n), 0, 6
    )

    true_prob = _sigmoid(1.6 * propensity - 0.4)
    recorded_prob = np.clip(true_prob + measurement_bias * is_minority, 0, 1)
    rearrested = (rng.random(n) < recorded_prob).astype(int)
    flip = rng.random(n) < label_noise
    rearrested = np.where(flip, 1 - rearrested, rearrested)

    schema = Schema((
        Column("priors", kind=ColumnKind.NUMERIC),
        Column("age", kind=ColumnKind.NUMERIC),
        Column("charge_severity", kind=ColumnKind.NUMERIC),
        Column(
            "race",
            kind=ColumnKind.CATEGORICAL,
            role=ColumnRole.PROTECTED,
            categories=("majority", "minority"),
            statute_tags=("title_vi", "eu_2000_43"),
        ),
        Column("propensity", kind=ColumnKind.NUMERIC, role=ColumnRole.METADATA),
        Column("rearrested", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
    ))
    return TabularDataset(schema, {
        "priors": priors,
        "age": age,
        "charge_severity": charge_severity,
        "race": race,
        "propensity": propensity,
        "rearrested": rearrested,
    })


def make_intersectional(
    n: int = 4000,
    subgroup_penalty: float = 0.35,
    base_rate: float = 0.5,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """The Section IV.C construction: fair marginals, unfair intersection.

    Gender and race are independent fair coins.  The positive rate of the
    *crossed* subgroups (non-Caucasian male, Caucasian female) is lowered
    by ``subgroup_penalty`` while the other two subgroups are raised by
    the same amount, so that both marginal positive rates stay at
    ``base_rate`` exactly in expectation:

    ====================  =================
    subgroup              P(promoted)
    ====================  =================
    Caucasian male        base_rate + p
    non-Caucasian male    base_rate - p
    Caucasian female      base_rate - p
    non-Caucasian female  base_rate + p
    ====================  =================

    Auditing either attribute alone finds parity; auditing the
    intersection finds a 2p gap.
    """
    n = check_positive_int(n, "n")
    check_probability(base_rate, "base_rate")
    check_in_range(
        subgroup_penalty, "subgroup_penalty", 0.0, min(base_rate, 1 - base_rate)
    )
    rng = check_random_state(random_state)

    gender = np.where(rng.random(n) < 0.5, "female", "male")
    race = np.where(rng.random(n) < 0.5, "non_caucasian", "caucasian")
    score = rng.normal(0.0, 1.0, n)
    tenure = np.clip(5 + 2 * score + rng.normal(0, 1.5, n), 0, None)

    crossed = (
        ((gender == "male") & (race == "non_caucasian"))
        | ((gender == "female") & (race == "caucasian"))
    )
    prob = np.where(crossed, base_rate - subgroup_penalty, base_rate + subgroup_penalty)
    promoted = (rng.random(n) < prob).astype(int)

    schema = Schema((
        Column("score", kind=ColumnKind.NUMERIC),
        Column("tenure", kind=ColumnKind.NUMERIC),
        Column(
            "gender",
            kind=ColumnKind.CATEGORICAL,
            role=ColumnRole.PROTECTED,
            categories=("male", "female"),
            statute_tags=("title_vii", "eu_2006_54"),
        ),
        Column(
            "race",
            kind=ColumnKind.CATEGORICAL,
            role=ColumnRole.PROTECTED,
            categories=("caucasian", "non_caucasian"),
            statute_tags=("title_vii", "eu_2000_43"),
        ),
        Column("promoted", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
    ))
    return TabularDataset(schema, {
        "score": score,
        "tenure": tenure,
        "gender": gender,
        "race": race,
        "promoted": promoted,
    })
