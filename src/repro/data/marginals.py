"""Population marginals of protected attributes.

Section IV.F of the paper highlights *group-blind* repair methods that
need only population-wide marginals of the protected attribute (widely
available from censuses) rather than per-record protected values.
:class:`PopulationMarginals` is the carrier object for that information:
a distribution over the categories of one protected attribute.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.data.dataset import TabularDataset
from repro.exceptions import ValidationError

__all__ = ["PopulationMarginals"]


class PopulationMarginals:
    """A normalised categorical distribution over protected-group values.

    Parameters
    ----------
    attribute:
        Name of the protected attribute the marginals describe.
    proportions:
        Mapping from group value to population proportion.  Proportions
        must be non-negative and sum to 1 (within tolerance); they are
        re-normalised exactly on construction.
    """

    def __init__(self, attribute: str, proportions: Mapping[object, float]):
        if not attribute:
            raise ValidationError("attribute name must be non-empty")
        if not proportions:
            raise ValidationError("proportions must be non-empty")
        values = np.array([float(v) for v in proportions.values()])
        if np.any(values < 0):
            raise ValidationError("proportions must be non-negative")
        total = float(values.sum())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValidationError(
                f"proportions must sum to 1, got {total:.6f}"
            )
        self.attribute = attribute
        self._proportions = {
            group: float(v) / total for group, v in proportions.items()
        }

    @classmethod
    def from_dataset(
        cls, dataset: TabularDataset, attribute: str
    ) -> "PopulationMarginals":
        """Empirical marginals of ``attribute`` in ``dataset``."""
        values = dataset.column(attribute)
        groups, counts = np.unique(values, return_counts=True)
        proportions = {
            g: c / dataset.n_rows for g, c in zip(groups.tolist(), counts.tolist())
        }
        return cls(attribute, proportions)

    @property
    def groups(self) -> list:
        """Group values, in insertion order."""
        return list(self._proportions)

    def proportion(self, group) -> float:
        """Population proportion of one group."""
        if group not in self._proportions:
            raise ValidationError(
                f"unknown group {group!r}; known: {self.groups}"
            )
        return self._proportions[group]

    def as_dict(self) -> dict:
        """Plain-dict copy of the proportions."""
        return dict(self._proportions)

    def expected_counts(self, n: int) -> dict:
        """Expected group counts in a sample of size ``n``."""
        return {g: p * n for g, p in self._proportions.items()}

    def representation_gap(self, dataset: TabularDataset) -> dict:
        """Observed-minus-expected proportion per group.

        Positive values mean the group is over-represented in the dataset
        relative to the population; negative means under-represented —
        the Section IV.F sampling-bias signal.
        """
        observed = PopulationMarginals.from_dataset(dataset, self.attribute)
        gaps = {}
        for group, expected in self._proportions.items():
            actual = observed._proportions.get(group, 0.0)
            gaps[group] = actual - expected
        return gaps

    def total_variation_gap(self, dataset: TabularDataset) -> float:
        """Total-variation distance between dataset and population marginals."""
        gaps = self.representation_gap(dataset)
        observed = PopulationMarginals.from_dataset(dataset, self.attribute)
        extra = [
            observed._proportions[g]
            for g in observed.groups
            if g not in self._proportions
        ]
        return 0.5 * (sum(abs(v) for v in gaps.values()) + sum(extra))

    def __repr__(self) -> str:
        body = ", ".join(f"{g!r}: {p:.3f}" for g, p in self._proportions.items())
        return f"PopulationMarginals({self.attribute!r}, {{{body}}})"
