"""Dataset and schema file I/O.

Schemas serialise to JSON sidecar files; data serialises to CSV.  The
pair round-trips through :func:`save_dataset` / :func:`load_dataset`,
which is what the command-line interface uses.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.dataset import TabularDataset
from repro.data.schema import Column, Schema
from repro.exceptions import SchemaError

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "save_dataset",
    "load_dataset",
]


def schema_to_dict(schema: Schema) -> dict:
    """JSON-able representation of a schema."""
    return {
        "columns": [
            {
                "name": col.name,
                "kind": col.kind,
                "role": col.role,
                "categories": list(col.categories),
                "statute_tags": list(col.statute_tags),
                "favorable_value": col.favorable_value,
            }
            for col in schema
        ]
    }


def schema_from_dict(payload: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if "columns" not in payload:
        raise SchemaError("schema payload lacks a 'columns' key")
    columns = []
    for entry in payload["columns"]:
        try:
            columns.append(
                Column(
                    name=entry["name"],
                    kind=entry.get("kind", "numeric"),
                    role=entry.get("role", "feature"),
                    categories=tuple(entry.get("categories", ())),
                    statute_tags=tuple(entry.get("statute_tags", ())),
                    favorable_value=entry.get("favorable_value", 1),
                )
            )
        except KeyError as exc:
            raise SchemaError(
                f"schema column entry missing required key: {exc}"
            ) from None
    return Schema(tuple(columns))


def save_dataset(dataset: TabularDataset, data_path, schema_path=None) -> None:
    """Write a dataset to CSV plus a JSON schema sidecar.

    ``schema_path`` defaults to the data path with a ``.schema.json``
    suffix.
    """
    data_path = Path(data_path)
    if schema_path is None:
        schema_path = data_path.with_suffix(data_path.suffix + ".schema.json")
    data_path.write_text(dataset.to_csv())
    Path(schema_path).write_text(
        json.dumps(schema_to_dict(dataset.schema), indent=2)
    )


def load_dataset(data_path, schema_path=None) -> TabularDataset:
    """Load a dataset written by :func:`save_dataset`."""
    data_path = Path(data_path)
    if schema_path is None:
        schema_path = data_path.with_suffix(data_path.suffix + ".schema.json")
    schema = schema_from_dict(json.loads(Path(schema_path).read_text()))
    return TabularDataset.from_csv(schema, data_path.read_text())
