"""Dataset and schema file I/O.

Schemas serialise to JSON sidecar files; data serialises to CSV.  The
pair round-trips through :func:`save_dataset` / :func:`load_dataset`,
which is what the command-line interface uses.

Writes are atomic (write-to-temp + ``os.replace``) so a crash mid-save
never leaves a truncated dataset on disk, and loads convert raw
``json``/``ValueError`` failures into :class:`~repro.exceptions.
DatasetError` carrying the file path and — where locatable — the byte
offset of the corruption.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.data.dataset import TabularDataset
from repro.data.schema import Column, Schema
from repro.exceptions import DatasetError, SchemaError
from repro.robustness.checkpoint import atomic_write_text

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "save_dataset",
    "load_dataset",
]


def schema_to_dict(schema: Schema) -> dict:
    """JSON-able representation of a schema."""
    return {
        "columns": [
            {
                "name": col.name,
                "kind": col.kind,
                "role": col.role,
                "categories": list(col.categories),
                "statute_tags": list(col.statute_tags),
                "favorable_value": col.favorable_value,
            }
            for col in schema
        ]
    }


def schema_from_dict(payload: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if "columns" not in payload:
        raise SchemaError("schema payload lacks a 'columns' key")
    columns = []
    for entry in payload["columns"]:
        try:
            columns.append(
                Column(
                    name=entry["name"],
                    kind=entry.get("kind", "numeric"),
                    role=entry.get("role", "feature"),
                    categories=tuple(entry.get("categories", ())),
                    statute_tags=tuple(entry.get("statute_tags", ())),
                    favorable_value=entry.get("favorable_value", 1),
                )
            )
        except KeyError as exc:
            raise SchemaError(
                f"schema column entry missing required key: {exc}"
            ) from None
    return Schema(tuple(columns))


def save_dataset(dataset: TabularDataset, data_path, schema_path=None) -> None:
    """Write a dataset to CSV plus a JSON schema sidecar.

    ``schema_path`` defaults to the data path with a ``.schema.json``
    suffix.  Both files are written atomically: a crash mid-save leaves
    either the previous version or the new one, never a truncated file.
    """
    data_path = Path(data_path)
    if schema_path is None:
        schema_path = data_path.with_suffix(data_path.suffix + ".schema.json")
    atomic_write_text(data_path, dataset.to_csv())
    atomic_write_text(
        schema_path, json.dumps(schema_to_dict(dataset.schema), indent=2)
    )


def _corrupt_row_offset(text: str, expected_fields: int) -> int | None:
    """Byte offset of the first data row with the wrong field count.

    Locates truncated/corrupt CSV input precisely enough to quote in a
    :class:`DatasetError`; returns None when every row parses (the
    corruption is then at cell level and the cause message says which).
    """
    offset = 0
    for index, line in enumerate(text.splitlines(keepends=True)):
        stripped = line.strip()
        if index > 0 and stripped:
            row = next(csv.reader(io.StringIO(line)))
            if len(row) != expected_fields:
                return offset
        offset += len(line.encode())
    return None


def load_dataset(data_path, schema_path=None) -> TabularDataset:
    """Load a dataset written by :func:`save_dataset`.

    Missing or corrupt input raises :class:`~repro.exceptions.
    DatasetError` naming the offending file — and, for truncated or
    malformed content, the byte offset of the corruption — rather than
    letting a raw ``json``/``ValueError`` escape into the audit.

    A *directory* is treated as a packed columnar dataset and opened as
    a :class:`~repro.data.ooc.MemmapDataset` (``schema_path`` is ignored
    — packed datasets carry their schema in the ``dataset.json``
    sidecar).  Every CLI/service path that loads by file name therefore
    accepts packed datasets transparently.
    """
    data_path = Path(data_path)
    if data_path.is_dir():
        from repro.data.ooc import open_dataset

        return open_dataset(data_path)
    if schema_path is None:
        schema_path = data_path.with_suffix(data_path.suffix + ".schema.json")
    schema_path = Path(schema_path)

    try:
        schema_text = schema_path.read_text()
    except FileNotFoundError:
        raise DatasetError(
            f"schema sidecar {schema_path} not found "
            f"(expected next to {data_path})"
        ) from None
    try:
        payload = json.loads(schema_text)
    except json.JSONDecodeError as exc:
        raise DatasetError(
            f"corrupt schema file {schema_path}: {exc.msg} "
            f"at byte offset {exc.pos}"
        ) from exc
    schema = schema_from_dict(payload)

    try:
        text = data_path.read_text()
    except FileNotFoundError:
        raise DatasetError(f"dataset file {data_path} not found") from None
    try:
        return TabularDataset.from_csv(schema, text)
    except (DatasetError, ValueError) as exc:
        offset = _corrupt_row_offset(text, len(schema.names()))
        where = "" if offset is None else f" at byte offset {offset}"
        raise DatasetError(
            f"corrupt or truncated dataset file {data_path}{where}: {exc}"
        ) from exc
