"""Bias injectors: controlled corruption of otherwise clean datasets.

The paper's Section IV argues that different *mechanisms* of bias (label
bias, under-representation, proxy encoding, measurement bias) demand
different detection and mitigation strategies.  These injectors apply each
mechanism in isolation so experiments can attribute observed disparities
to a single cause.

All injectors are pure functions: they take a :class:`TabularDataset` and
return a new one.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_in_range,
    check_probability,
    check_random_state,
)
from repro.data.dataset import TabularDataset
from repro.data.schema import Column, ColumnKind, ColumnRole
from repro.exceptions import DatasetError, ValidationError

__all__ = [
    "inject_label_bias",
    "inject_representation_bias",
    "inject_proxy_column",
    "inject_measurement_noise",
    "swap_protected_values",
]


def _require_discrete_protected(dataset: TabularDataset, attribute: str) -> None:
    column = dataset.schema[attribute]
    if column.role != ColumnRole.PROTECTED:
        raise DatasetError(f"column {attribute!r} is not a protected attribute")
    if not column.is_discrete:
        raise DatasetError(f"protected column {attribute!r} must be discrete")


def inject_label_bias(
    dataset: TabularDataset,
    attribute: str,
    group,
    flip_positive_to_negative: float = 0.0,
    flip_negative_to_positive: float = 0.0,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """Flip labels of one protected group with given probabilities.

    ``flip_positive_to_negative`` models *historical* bias in which
    deserving members of ``group`` were recorded with the unfavourable
    outcome; ``flip_negative_to_positive`` models favouritism.

    Returns a dataset with the same schema and corrupted labels.
    """
    _require_discrete_protected(dataset, attribute)
    check_probability(flip_positive_to_negative, "flip_positive_to_negative")
    check_probability(flip_negative_to_positive, "flip_negative_to_positive")
    rng = check_random_state(random_state)

    label_name = dataset.schema.label_name
    if label_name is None:
        raise DatasetError("dataset has no label column to bias")
    labels = dataset.column(label_name).astype(int).copy()
    members = dataset.column(attribute) == group
    if not members.any():
        raise DatasetError(f"group {group!r} is empty in column {attribute!r}")

    draw = rng.random(dataset.n_rows)
    demote = members & (labels == 1) & (draw < flip_positive_to_negative)
    promote = members & (labels == 0) & (draw < flip_negative_to_positive)
    labels[demote] = 0
    labels[promote] = 1
    return dataset.with_column(dataset.schema[label_name], labels)


def inject_representation_bias(
    dataset: TabularDataset,
    attribute: str,
    group,
    keep_fraction: float,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """Under-sample one protected group to a fraction of its members.

    Models the Section IV.C observation that small subgroups are often
    under-represented in training data, which both magnifies bias and
    makes audits statistically uncertain.
    """
    _require_discrete_protected(dataset, attribute)
    check_in_range(keep_fraction, "keep_fraction", 0.0, 1.0)
    rng = check_random_state(random_state)

    members = np.flatnonzero(dataset.column(attribute) == group)
    others = np.flatnonzero(dataset.column(attribute) != group)
    if len(members) == 0:
        raise DatasetError(f"group {group!r} is empty in column {attribute!r}")
    n_keep = int(round(keep_fraction * len(members)))
    kept = rng.choice(members, size=n_keep, replace=False) if n_keep else np.array([], dtype=int)
    indices = np.sort(np.concatenate([others, kept.astype(int)]))
    return dataset.take(indices)


def inject_proxy_column(
    dataset: TabularDataset,
    attribute: str,
    proxy_name: str,
    strength: float,
    categories: tuple = ("p0", "p1"),
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """Add a categorical feature correlated with a binary protected group.

    With probability ``strength`` the proxy value deterministically encodes
    group membership; otherwise it is uniform over ``categories``.  This is
    the redundant-encoding mechanism behind proxy discrimination
    (Section IV.B).
    """
    _require_discrete_protected(dataset, attribute)
    check_probability(strength, "strength")
    if len(categories) != 2:
        raise ValidationError("proxy categories must be a 2-tuple")
    if proxy_name in dataset.schema:
        raise DatasetError(f"column {proxy_name!r} already exists")
    rng = check_random_state(random_state)

    values = dataset.column(attribute)
    groups = dataset.schema[attribute].categories
    if len(groups) != 2:
        raise DatasetError(
            f"proxy injection requires a binary protected column, "
            f"{attribute!r} has categories {groups}"
        )
    membership = (values == groups[1]).astype(int)
    reveal = rng.random(dataset.n_rows) < strength
    random_code = rng.integers(0, 2, dataset.n_rows)
    code = np.where(reveal, membership, random_code)
    proxy = np.where(code == 1, categories[1], categories[0])
    column = Column(
        proxy_name,
        kind=ColumnKind.CATEGORICAL,
        role=ColumnRole.FEATURE,
        categories=tuple(categories),
    )
    return dataset.with_column(column, proxy)


def inject_measurement_noise(
    dataset: TabularDataset,
    feature: str,
    attribute: str,
    group,
    noise_std: float,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """Add extra Gaussian noise to one group's numeric feature.

    Models group-dependent measurement quality (e.g. credit histories that
    are thinner and noisier for one population).
    """
    _require_discrete_protected(dataset, attribute)
    if noise_std < 0:
        raise ValidationError(f"noise_std must be non-negative, got {noise_std}")
    column = dataset.schema[feature]
    if column.kind != ColumnKind.NUMERIC:
        raise DatasetError(f"feature {feature!r} must be numeric")
    rng = check_random_state(random_state)

    values = dataset.column(feature).astype(float).copy()
    members = dataset.column(attribute) == group
    values[members] += rng.normal(0.0, noise_std, int(members.sum()))
    return dataset.with_column(column, values)


def swap_protected_values(
    dataset: TabularDataset, attribute: str
) -> TabularDataset:
    """Flip a binary protected column (group a ↔ group b) row-wise.

    A naive "observational" counterfactual used as a baseline against the
    SCM-based counterfactuals of :mod:`repro.causal` — it changes the
    attribute without propagating effects to descendants, which is exactly
    the mistake the counterfactual-fairness literature warns about.
    """
    _require_discrete_protected(dataset, attribute)
    groups = dataset.schema[attribute].categories
    if len(groups) != 2:
        raise DatasetError(
            f"swap requires a binary protected column, got categories {groups}"
        )
    values = dataset.column(attribute)
    swapped = np.where(values == groups[0], groups[1], groups[0])
    return dataset.with_column(dataset.schema[attribute], swapped)
