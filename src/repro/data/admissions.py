"""Multi-group admissions generator: 3-category protected attribute.

Most fairness tutorials stop at binary groups; real statutes protect
multi-valued attributes (race/ethnicity categories, age bands), and the
paper's metrics quantify over *all* group pairs (``∀ a, b ∈ A``).
:func:`make_admissions` produces a university-admissions population with
a three-category ethnicity attribute and a binary sex attribute, with
independently tunable per-group label bias — the workload for testing
metrics, audits, and mitigations beyond the two-group case.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_positive_int,
    check_probability,
    check_random_state,
)
from repro.data.dataset import TabularDataset
from repro.data.schema import Column, ColumnKind, ColumnRole, Schema
from repro.exceptions import ValidationError

__all__ = ["make_admissions", "ETHNICITY_GROUPS"]

ETHNICITY_GROUPS = ("group_x", "group_y", "group_z")


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


def make_admissions(
    n: int = 3000,
    ethnicity_shares: tuple = (0.6, 0.25, 0.15),
    ethnicity_bias: tuple = (0.0, 0.0, 0.0),
    sex_bias: float = 0.0,
    label_noise: float = 0.05,
    random_state: int | np.random.Generator | None = None,
) -> TabularDataset:
    """University-admissions population with two protected attributes.

    Parameters
    ----------
    ethnicity_shares:
        Population shares of the three ethnicity groups (must sum to 1).
    ethnicity_bias:
        Per-group amount subtracted from the admission logit — direct
        label bias, independently tunable per group (e.g. ``(0, 0.8,
        1.6)`` disadvantages group_y mildly and group_z strongly).
    sex_bias:
        Amount subtracted from female applicants' logits.
    """
    n = check_positive_int(n, "n")
    if len(ethnicity_shares) != 3 or len(ethnicity_bias) != 3:
        raise ValidationError(
            "ethnicity_shares and ethnicity_bias must have three entries"
        )
    shares = np.asarray(ethnicity_shares, dtype=float)
    if np.any(shares < 0) or not np.isclose(shares.sum(), 1.0, atol=1e-6):
        raise ValidationError("ethnicity_shares must be non-negative and sum to 1")
    check_probability(label_noise, "label_noise")
    rng = check_random_state(random_state)

    ethnicity_idx = rng.choice(3, size=n, p=shares / shares.sum())
    ethnicity = np.array(ETHNICITY_GROUPS)[ethnicity_idx]
    sex = np.where(rng.random(n) < 0.5, "female", "male")
    is_female = sex == "female"

    aptitude = rng.normal(0.0, 1.0, n)
    gpa = np.clip(3.0 + 0.5 * aptitude + rng.normal(0, 0.25, n), 0.0, 4.0)
    test_score = np.clip(
        1000 + 150 * aptitude + rng.normal(0, 80, n), 400, 1600
    )
    essays = np.clip(
        np.rint(3 + aptitude + rng.normal(0, 0.8, n)), 1, 6
    ).astype(float)

    bias_per_row = np.asarray(ethnicity_bias, dtype=float)[ethnicity_idx]
    logit = 2.0 * aptitude - bias_per_row - sex_bias * is_female
    admitted = (rng.random(n) < _sigmoid(logit)).astype(int)
    flip = rng.random(n) < label_noise
    admitted = np.where(flip, 1 - admitted, admitted)

    schema = Schema((
        Column("gpa", kind=ColumnKind.NUMERIC),
        Column("test_score", kind=ColumnKind.NUMERIC),
        Column("essays", kind=ColumnKind.NUMERIC),
        Column(
            "ethnicity",
            kind=ColumnKind.CATEGORICAL,
            role=ColumnRole.PROTECTED,
            categories=ETHNICITY_GROUPS,
            statute_tags=("title_vi", "eu_2000_43"),
        ),
        Column(
            "sex",
            kind=ColumnKind.CATEGORICAL,
            role=ColumnRole.PROTECTED,
            categories=("male", "female"),
            statute_tags=("title_vii", "eu_2006_54"),
        ),
        Column("aptitude", kind=ColumnKind.NUMERIC, role=ColumnRole.METADATA),
        Column("admitted", kind=ColumnKind.BINARY, role=ColumnRole.LABEL),
    ))
    return TabularDataset(schema, {
        "gpa": gpa,
        "test_score": test_score,
        "essays": essays,
        "ethnicity": ethnicity,
        "sex": sex,
        "aptitude": aptitude,
        "admitted": admitted,
    })
