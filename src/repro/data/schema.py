"""Typed column schemas for tabular fairness datasets.

A :class:`Schema` records, for every column, its kind (numeric,
categorical, or binary) and its *role* in a fairness analysis:

* ``feature`` — an ordinary model input;
* ``protected`` — a legally protected attribute (sex, race, age band, ...);
* ``label`` — the ground-truth outcome ``Y``;
* ``prediction`` — a model output ``R`` stored alongside the data;
* ``metadata`` — carried along but never fed to a model.

Fairness law distinguishes attributes by the statute that protects them;
the schema therefore lets a protected column carry a free-form
``statute_tags`` tuple (e.g. ``("title_vii", "eu_2000_78")``) which the
legal layer in :mod:`repro.core.legal` resolves against its catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import SchemaError

__all__ = ["ColumnKind", "ColumnRole", "Column", "Schema"]


class ColumnKind:
    """Enumeration of supported column kinds (plain strings)."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    BINARY = "binary"

    ALL = (NUMERIC, CATEGORICAL, BINARY)


class ColumnRole:
    """Enumeration of column roles in a fairness analysis."""

    FEATURE = "feature"
    PROTECTED = "protected"
    LABEL = "label"
    PREDICTION = "prediction"
    METADATA = "metadata"

    ALL = (FEATURE, PROTECTED, LABEL, PREDICTION, METADATA)


@dataclass(frozen=True)
class Column:
    """Description of a single dataset column.

    Parameters
    ----------
    name:
        Column name; must be unique within a schema.
    kind:
        One of :class:`ColumnKind` — numeric, categorical, or binary.
    role:
        One of :class:`ColumnRole`.
    categories:
        For categorical/binary columns, the ordered tuple of admissible
        values.  Binary columns default to ``(0, 1)``.
    statute_tags:
        For protected columns, identifiers of the statutes under which the
        attribute is protected (resolved by :mod:`repro.core.legal`).
    favorable_value:
        For label/prediction columns, the value regarded as the positive
        ("favourable") outcome; defaults to ``1``.
    """

    name: str
    kind: str = ColumnKind.NUMERIC
    role: str = ColumnRole.FEATURE
    categories: tuple = ()
    statute_tags: tuple = ()
    favorable_value: object = 1

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"column name must be a non-empty string, got {self.name!r}")
        if self.kind not in ColumnKind.ALL:
            raise SchemaError(
                f"column {self.name!r}: kind must be one of {ColumnKind.ALL}, got {self.kind!r}"
            )
        if self.role not in ColumnRole.ALL:
            raise SchemaError(
                f"column {self.name!r}: role must be one of {ColumnRole.ALL}, got {self.role!r}"
            )
        if self.kind == ColumnKind.BINARY and not self.categories:
            object.__setattr__(self, "categories", (0, 1))
        if self.kind == ColumnKind.CATEGORICAL and not self.categories:
            raise SchemaError(
                f"categorical column {self.name!r} must declare its categories"
            )
        if self.categories and len(set(self.categories)) != len(self.categories):
            raise SchemaError(
                f"column {self.name!r} has duplicate categories: {self.categories}"
            )

    @property
    def is_discrete(self) -> bool:
        """True for categorical and binary columns."""
        return self.kind in (ColumnKind.CATEGORICAL, ColumnKind.BINARY)

    def with_role(self, role: str) -> "Column":
        """Return a copy of this column with a different role."""
        return replace(self, role=role)


@dataclass(frozen=True)
class Schema:
    """An ordered, validated collection of :class:`Column` objects."""

    columns: tuple = field(default_factory=tuple)

    def __post_init__(self):
        cols = tuple(self.columns)
        object.__setattr__(self, "columns", cols)
        names = [c.name for c in cols]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")
        labels = [c for c in cols if c.role == ColumnRole.LABEL]
        if len(labels) > 1:
            raise SchemaError(
                f"at most one label column allowed, got {[c.name for c in labels]}"
            )

    # -- lookup ----------------------------------------------------------

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def __getitem__(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(
            f"unknown column {name!r}; available: {self.names()}"
        )

    def names(self) -> list[str]:
        """Names of all columns, in order."""
        return [c.name for c in self.columns]

    def by_role(self, role: str) -> list[Column]:
        """All columns with the given role, in order."""
        return [c for c in self.columns if c.role == role]

    @property
    def feature_names(self) -> list[str]:
        return [c.name for c in self.by_role(ColumnRole.FEATURE)]

    @property
    def protected_names(self) -> list[str]:
        return [c.name for c in self.by_role(ColumnRole.PROTECTED)]

    @property
    def label_name(self) -> str | None:
        labels = self.by_role(ColumnRole.LABEL)
        return labels[0].name if labels else None

    @property
    def prediction_names(self) -> list[str]:
        return [c.name for c in self.by_role(ColumnRole.PREDICTION)]

    # -- transformation --------------------------------------------------

    def add(self, column: Column) -> "Schema":
        """Return a new schema with ``column`` appended."""
        return Schema(self.columns + (column,))

    def drop(self, name: str) -> "Schema":
        """Return a new schema without the named column."""
        self[name]  # raises SchemaError when absent
        return Schema(tuple(c for c in self.columns if c.name != name))

    def replace_column(self, column: Column) -> "Schema":
        """Return a new schema with the same-named column replaced."""
        self[column.name]
        return Schema(
            tuple(column if c.name == column.name else c for c in self.columns)
        )

    def select(self, names: list[str]) -> "Schema":
        """Return a new schema restricted to ``names`` (in the given order)."""
        return Schema(tuple(self[name] for name in names))
