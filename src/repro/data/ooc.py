"""Out-of-core columnar datasets: packed ``.npy`` columns + memmap access.

The paper's legal argument (Section IV) only carries weight when audits
cover the *whole* affected population, which routinely exceeds RAM.
This module adds a packed on-disk dataset format and a
:class:`MemmapDataset` that satisfies the :class:`~repro.data.dataset.
TabularDataset` interface used by the audit paths without materialising
columns.

Format (``repro.packed`` version 1) — a directory containing:

``dataset.json``
    Sidecar with the schema (roles, categories, statute tags), row
    count, per-column file layout, pre-encoded category tables for
    discrete columns, and a sha256 content fingerprint **identical** to
    :func:`repro.observability.provenance.dataset_fingerprint` of the
    equivalent in-memory dataset — so checkpoints, provenance records,
    and content-addressed service cache keys agree across
    representations.

``NNN-<column>.npy``
    One plain, memmap-openable ``.npy`` file per column, written with a
    fixed-size rewritable header so :class:`PackedWriter` can append
    chunks without knowing the final row count up front.

``NNN-<column>.codes.npy``
    For discrete columns, the int64 code array produced by
    :func:`repro.kernel.codes.encode` (categories repr-sorted), written
    at pack time so audits never re-encode a packed column.

Bounded-memory readers deliberately use :func:`numpy.fromfile` (plain
buffered reads) rather than slicing memmaps: pages read through a
memmap stay resident in the process and are charged to ``ru_maxrss``,
while buffered reads only populate the kernel page cache.  Memmaps are
still used where the caller wants a lazily-touched whole-column array
(``column()``), which is what the ``TabularDataset`` interface promises.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

import numpy as np

from repro.data.dataset import TabularDataset, _as_column_array
from repro.data.schema import Schema
from repro.exceptions import DatasetError, SchemaError

__all__ = [
    "PACK_FORMAT",
    "PACK_VERSION",
    "PACK_SIDECAR",
    "DEFAULT_CHUNK_ROWS",
    "PackedWriter",
    "pack_dataset",
    "open_dataset",
    "is_packed",
    "packed_fingerprint",
    "MemmapDataset",
    "stream_chunks",
]

PACK_FORMAT = "repro.packed"
PACK_VERSION = 1
PACK_SIDECAR = "dataset.json"
#: default rows per I/O chunk (1 MiB of int64 per column)
DEFAULT_CHUNK_ROWS = 1 << 20

_MAGIC = b"\x93NUMPY"
#: fixed header size: large enough for any 1-D little-endian descr and a
#: 20-digit row count, small enough to keep data page-aligned at 128.
_HEADER_BYTES = 128


# -- low-level .npy plumbing -------------------------------------------------


def _npy_header(descr: str, n_rows: int) -> bytes:
    """A fixed-size (``_HEADER_BYTES``) v1.0 ``.npy`` header.

    Space-padded and newline-terminated per the format spec; writing it
    at a fixed size lets :class:`PackedWriter` rewrite the shape in
    place once the final row count is known.
    """
    header = "{'descr': %r, 'fortran_order': False, 'shape': (%d,), }" % (
        descr,
        n_rows,
    )
    body = header.encode("latin1")
    room = _HEADER_BYTES - len(_MAGIC) - 2 - 2 - 1  # magic, version, hlen, \n
    if len(body) > room:
        raise DatasetError(
            f"dtype descr {descr!r} does not fit the fixed {_HEADER_BYTES}-byte "
            "npy header"
        )
    body = body + b" " * (room - len(body)) + b"\n"
    return _MAGIC + bytes((1, 0)) + len(body).to_bytes(2, "little") + body


def _read_npy_layout(path: Path) -> tuple[str, tuple, int]:
    """``(descr, shape, data_offset)`` from a ``.npy`` header.

    Any structural problem — missing file, wrong magic, garbled header
    dict — becomes a :exc:`DatasetError` naming the file.
    """
    try:
        with open(path, "rb") as handle:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                raise DatasetError(
                    f"unsupported .npy format version {version} in {path}"
                )
            offset = handle.tell()
    except FileNotFoundError:
        raise DatasetError(f"packed column file is missing: {path}") from None
    except DatasetError:
        raise
    except (ValueError, OSError, KeyError) as exc:
        raise DatasetError(f"garbled .npy header in {path}: {exc}") from exc
    if fortran:
        raise DatasetError(f"packed column file {path} is fortran-ordered")
    return np.lib.format.dtype_to_descr(dtype), shape, offset


class _NpyReader:
    """Bounded-memory row-range reader over one packed ``.npy`` file."""

    __slots__ = ("path", "dtype", "offset", "n_rows")

    def __init__(self, path: Path, descr: str, offset: int, n_rows: int):
        self.path = Path(path)
        self.dtype = np.dtype(descr)
        self.offset = offset
        self.n_rows = n_rows

    def read(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``[lo, hi)`` as a fresh in-memory array (one buffered read)."""
        count = hi - lo
        arr = np.fromfile(
            self.path,
            dtype=self.dtype,
            count=count,
            offset=self.offset + lo * self.dtype.itemsize,
        )
        if len(arr) != count:
            raise DatasetError(
                f"short read from {self.path}: wanted rows [{lo}, {hi}), "
                f"got {len(arr)}"
            )
        return arr

    def manifest(self) -> dict:
        """Pickle-cheap description a worker can re-open by path."""
        return {
            "kind": "npy",
            "path": str(self.path),
            "dtype": np.lib.format.dtype_to_descr(self.dtype),
            "offset": self.offset,
            "n_rows": self.n_rows,
        }


def _iter_file_chunks(reader: _NpyReader, chunk_rows: int):
    for lo in range(0, reader.n_rows, chunk_rows):
        yield reader.read(lo, min(lo + chunk_rows, reader.n_rows))


def _layout_digest(schema: Schema, n_rows: int) -> "hashlib._Hash":
    """The digest seeded exactly like ``dataset_fingerprint``'s layout."""
    digest = hashlib.sha256()
    layout = {
        "n_rows": n_rows,
        "columns": [[col.name, str(col.kind), str(col.role)] for col in schema],
    }
    digest.update(json.dumps(layout, sort_keys=True).encode())
    return digest


def _safe_stem(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", name)


# -- writer ------------------------------------------------------------------


class PackedWriter:
    """Chunked writer for the packed columnar format.

    Append any number of row chunks (mappings or datasets); ``close()``
    rewrites the fixed headers with the final row count, encodes the
    discrete columns' code tables, computes the content fingerprint in
    one sequential pass, and atomically writes the sidecar.  A directory
    without its ``dataset.json`` is therefore never a valid packed
    dataset — a crash mid-pack cannot leave a readable-but-wrong one.

    Note on chunked string columns: the first chunk fixes each column's
    dtype (later chunks must cast safely), so a stream whose widest
    string appears late must pre-widen its arrays.  :func:`pack_dataset`
    slices a validated dataset and is immune.
    """

    def __init__(self, path, schema: Schema, *, chunk_rows: int = DEFAULT_CHUNK_ROWS):
        if not isinstance(schema, Schema):
            raise DatasetError(
                f"schema must be a Schema, got {type(schema).__name__}"
            )
        self.path = Path(path)
        self.schema = schema
        self.chunk_rows = int(chunk_rows)
        if self.chunk_rows <= 0:
            raise DatasetError(f"chunk_rows must be positive, got {chunk_rows}")
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / PACK_SIDECAR).exists():
            raise DatasetError(
                f"{self.path} already holds a packed dataset; pack elsewhere "
                "or remove it first"
            )
        self._handles: dict = {}
        self._meta: dict[str, dict] = {}
        self._uniques: dict[str, set] = {}
        self._n_rows = 0
        self._closed = False
        for position, col in enumerate(schema):
            file_name = f"{position:03d}-{_safe_stem(col.name)}.npy"
            handle = open(self.path / file_name, "wb")
            handle.write(b"\x00" * _HEADER_BYTES)  # rewritten on close
            self._handles[col.name] = handle
            self._meta[col.name] = {"file": file_name, "dtype": None}
            if col.is_discrete:
                self._uniques[col.name] = set()

    # -- context manager: close on success, abort on error -----------------

    def __enter__(self) -> "PackedWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    def append(self, data) -> int:
        """Validate and write one chunk of rows; returns total rows so far."""
        if self._closed:
            raise DatasetError(f"PackedWriter for {self.path} is already closed")
        if isinstance(data, TabularDataset):
            data = {col.name: data.column(col.name) for col in self.schema}
        arrays: dict[str, np.ndarray] = {}
        length = None
        for col in self.schema:
            if col.name not in data:
                raise DatasetError(
                    f"chunk is missing column {col.name!r} declared in schema"
                )
            arr = _as_column_array(data[col.name], col)
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise DatasetError(
                    f"chunk columns have mismatched lengths: {col.name!r} has "
                    f"{len(arr)}, expected {length}"
                )
            arrays[col.name] = arr
        for col in self.schema:
            arr = arrays[col.name]
            meta = self._meta[col.name]
            if meta["dtype"] is None:
                if arr.dtype.hasobject:
                    raise DatasetError(
                        f"column {col.name!r} has object dtype "
                        f"{arr.dtype}; not packable"
                    )
                if col.is_discrete and arr.dtype.kind == "S":
                    raise DatasetError(
                        f"column {col.name!r} has bytes categories; pack "
                        "expects str or numeric categories"
                    )
                meta["dtype"] = arr.dtype
            elif arr.dtype != meta["dtype"]:
                if not np.can_cast(arr.dtype, meta["dtype"], casting="safe"):
                    raise DatasetError(
                        f"chunk dtype {arr.dtype} for column {col.name!r} "
                        f"cannot safely cast to the established {meta['dtype']}"
                    )
                arr = arr.astype(meta["dtype"])
            if col.is_discrete:
                self._uniques[col.name].update(np.unique(arr).tolist())
            self._handles[col.name].write(np.ascontiguousarray(arr).tobytes())
        self._n_rows += int(length)
        return self._n_rows

    def abort(self) -> None:
        """Discard the partial pack (files removed, no sidecar written)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            handle.close()
        for meta in self._meta.values():
            (self.path / meta["file"]).unlink(missing_ok=True)

    def close(self) -> Path:
        """Finalise headers, code tables, fingerprint, and sidecar."""
        if self._closed:
            raise DatasetError(f"PackedWriter for {self.path} is already closed")
        if self._n_rows == 0:
            self.abort()
            raise DatasetError(
                f"cannot finalise an empty packed dataset at {self.path}"
            )
        self._closed = True
        for col in self.schema:
            meta = self._meta[col.name]
            handle = self._handles[col.name]
            descr = np.lib.format.dtype_to_descr(meta["dtype"])
            meta["descr"] = descr
            handle.seek(0)
            handle.write(_npy_header(descr, self._n_rows))
            handle.flush()
            handle.close()

        # fingerprint: ONE running digest over layout + columns in schema
        # order, exactly mirroring provenance.dataset_fingerprint.
        digest = _layout_digest(self.schema, self._n_rows)
        column_entries = []
        for col in self.schema:
            meta = self._meta[col.name]
            reader = _NpyReader(
                self.path / meta["file"], meta["descr"], _HEADER_BYTES, self._n_rows
            )
            for chunk in _iter_file_chunks(reader, self.chunk_rows):
                digest.update(np.ascontiguousarray(chunk).tobytes())
            codes_entry = None
            if col.is_discrete:
                codes_entry = self._write_codes(col.name, reader)
            column_entries.append(
                {
                    "name": col.name,
                    "file": meta["file"],
                    "dtype": meta["descr"],
                    "codes": codes_entry,
                }
            )
        fingerprint = digest.hexdigest()

        from repro.data.io import schema_to_dict
        from repro.robustness.checkpoint import atomic_write_text

        sidecar = {
            "format": PACK_FORMAT,
            "version": PACK_VERSION,
            "n_rows": self._n_rows,
            "fingerprint": fingerprint,
            "schema": schema_to_dict(self.schema),
            "columns": column_entries,
        }
        atomic_write_text(
            self.path / PACK_SIDECAR, json.dumps(sidecar, indent=2, sort_keys=True)
        )
        return self.path

    def _write_codes(self, name: str, value_reader: _NpyReader) -> dict:
        """Encode one discrete column to codes, chunk by chunk.

        Categories are the distinct values present, repr-sorted —
        byte-identical to what :func:`repro.kernel.codes.encode` derives
        from the whole column at once.
        """
        categories = sorted(self._uniques[name], key=repr)
        index = {category: code for code, category in enumerate(categories)}
        counts = np.zeros(len(categories), dtype=np.int64)
        codes_file = self._meta[name]["file"].replace(".npy", ".codes.npy")
        with open(self.path / codes_file, "wb") as handle:
            handle.write(_npy_header("<i8", self._n_rows))
            for chunk in _iter_file_chunks(value_reader, self.chunk_rows):
                uniques, inverse = np.unique(chunk, return_inverse=True)
                remap = np.array(
                    [index[u] for u in uniques.tolist()], dtype=np.int64
                )
                codes = remap[inverse] if len(uniques) else np.zeros(0, np.int64)
                counts += np.bincount(codes, minlength=len(categories))
                handle.write(np.ascontiguousarray(codes).tobytes())
        return {
            "file": codes_file,
            "categories": categories,
            "counts": counts.tolist(),
        }


def pack_dataset(
    dataset: TabularDataset, path, *, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Path:
    """Pack an in-memory dataset into the columnar format at ``path``.

    The resulting directory opens as a :class:`MemmapDataset` whose
    fingerprint equals ``dataset.fingerprint()``.
    """
    with PackedWriter(path, dataset.schema, chunk_rows=chunk_rows) as writer:
        for lo in range(0, dataset.n_rows, chunk_rows):
            hi = min(lo + chunk_rows, dataset.n_rows)
            writer.append(
                {
                    col.name: dataset.column(col.name)[lo:hi]
                    for col in dataset.schema
                }
            )
    return Path(path)


# -- opening -----------------------------------------------------------------


def is_packed(path) -> bool:
    """True when ``path`` is a packed-dataset directory."""
    path = Path(path)
    return path.is_dir() and (path / PACK_SIDECAR).is_file()


def _load_sidecar(path: Path) -> dict:
    sidecar = path / PACK_SIDECAR
    try:
        text = sidecar.read_text()
    except FileNotFoundError:
        raise DatasetError(
            f"{path} is not a packed dataset: missing {PACK_SIDECAR}"
        ) from None
    except OSError as exc:
        raise DatasetError(f"cannot read packed sidecar {sidecar}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DatasetError(
            f"corrupt packed sidecar {sidecar}: {exc.msg} at byte offset {exc.pos}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != PACK_FORMAT:
        raise DatasetError(
            f"{sidecar} is not a {PACK_FORMAT} sidecar "
            f"(format={payload.get('format')!r})"
            if isinstance(payload, dict)
            else f"{sidecar} does not hold a JSON object"
        )
    if payload.get("version") != PACK_VERSION:
        raise DatasetError(
            f"{sidecar} has unsupported pack version {payload.get('version')!r}; "
            f"this build reads version {PACK_VERSION}"
        )
    for key in ("n_rows", "fingerprint", "schema", "columns"):
        if key not in payload:
            raise DatasetError(f"packed sidecar {sidecar} lacks the {key!r} key")
    return payload


def packed_fingerprint(path) -> str:
    """The content fingerprint recorded in a packed dataset's sidecar.

    Reads only the sidecar — this is what content-addressed cache keys
    (service job store) use, so submitting a job against a huge packed
    dataset stays O(1).
    """
    payload = _load_sidecar(Path(path))
    fingerprint = payload["fingerprint"]
    if not isinstance(fingerprint, str) or not fingerprint:
        raise DatasetError(
            f"packed sidecar {Path(path) / PACK_SIDECAR} holds an invalid "
            f"fingerprint: {fingerprint!r}"
        )
    return fingerprint


def open_dataset(
    path, *, verify: bool = False, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> "MemmapDataset":
    """Open a packed dataset directory as a :class:`MemmapDataset`.

    Structural integrity is always checked — every column file must
    exist, parse, match the sidecar's dtype, declare exactly ``n_rows``,
    and be byte-complete on disk (truncation is caught from file sizes
    without reading data).  ``verify=True`` additionally re-hashes the
    column bytes chunk-wise and compares against the recorded
    fingerprint, catching silent post-pack edits.
    """
    path = Path(path)
    payload = _load_sidecar(path)
    try:
        from repro.data.io import schema_from_dict

        schema = schema_from_dict(payload["schema"])
    except SchemaError as exc:
        raise DatasetError(f"packed sidecar {path / PACK_SIDECAR}: {exc}") from exc
    n_rows = int(payload["n_rows"])
    if n_rows <= 0:
        raise DatasetError(
            f"packed sidecar {path / PACK_SIDECAR} declares n_rows={n_rows}"
        )
    entries = payload["columns"]
    names = [entry.get("name") for entry in entries]
    if names != schema.names():
        raise DatasetError(
            f"packed sidecar {path / PACK_SIDECAR} column list {names} does "
            f"not match its schema {schema.names()}"
        )
    meta: dict[str, dict] = {}
    for entry in entries:
        file_path = path / entry["file"]
        descr, shape, offset = _read_npy_layout(file_path)
        if descr != entry["dtype"]:
            raise DatasetError(
                f"column file {file_path} holds dtype {descr}, sidecar "
                f"declares {entry['dtype']}"
            )
        _check_length(file_path, shape, offset, descr, n_rows)
        codes_meta = None
        if entry.get("codes") is not None:
            codes = entry["codes"]
            codes_path = path / codes["file"]
            codes_descr, codes_shape, codes_offset = _read_npy_layout(codes_path)
            if np.dtype(codes_descr) != np.dtype(np.int64):
                raise DatasetError(
                    f"codes file {codes_path} holds dtype {codes_descr}, "
                    "expected int64"
                )
            _check_length(codes_path, codes_shape, codes_offset, codes_descr, n_rows)
            codes_meta = {
                "path": codes_path,
                "offset": codes_offset,
                "categories": list(codes["categories"]),
                "counts": list(codes["counts"]),
            }
        meta[entry["name"]] = {
            "path": file_path,
            "dtype": descr,
            "offset": offset,
            "codes": codes_meta,
        }
    dataset = MemmapDataset(
        path, schema, n_rows, meta, payload["fingerprint"], chunk_rows
    )
    if verify:
        digest = _layout_digest(schema, n_rows)
        for col in schema:
            for chunk in _iter_file_chunks(dataset.open_column(col.name), chunk_rows):
                digest.update(np.ascontiguousarray(chunk).tobytes())
        actual = digest.hexdigest()
        if actual != payload["fingerprint"]:
            raise DatasetError(
                f"stale fingerprint for packed dataset {path}: sidecar records "
                f"{payload['fingerprint'][:12]}…, column bytes hash to "
                f"{actual[:12]}… (files changed after packing)"
            )
    return dataset


def _check_length(
    file_path: Path, shape: tuple, offset: int, descr: str, n_rows: int
) -> None:
    if shape != (n_rows,):
        raise DatasetError(
            f"column file {file_path} declares shape {shape}, sidecar "
            f"declares n_rows={n_rows}"
        )
    expected = offset + n_rows * np.dtype(descr).itemsize
    actual = file_path.stat().st_size
    if actual != expected:
        kind = "truncated" if actual < expected else "overlong"
        raise DatasetError(
            f"{kind} column file {file_path}: {actual} bytes on disk, header "
            f"declares {expected}"
        )


# -- the dataset -------------------------------------------------------------


class _LazyColumns(dict):
    """Column dict that memmaps files on first access.

    Iteration-style accessors force-load everything so generic
    ``TabularDataset`` methods (``to_dict``, ``concat``, …) see the full
    column set; loading is an ``mmap`` call, not a read.
    """

    def __init__(self, names: list[str], loader):
        super().__init__()
        self._names = names
        self._loader = loader

    def __missing__(self, name: str) -> np.ndarray:
        if name not in self._names:
            raise KeyError(name)
        array = self._loader(name)
        self[name] = array
        return array

    def _ensure_all(self) -> None:
        for name in self._names:
            self[name]

    def __contains__(self, name) -> bool:
        return name in self._names

    def __iter__(self):
        self._ensure_all()
        return super().__iter__()

    def __len__(self) -> int:
        return len(self._names)

    def keys(self):
        self._ensure_all()
        return super().keys()

    def values(self):
        self._ensure_all()
        return super().values()

    def items(self):
        self._ensure_all()
        return super().items()


class MemmapDataset(TabularDataset):
    """A packed dataset opened without materialising any column.

    Satisfies the ``TabularDataset`` interface used by the audit paths:
    ``column()`` returns a read-only memmap, ``codes()`` serves the
    pre-encoded pack-time table, ``take()`` of a contiguous range is a
    bounded buffered read, and the extra out-of-core hooks
    (``open_column``, ``codes_reader``, ``subset_counts``,
    ``present_categories``, ``reader_for``) let the subgroup auditor and
    enumerator run whole scans without ever holding a full column.
    """

    def __init__(
        self,
        path: Path,
        schema: Schema,
        n_rows: int,
        meta: dict,
        fingerprint: str,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        self._path = Path(path)
        self._schema = schema
        self._n_rows = int(n_rows)
        self._meta = meta
        self._columns = _LazyColumns(schema.names(), self._load_column)
        self._packed_tables: dict = {}
        self.chunk_rows = int(chunk_rows)
        # pre-seed the provenance cache: dataset_fingerprint() and
        # fingerprint() read this attribute instead of hashing 100M rows.
        self._repro_fingerprint = fingerprint

    # -- loading ------------------------------------------------------------

    @property
    def path(self) -> Path:
        """The packed directory this dataset reads from."""
        return self._path

    def _require(self, name: str) -> dict:
        if name not in self._schema:
            raise SchemaError(
                f"unknown column {name!r}; available: {self._schema.names()}"
            )
        return self._meta[name]

    def _load_column(self, name: str) -> np.ndarray:
        meta = self._require(name)
        try:
            return np.load(meta["path"], mmap_mode="r")
        except (ValueError, OSError) as exc:
            raise DatasetError(
                f"cannot memmap packed column file {meta['path']}: {exc}"
            ) from exc

    def column(self, name: str) -> np.ndarray:
        if name not in self._schema:
            raise SchemaError(
                f"unknown column {name!r}; available: {self._schema.names()}"
            )
        return self._columns[name]

    # -- out-of-core hooks ---------------------------------------------------

    def open_column(self, name: str) -> _NpyReader:
        """A bounded-memory row-range reader over one column file."""
        meta = self._require(name)
        return _NpyReader(meta["path"], meta["dtype"], meta["offset"], self._n_rows)

    def codes_reader(self, name: str) -> _NpyReader:
        """A bounded-memory reader over a discrete column's code file."""
        meta = self._require(name)
        if meta["codes"] is None:
            raise DatasetError(
                f"column {name!r} in {self._path} has no packed code table "
                "(not a discrete column)"
            )
        return _NpyReader(meta["codes"]["path"], "<i8", meta["codes"]["offset"], self._n_rows)

    def reader_for(self, array: np.ndarray) -> _NpyReader | None:
        """The reader behind a column array previously served by ``column()``.

        Lets callers handed a whole-column memmap (e.g. ``labels()``)
        recover the bounded-read path instead of touching the mapping.
        """
        for name, loaded in list(dict.items(self._columns)):
            if loaded is array:
                return self.open_column(name)
        return None

    def present_categories(self, name: str) -> list:
        """Declared categories actually present, in declared order.

        Served from the sidecar's pack-time counts — the enumeration
        layer uses this instead of scanning the column.
        """
        meta = self._require(name)
        if meta["codes"] is None:
            raise DatasetError(
                f"column {name!r} in {self._path} is not discrete"
            )
        present = set(meta["codes"]["categories"])
        declared = self._schema[name].categories
        return [c for c in declared if c in present]

    def codes(self, name: str, categories: list | None = None):
        """The kernel code table, served from the pack-time encoding.

        With the default category order this is zero-cost: categories
        come from the sidecar and the code array is the memmapped
        ``.codes.npy``.  Explicit ``categories`` fall back to the base
        encode-on-demand path.
        """
        from repro.observability.metrics import get_metrics

        meta = self._require(name)
        if categories is not None or meta["codes"] is None:
            return super().codes(name, categories)
        table = self._packed_tables.get(name)
        if table is not None:
            get_metrics().counter("kernel.cache_hit").inc()
            return table
        from repro.kernel.codes import CodeTable

        cats = list(meta["codes"]["categories"])
        try:
            cats_array = np.asarray(cats, dtype=np.dtype(meta["dtype"]))
        except (TypeError, ValueError):
            cats_array = np.asarray(cats, dtype=object)
        codes_array = np.lib.format.open_memmap(
            meta["codes"]["path"], mode="r"
        )
        table = CodeTable(cats, cats_array, codes_array)
        self._packed_tables[name] = table
        return table

    def subset_counts(
        self, attributes: tuple, predictions=None
    ) -> np.ndarray:
        """Joint category-cell counts over an attribute subset, chunked.

        Row-major combined codes (matching
        :func:`repro.kernel.contingency.combined_codes`) accumulated one
        chunk at a time.  With ``predictions`` (an ``_NpyReader`` or an
        array) the result has shape ``(n_cells, 2)`` like
        :func:`joint_counts`; without, shape ``(n_cells,)``.
        """
        tables = [self.codes(name) for name in attributes]
        readers = [self.codes_reader(name) for name in attributes]
        n_cells = 1
        for table in tables:
            n_cells *= table.n_categories
        with_pred = predictions is not None
        totals = np.zeros(n_cells * (2 if with_pred else 1), dtype=np.int64)
        for lo in range(0, self._n_rows, self.chunk_rows):
            hi = min(lo + self.chunk_rows, self._n_rows)
            combined = readers[0].read(lo, hi)
            for reader, table in zip(readers[1:], tables[1:]):
                combined *= table.n_categories
                combined += reader.read(lo, hi)
            if with_pred:
                if isinstance(predictions, _NpyReader):
                    chunk = predictions.read(lo, hi)
                else:
                    chunk = np.asarray(predictions[lo:hi], dtype=np.int64)
                combined *= 2
                combined += chunk
            totals += np.bincount(combined, minlength=len(totals))
        return totals.reshape(n_cells, 2) if with_pred else totals

    # -- row selection -------------------------------------------------------

    def _slice(self, lo: int, hi: int) -> TabularDataset:
        """Rows ``[lo, hi)`` as an in-memory dataset via buffered reads."""
        columns: dict[str, np.ndarray] = {}
        for col in self._schema:
            arr = self.open_column(col.name).read(lo, hi)
            arr.setflags(write=False)
            columns[col.name] = arr
        return TabularDataset._trusted(self._schema, columns, hi - lo)

    def take(self, indices) -> TabularDataset:
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if len(indices) != self._n_rows:
                raise DatasetError(
                    f"boolean mask length {len(indices)} != n_rows {self._n_rows}"
                )
            indices = np.flatnonzero(indices)
        if indices.ndim != 1:
            raise DatasetError(
                f"take indices must be 1-dimensional, got shape {indices.shape}"
            )
        if len(indices):
            lo = int(indices[0])
            hi = lo + len(indices)
            if (
                lo >= 0
                and hi <= self._n_rows
                and int(indices[-1]) == hi - 1
                and (len(indices) == 1 or bool(np.all(np.diff(indices) == 1)))
            ):
                return self._slice(lo, hi)
        columns: dict[str, np.ndarray] = {}
        for col in self._schema:
            picked = self.column(col.name)[indices]
            picked.setflags(write=False)
            columns[col.name] = picked
        return TabularDataset._trusted(self._schema, columns, len(indices))

    def iter_chunks(self, chunk_rows: int | None = None):
        """Yield contiguous in-memory row chunks of the packed dataset."""
        step = int(chunk_rows or self.chunk_rows)
        for lo in range(0, self._n_rows, step):
            yield self._slice(lo, min(lo + step, self._n_rows))

    # -- column transformation: materialise, then delegate -------------------

    def _thaw(self) -> TabularDataset:
        """A fully-materialised (memmap-backed) in-memory view."""
        columns = {col.name: self.column(col.name) for col in self._schema}
        return TabularDataset._trusted(self._schema, columns, self._n_rows)

    def with_column(self, column, values) -> TabularDataset:
        return self._thaw().with_column(column, values)

    def drop_column(self, name: str) -> TabularDataset:
        return self._thaw().drop_column(name)

    def with_role(self, name: str, role: str) -> TabularDataset:
        return self._thaw().with_role(name, role)

    def __repr__(self) -> str:
        return (
            f"MemmapDataset(path={str(self._path)!r}, n_rows={self._n_rows}, "
            f"n_columns={len(self._schema)})"
        )


def stream_chunks(source, chunk_rows: int | None = None):
    """Yield bounded in-memory chunks from a packed path or dataset.

    The bridge into :func:`repro.streaming.audit_stream`: feed a packed
    directory straight through —
    ``audit_stream(stream_chunks("corpus.packed"))`` — and the audit
    runs in ``O(chunk)`` memory however large the corpus.
    """
    if isinstance(source, (str, Path)):
        source = open_dataset(source)
    if isinstance(source, MemmapDataset):
        yield from source.iter_chunks(chunk_rows)
        return
    step = int(chunk_rows or DEFAULT_CHUNK_ROWS)
    for lo in range(0, source.n_rows, step):
        yield source.take(np.arange(lo, min(lo + step, source.n_rows)))
