"""Fairness metrics for rankings (exposure-based).

The paper points to fairness in rankings and recommendations (Pitoura
et al., cited as [18]) as the adjacent setting where the same
equal-treatment/equal-outcome tension plays out: position in a ranking
determines *exposure*, and exposure — not just inclusion — is the
resource courts would ask about in, say, a job-candidate ranking
product.  This module provides:

* :func:`position_weights` — the standard logarithmic position discount;
* :func:`group_exposure` — each group's share of total exposure;
* :func:`exposure_parity` — exposure share vs population share, as a
  :class:`~repro.core.types.MetricResult`;
* :func:`representation_at_k` — prefix representation (the "top-k
  screenful" question).
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_array_1d, check_positive_int, check_probability
from repro.core.types import EqualityConcept, GroupStats, MetricResult
from repro.exceptions import MetricError

__all__ = [
    "position_weights",
    "group_exposure",
    "exposure_parity",
    "representation_at_k",
]


def position_weights(n: int) -> np.ndarray:
    """Logarithmic position discount: w_i = 1 / log2(i + 2), i zero-based.

    The DCG discount; position 0 gets weight 1, decaying slowly so deep
    positions still carry some exposure.
    """
    check_positive_int(n, "n")
    return 1.0 / np.log2(np.arange(n) + 2.0)


def group_exposure(ranked_groups) -> dict:
    """Share of total position-discounted exposure received per group.

    ``ranked_groups`` lists each ranked item's group, best position
    first.  Shares sum to 1.
    """
    ranked_groups = check_array_1d(ranked_groups, "ranked_groups")
    if len(ranked_groups) == 0:
        raise MetricError("ranking must be non-empty")
    weights = position_weights(len(ranked_groups))
    total = float(weights.sum())
    shares = {}
    for group in np.unique(ranked_groups):
        shares[group] = float(weights[ranked_groups == group].sum() / total)
    return shares


def exposure_parity(
    ranked_groups,
    population_shares: dict | None = None,
    tolerance: float = 0.0,
) -> MetricResult:
    """Exposure share vs entitlement per group.

    Each group's *entitlement* defaults to its share of the ranked items
    (proportional exposure); pass ``population_shares`` to measure
    against an external population instead.  The result's ``gap`` is the
    worst absolute shortfall ``max(0, entitlement − exposure)`` over
    groups — over-exposure is not penalised, under-exposure is (the
    disparate-impact framing).
    """
    ranked_groups = check_array_1d(ranked_groups, "ranked_groups")
    check_probability(tolerance, "tolerance")
    if len(ranked_groups) == 0:
        raise MetricError("ranking must be non-empty")
    exposure = group_exposure(ranked_groups)
    if population_shares is None:
        population_shares = {
            g: float(np.mean(ranked_groups == g))
            for g in np.unique(ranked_groups)
        }
    missing = set(exposure) - set(population_shares)
    if missing:
        raise MetricError(
            f"population_shares lacks groups {sorted(missing, key=repr)}"
        )

    stats = []
    shortfalls = {}
    for group in sorted(exposure, key=repr):
        share = exposure[group]
        entitlement = float(population_shares[group])
        shortfalls[group] = max(0.0, entitlement - share)
        n_members = int(np.sum(ranked_groups == group))
        stats.append(GroupStats(
            group=group, n=n_members,
            positives=n_members,  # every ranked member "participates"
            rate=share,
        ))
    worst = max(shortfalls.values())
    entitled = {g: float(population_shares[g]) for g in exposure}
    return MetricResult(
        metric="exposure_parity",
        group_stats=tuple(stats),
        gap=float(worst),
        ratio=float(
            min(
                exposure[g] / entitled[g]
                for g in exposure if entitled[g] > 0
            )
        ) if any(entitled[g] > 0 for g in exposure) else float("nan"),
        tolerance=float(tolerance),
        satisfied=bool(worst <= tolerance + 1e-12),
        equality_concept=EqualityConcept.EQUAL_OUTCOME,
        details={"exposure": exposure, "entitlement": entitled,
                 "shortfalls": shortfalls},
    )


def representation_at_k(ranked_groups, k: int) -> dict:
    """Each group's share of the top-k positions."""
    ranked_groups = check_array_1d(ranked_groups, "ranked_groups")
    check_positive_int(k, "k")
    if k > len(ranked_groups):
        raise MetricError(
            f"k={k} exceeds ranking length {len(ranked_groups)}"
        )
    top = ranked_groups[:k]
    return {
        g: float(np.mean(top == g)) for g in np.unique(ranked_groups)
    }
