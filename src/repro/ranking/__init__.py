"""Exposure-based ranking fairness (adjacent setting the paper cites)."""

from repro.ranking.exposure import (
    exposure_parity,
    group_exposure,
    position_weights,
    representation_at_k,
)
from repro.ranking.rerank import fair_rerank

__all__ = [
    "position_weights",
    "group_exposure",
    "exposure_parity",
    "representation_at_k",
    "fair_rerank",
]
