"""Fair re-ranking: enforce group representation at every prefix.

A simplified FA*IR-style greedy re-ranker: walk positions top to bottom,
at each prefix check which groups are *behind* their target proportion,
and, when any are, place the best remaining candidate from the most
underrepresented such group; otherwise place the best remaining
candidate overall.  Within each group the original score order is always
respected, so the intervention is a controlled merge, not a shuffle.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_array_1d, check_same_length
from repro.exceptions import MitigationError

__all__ = ["fair_rerank"]


def fair_rerank(
    scores,
    groups,
    target_proportions: dict | None = None,
) -> np.ndarray:
    """Return indices of a re-ranked order satisfying prefix fairness.

    Parameters
    ----------
    scores:
        Relevance scores; higher is better.
    groups:
        Group label per candidate.
    target_proportions:
        group → minimum proportion at every prefix.  Defaults to each
        group's overall share.  Proportions must sum to ≤ 1.

    Returns
    -------
    An index array ``order`` such that ``scores[order]`` is the re-ranked
    list (best position first).
    """
    scores = check_array_1d(scores, "scores").astype(float)
    groups = check_array_1d(groups, "groups")
    check_same_length(("scores", scores), ("groups", groups))
    if len(scores) == 0:
        raise MitigationError("nothing to rank")

    unique = np.unique(groups).tolist()
    if target_proportions is None:
        target_proportions = {
            g: float(np.mean(groups == g)) for g in unique
        }
    for group, proportion in target_proportions.items():
        if group not in unique:
            raise MitigationError(f"target group {group!r} has no candidates")
        if proportion < 0:
            raise MitigationError("target proportions must be non-negative")
    if sum(target_proportions.values()) > 1.0 + 1e-9:
        raise MitigationError(
            f"target proportions sum to {sum(target_proportions.values()):.3f} > 1"
        )

    # Per-group queues in descending score order.
    queues = {
        g: list(np.flatnonzero(groups == g)[
            np.argsort(-scores[groups == g], kind="stable")
        ])
        for g in unique
    }
    placed = {g: 0 for g in unique}
    order: list[int] = []

    for position in range(len(scores)):
        prefix = position + 1
        # groups behind target that still have candidates
        behind = [
            g for g in unique
            if queues[g]
            and placed[g] < np.floor(target_proportions.get(g, 0.0) * prefix)
        ]
        if behind:
            # most underrepresented first (largest deficit)
            chosen_group = max(
                behind,
                key=lambda g: target_proportions.get(g, 0.0) * prefix
                - placed[g],
            )
        else:
            # merit: best head-of-queue score among remaining groups
            candidates = [g for g in unique if queues[g]]
            chosen_group = max(
                candidates, key=lambda g: scores[queues[g][0]]
            )
        index = queues[chosen_group].pop(0)
        placed[chosen_group] += 1
        order.append(index)
    return np.array(order, dtype=int)
