"""The top-level ``repro.audit`` façade.

One entry point, one config object: ``audit(data, config=...)`` accepts
whatever form the evidence is in — an in-memory
:class:`~repro.data.dataset.TabularDataset`, a pre-counted
:class:`~repro.streaming.accumulator.AuditAccumulator` (e.g. merged
from shards), or any iterable of dataset chunks — and returns the same
:class:`~repro.core.audit.AuditReport` either way.  The report is
byte-identical across forms (modulo the provenance timings), because
the streaming path maintains exact joint contingency counts.

This is the stable public surface; the per-call keyword arguments the
constructors used to take are deprecated in favour of
:class:`~repro.core.config.AuditConfig`.
"""

from __future__ import annotations

from repro.core.audit import AuditReport, FairnessAudit
from repro.core.config import AuditConfig
from repro.data.dataset import TabularDataset
from repro.exceptions import AuditError
from repro.streaming.accumulator import AuditAccumulator
from repro.streaming.stream import audit_stream, finalize

__all__ = ["audit"]


def audit(
    data,
    *,
    predictions=None,
    probabilities=None,
    config: AuditConfig | None = None,
) -> AuditReport:
    """Run the fairness battery on ``data`` and return the report.

    Parameters
    ----------
    data:
        A :class:`~repro.data.dataset.TabularDataset` (audited in
        memory), an :class:`~repro.streaming.accumulator.AuditAccumulator`
        holding pre-ingested counts, or an iterable of dataset chunks /
        ``(dataset, predictions)`` pairs (audited via the streaming
        engine).
    predictions:
        Model outputs aligned with the dataset rows; omit to audit the
        labels themselves.  Only valid for the in-memory form — chunked
        streams carry predictions inside each chunk, accumulators
        already counted them.
    probabilities:
        Continuous scores enabling ``calibration_within_groups``;
        in-memory form only (calibration is outside the counts model).
    config:
        The :class:`~repro.core.config.AuditConfig` shared by every
        audit surface; defaults to ``AuditConfig()``.

    Examples
    --------
    >>> from repro import audit, AuditConfig, make_hiring
    >>> report = audit(make_hiring(500, random_state=0),
    ...                config=AuditConfig(tolerance=0.1))
    >>> isinstance(report.is_clean, bool)
    True
    """
    if config is None:
        config = AuditConfig()
    if isinstance(data, TabularDataset):
        return FairnessAudit(
            data,
            predictions=predictions,
            probabilities=probabilities,
            config=config,
        ).run()
    if isinstance(data, AuditAccumulator):
        if predictions is not None or probabilities is not None:
            raise AuditError(
                "an accumulator already carries its predictions; "
                "pass them per-chunk at ingest time"
            )
        return finalize(data, config)
    if hasattr(data, "__iter__"):
        if predictions is not None or probabilities is not None:
            raise AuditError(
                "chunked streams carry predictions inside each "
                "(dataset, predictions) chunk"
            )
        return audit_stream(data, config)
    raise AuditError(
        "audit() takes a TabularDataset, an AuditAccumulator, or an "
        f"iterable of chunks, got {type(data).__name__}"
    )
