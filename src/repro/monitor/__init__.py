"""Production monitoring fleet: many streams, one vectorized data plane.

The continuous-compliance engine behind Section IV.E at scale —
:class:`MonitorFleet` multiplexes N named prediction streams over
shared code tables and cumulative accumulators, evaluates windows from
count deltas, and batches every stream's drift statistics through
:mod:`repro.stats.batch` with sequential-testing-aware alerting
(alpha-spending + CUSUM) configured on a frozen
:class:`~repro.core.config.MonitorConfig`.  ``repro monitor serve``
(see :mod:`repro.monitor.serve`) tails append-only shard files and
routes alerts through the observability event bus.
"""

from repro.core.config import MONITOR_DETECTORS, MonitorConfig
from repro.monitor.engine import MonitorFleet, StreamState
from repro.monitor.serve import MonitorService, ShardSpool, serve_http
from repro.streaming.monitor import DriftEvent, FairnessMonitor, WindowResult

__all__ = [
    "MONITOR_DETECTORS",
    "DriftEvent",
    "FairnessMonitor",
    "MonitorConfig",
    "MonitorFleet",
    "MonitorService",
    "ShardSpool",
    "StreamState",
    "WindowResult",
    "serve_http",
]
