"""The monitoring fleet engine: many streams, one vectorized data plane.

Section IV.E of the paper (and Wachter et al., PAPERS.md) frame
compliance as a standing obligation: summary statistics must be
re-evaluated continuously as the population drifts.  The legacy
:class:`~repro.streaming.monitor.FairnessMonitor` met the letter of
that — one stream, windows buffered through Python lists, a fresh
accumulator rebuilt per window, a naive per-window threshold test — but
not the scale.  :class:`MonitorFleet` is the production engine behind
it:

* **Vectorized ingest.**  Chunks stay numpy arrays end to end: each
  observed chunk is encoded *once, at ingest* into joint-contingency
  code space (fleet-persistent category tables shared by every
  stream, probed by a cached ``searchsorted`` lookup with
  :func:`repro.kernel.codes.encode` as the new-category fallback), so
  closing a window is slicing integer code arrays plus one
  ``bincount`` folded into the stream's *cumulative*
  :class:`~repro.streaming.accumulator.AuditAccumulator` via
  :meth:`~repro.streaming.accumulator.AuditAccumulator.ingest_counts`.
  Windows close by subtracting the previous base state
  (:meth:`~repro.streaming.accumulator.AuditAccumulator.diff`), and
  eligible configs are scored straight from the cell delta
  (:meth:`MonitorFleet._evaluate_cells`), so window evaluation is
  O(cells), not O(rows), and no row is ever re-encoded.

* **Fleet multiplexing.**  N named streams share the code tables and
  one entry point (:meth:`observe`); ready windows close round-robin
  and the drift statistics for *all* of them are computed in one
  :mod:`repro.stats.batch` call over a (windows × metrics × groups)
  matrix rather than per-stream scalar loops.

* **Sequential-testing-aware alerts.**  Repeated window tests inflate
  false alarms (Weerts et al., PAPERS.md); the
  :class:`~repro.core.config.MonitorConfig` detectors temper that:
  ``"threshold"`` is the legacy rule (bit-identical), ``"spending"``
  is an alpha-spending sequential z-test (Pocock-style per-window
  budgets, Bonferroni across groups) on the batched statistics, and
  ``"cusum"`` accumulates small sustained gap shifts.  At most one
  :class:`~repro.streaming.monitor.DriftEvent` fires per
  (window, metric), attributed to the first alarming detector in
  :data:`~repro.core.config.MONITOR_DETECTORS` order.

Equivalence is the design anchor: with the default
``detectors=("threshold",)`` a fleet's per-stream window gaps,
violations, and drift events are byte-identical to N independent
legacy monitors run serially on the same per-stream data
(``benchmarks/bench_m1_monitor.py`` asserts this before any timing
guard).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.config import (
    MONITOR_DETECTORS,
    AuditConfig,
    MonitorConfig,
)
from repro.exceptions import AuditError
from repro.kernel.codes import encode
from repro.observability.metrics import get_metrics
from repro.observability.trace import get_tracer
from repro.stats.batch import batch_two_proportion_z, batch_wilson_interval
from repro.streaming.accumulator import AuditAccumulator
from repro.streaming.monitor import DriftEvent, WindowResult
from repro.streaming.stream import finalize

__all__ = ["MonitorFleet", "StreamState"]

#: battery metrics the O(cells) window scorer reproduces straight from
#: a cell delta.  The conditional metrics and calibration are listed
#: because without a strata column or probability scores — the only
#: regime the fast path accepts — the materialised audit records them
#: as skipped findings with no result, exactly what omitting them does.
_FAST_SAFE_METRICS = frozenset({
    "demographic_parity",
    "conditional_statistical_parity",
    "equal_opportunity",
    "equalized_odds",
    "demographic_disparity",
    "conditional_demographic_disparity",
    "predictive_parity",
    "treatment_equality",
    "false_positive_rate_parity",
    "overall_accuracy_equality",
    "disparate_impact_ratio",
    "calibration_within_groups",
})


#: numerator/denominator pieces of the one-rate-per-group confusion
#: metrics: (denominator tally indices, numerator tally index)
_RATE_PIECES = {
    "equal_opportunity": ((2, 3), 2),
    "predictive_parity": ((2, 4), 2),
    "treatment_equality": ((3, 4), 3),
    "false_positive_rate_parity": ((4, 5), 4),
}


def _fast_metric(metric, groups, tallies, multi, has_label):
    """Score one battery metric over one attribute's per-group tallies.

    ``tallies[group]`` is ``[n, pred_pos, tp, fn, fp, tn]`` and
    ``groups`` is repr-sorted — the library-wide deterministic group
    order, so rates divide the same Python ints in the same order as
    the kernel-backed metric functions and every float is bit-identical
    to a materialised audit.  Returns ``(gap, contrast_rows)`` or
    ``None`` where the audit would record a skipped finding with no
    result: fewer than two groups, missing labels, or a group with an
    empty denominator (:class:`~repro.exceptions.InsufficientDataError`
    territory).
    """
    if metric in ("demographic_parity", "disparate_impact_ratio"):
        if not multi:
            return None
        stats = [(g, tallies[g][0], tallies[g][1]) for g in groups]
        rates = [p / n for _g, n, p in stats]
        return float(max(rates) - min(rates)), tuple(stats)
    if metric == "demographic_disparity":
        stats = [(g, tallies[g][0], tallies[g][1]) for g in groups]
        worst = 0.0
        for _g, n, p in stats:
            short = 0.5 - p / n
            if short > worst:
                worst = short
        return float(worst), tuple(stats)
    if not has_label or not multi:
        return None
    if metric == "equalized_odds":
        tpr, fpr, stats = [], [], []
        for g in groups:
            t = tallies[g]
            pos, neg = t[2] + t[3], t[4] + t[5]
            if pos == 0 or neg == 0:
                return None
            tpr.append(t[2] / pos)
            fpr.append(t[4] / neg)
            stats.append((g, pos, t[2]))
        gap = max(max(tpr) - min(tpr), max(fpr) - min(fpr))
        return float(gap), tuple(stats)
    if metric == "overall_accuracy_equality":
        stats = [
            (g, tallies[g][0], tallies[g][2] + tallies[g][5]) for g in groups
        ]
        rates = [p / n for _g, n, p in stats]
        return float(max(rates) - min(rates)), tuple(stats)
    pieces = _RATE_PIECES.get(metric)
    if pieces is None:
        return None  # conditional_* / calibration: skipped in this regime
    (a, b), num = pieces
    stats = []
    for g in groups:
        t = tallies[g]
        n = t[a] + t[b]
        if n == 0:
            return None
        stats.append((g, n, t[num]))
    rates = [p / n for _g, n, p in stats]
    return float(max(rates) - min(rates)), tuple(stats)


class StreamState:
    """Per-stream monitoring state inside a :class:`MonitorFleet`.

    Exposed read-only through :meth:`MonitorFleet.stream`; mutate it
    only through the fleet.  ``windows`` and ``drift_events`` are the
    stream's full histories, ``rows_seen`` counts rows already folded
    into closed windows, ``buffered`` the rows queued for the next one.
    """

    __slots__ = (
        "name",
        "acc",
        "base",
        "queue",
        "buffered",
        "rows_seen",
        "windows_closed",
        "windows",
        "drift_events",
        "gap_history",
        "gap_buffer",
        "baseline_counts",
        "looks",
        "cusum_hi",
        "cusum_lo",
    )

    def __init__(self, name: str, acc: AuditAccumulator):
        self.name = name
        #: cumulative contingency state over every row ever observed
        self.acc = acc
        #: the cumulative state at the last window close (diff base)
        self.base = acc.copy()
        #: FIFO of pending chunk dicts (dim name -> numpy array)
        self.queue: deque = deque()
        self.buffered = 0
        self.rows_seen = 0
        self.windows_closed = 0
        self.windows: list[WindowResult] = []
        self.drift_events: list[DriftEvent] = []
        #: per-metric gap trajectory (threshold/cusum baselines)
        self.gap_history: dict[str, list[float]] = {}
        #: gap_history mirrored into amortised float64 buffers so the
        #: running-baseline sum never reconverts the list: key ->
        #: [buffer, filled]; buffer[:filled] == gap_history[key]
        self.gap_buffer: dict[str, list] = {}
        #: per-metric cumulative {group: [n, positives]} (spending baseline)
        self.baseline_counts: dict[str, dict] = {}
        #: per-metric sequential-test look counters (alpha spending)
        self.looks: dict[str, int] = {}
        self.cusum_hi: dict[str, float] = {}
        self.cusum_lo: dict[str, float] = {}

    def __repr__(self) -> str:
        return (
            f"StreamState(name={self.name!r}, rows_seen={self.rows_seen}, "
            f"buffered={self.buffered}, windows={len(self.windows)}, "
            f"drift_events={len(self.drift_events)})"
        )


class _Pending:
    """One closed-but-unresolved window awaiting the batched drift pass."""

    __slots__ = (
        "state",
        "index",
        "start",
        "end",
        "gaps",
        "violations",
        "contrasts",
        "decisions",
        "events",
    )

    def __init__(self, state, index, start, end, gaps, violations, contrasts):
        self.state = state
        self.index = index
        self.start = start
        self.end = end
        self.gaps = gaps
        self.violations = violations
        #: per metric key: ((group, n, positives), ...) from the window
        self.contrasts = contrasts
        self.decisions: dict[str, dict] = {}
        self.events: list[DriftEvent] = []


class MonitorFleet:
    """N named monitoring streams over one vectorized data plane.

    Parameters
    ----------
    protected:
        Ordered protected-attribute names, shared by every stream.
    config:
        Audit configuration for each window's battery run; window
        audits and offline audits share one config type by design.
        ``config.monitor`` supplies the monitoring settings unless
        ``monitor`` is passed explicitly.
    monitor:
        The :class:`~repro.core.config.MonitorConfig` governing window
        size and drift detectors (overrides ``config.monitor``).
    label / audits_labels:
        As on :class:`~repro.streaming.accumulator.AuditAccumulator`.

    Examples
    --------
    >>> fleet = MonitorFleet(["sex"], monitor=MonitorConfig(window=200))
    >>> closed = fleet.observe("checkout", y_true=y, predictions=p,
    ...                        protected={"sex": sex})  # doctest: +SKIP
    """

    def __init__(
        self,
        protected,
        *,
        config: AuditConfig | None = None,
        monitor: MonitorConfig | None = None,
        label: str | None = "outcome",
        audits_labels: bool = False,
    ):
        self.config = config if config is not None else AuditConfig()
        if monitor is None:
            monitor = self.config.monitor
        self.monitor = monitor if monitor is not None else MonitorConfig()
        self.protected = tuple(protected)
        if not self.protected:
            raise AuditError("fleet requires protected attributes")
        self.label = label
        self.audits_labels = bool(audits_labels)
        if self.audits_labels and self.label is None:
            raise AuditError("a data audit (audits_labels) requires a label")
        self._dims = self._new_accumulator()._dims
        # fleet-persistent shared code tables: categories only ever
        # append, so codes stay stable across windows and streams
        self._categories: dict[str, list] = {d: [] for d in self._dims}
        self._seen: dict[str, set] = {d: set() for d in self._dims}
        #: per-dim (value-sorted categories, sorted→code remap) caches
        #: for the steady-state searchsorted encoder; rebuilt whenever a
        #: dim grows a category, None when its values defeat sorting
        self._lookup: dict[str, tuple | None] = {}
        self._streams: dict[str, StreamState] = {}
        # window scoring strategy: when the config rules out everything
        # the O(cells) scorer cannot reproduce — fault injection, a
        # strata column, battery metrics outside _FAST_SAFE_METRICS —
        # windows are scored straight from their cell deltas; otherwise
        # each delta is materialised through the full audit battery
        battery: tuple | None = None
        if self.config.faults is None and self.config.strata is None:
            candidate = self.config.battery()
            if all(metric in _FAST_SAFE_METRICS for metric in candidate):
                battery = candidate
        self._battery = battery
        # the subset the fast scorer actually iterates: metrics that
        # _fast_metric unconditionally skips in this fleet's layout
        # (conditional_*/calibration always; the confusion-matrix
        # metrics when no separate label is tracked) never score, so
        # drop them once here instead of re-deciding every window
        self._fast_battery: tuple = ()
        if battery is not None:
            has_label = self.label is not None and not self.audits_labels
            scoreable = frozenset(
                ("demographic_parity", "disparate_impact_ratio",
                 "demographic_disparity")
            ) | (
                frozenset(
                    ("equal_opportunity", "equalized_odds",
                     "predictive_parity", "treatment_equality",
                     "false_positive_rate_parity",
                     "overall_accuracy_equality")
                ) if has_label else frozenset()
            )
            self._fast_battery = tuple(
                metric for metric in battery if metric in scoreable
            )

    # -- stream registry -----------------------------------------------------

    def _new_accumulator(self) -> AuditAccumulator:
        return AuditAccumulator(
            self.protected,
            strata=self.config.strata,
            label=self.label,
            audits_labels=self.audits_labels,
        )

    def add_stream(self, name: str) -> StreamState:
        """Register (or fetch) the named stream and return its state."""
        if not isinstance(name, str) or not name:
            raise AuditError("stream name must be a non-empty string")
        state = self._streams.get(name)
        if state is None:
            state = StreamState(name, self._new_accumulator())
            self._streams[name] = state
        return state

    def stream(self, name: str) -> StreamState:
        """The named stream's state; raises for unknown streams."""
        state = self._streams.get(name)
        if state is None:
            raise AuditError(f"unknown stream {name!r}")
        return state

    @property
    def stream_names(self) -> tuple[str, ...]:
        return tuple(self._streams)

    # -- ingestion -----------------------------------------------------------

    def observe(
        self,
        stream: str,
        y_true=None,
        predictions=None,
        protected=None,
        strata=None,
    ) -> list[WindowResult]:
        """Queue aligned arrays on a stream; return the windows it closed.

        Unknown stream names auto-register.  Arrays are queued as numpy
        chunks — never converted to Python lists — and folded into code
        space only when a window closes.
        """
        state = self.add_stream(stream)
        columns = self._validate_chunk(y_true, predictions, protected, strata)
        n = len(next(iter(columns.values())))
        if n:
            state.queue.append(self._encode_chunk(columns))
            state.buffered += n
            get_metrics().counter(
                "streaming.monitor_rows", stream=state.name
            ).inc(n)
        closed = self.poll()
        return [w for w in closed if w.stream == state.name]

    def _validate_chunk(self, y_true, predictions, protected, strata):
        if protected is None:
            raise AuditError("observe requires the protected value arrays")
        columns: dict[str, np.ndarray] = {}
        for name in self.protected:
            if name not in protected:
                raise AuditError(f"missing protected column {name!r}")
            columns[name] = np.asarray(protected[name])
        if self.config.strata is not None:
            if strata is None:
                raise AuditError(
                    f"monitor tracks strata {self.config.strata!r}; "
                    "pass the strata array"
                )
            columns["__strata__"] = np.asarray(strata)
        if self.label is not None:
            if y_true is None:
                raise AuditError("monitor tracks labels; pass y_true")
            columns["__label__"] = np.asarray(y_true)
        if not self.audits_labels:
            if predictions is None:
                raise AuditError("pass the predictions to monitor")
            columns["__prediction__"] = np.asarray(predictions)
        lengths = {len(arr) for arr in columns.values()}
        if len(lengths) != 1:
            raise AuditError("observed arrays must share one length")
        return columns

    def poll(self) -> list[WindowResult]:
        """Close every ready window, round-robin across streams.

        Each sweep closes at most one window per stream so no stream
        starves another; all windows closed in one call share a single
        batched drift-statistics pass.
        """
        window = self.monitor.window
        pending: list[_Pending] = []
        progressed = True
        while progressed:
            progressed = False
            for state in self._streams.values():
                if state.buffered >= window:
                    pending.append(self._close_window(state, window))
                    progressed = True
        return self._finalize_pending(pending)

    def flush(self, stream: str | None = None):
        """Close the partial window left on one stream (or on all).

        With a ``stream`` name returns that stream's
        :class:`~repro.streaming.monitor.WindowResult` or ``None``;
        with no argument flushes every stream and returns the list of
        closed windows.
        """
        if stream is not None:
            names = [self.stream(stream).name]
        else:
            names = list(self._streams)
        pending = []
        for name in names:
            state = self._streams[name]
            if state.buffered > 0:
                pending.append(self._close_window(state, state.buffered))
        results = self._finalize_pending(pending)
        if stream is not None:
            return results[0] if results else None
        return results

    # -- window evaluation ---------------------------------------------------

    def _take(self, state: StreamState, size: int) -> dict[str, np.ndarray]:
        """Dequeue exactly ``size`` rows as one array per dimension."""
        parts: dict[str, list] = {dim: [] for dim in self._dims}
        remaining = size
        queue = state.queue
        first = self._dims[0]
        while remaining > 0:
            chunk = queue[0]
            n = len(chunk[first])
            if n <= remaining:
                queue.popleft()
                for dim in self._dims:
                    parts[dim].append(chunk[dim])
                remaining -= n
            else:
                for dim in self._dims:
                    parts[dim].append(chunk[dim][:remaining])
                queue[0] = {
                    dim: chunk[dim][remaining:] for dim in self._dims
                }
                remaining = 0
        state.buffered -= size
        return {
            dim: (
                chunks[0]
                if len(chunks) == 1
                else np.concatenate(chunks)
            )
            for dim, chunks in parts.items()
        }

    def _encode_chunk(
        self, columns: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Encode a whole observed chunk into fleet-shared code space.

        Chunks are encoded *once, at ingest* — the fleet's category
        tables only ever append, so the codes stay valid no matter how
        many windows later they are folded, and window closes reduce to
        slicing integer arrays.  Encoding whole chunks instead of
        window slices also amortises every per-call cost over the full
        chunk length.
        """
        return {
            dim: self._encode_codes(dim, columns[dim])
            for dim in self._dims
        }

    def _encode_codes(self, dim: str, arr: np.ndarray) -> np.ndarray:
        """Codes for one column against the fleet-shared category table.

        Steady state — every value already in the table — takes the
        searchsorted path: one O(n log k) probe against the value-sorted
        categories instead of :func:`~repro.kernel.codes.encode`'s full
        O(n log n) sort, with codes remapped to the table's append
        order.  A chunk carrying a new value (or values the cached
        array cannot compare against) falls back to the canonical
        encoder and refreshes the cache.
        """
        categories = self._categories[dim]
        lookup = self._lookup.get(dim)
        if lookup is not None:
            sorted_cats, remap = lookup
            try:
                pos = np.searchsorted(sorted_cats, arr)
                clipped = np.minimum(pos, len(sorted_cats) - 1)
                if bool((sorted_cats[clipped] == arr).all()):
                    return remap[clipped]
            except (TypeError, AttributeError):  # incomparable: slow path
                pass
        seen = self._seen[dim]
        new = [v for v in np.unique(arr).tolist() if v not in seen]
        if new:
            for value in sorted(new, key=repr):
                seen.add(value)
                categories.append(value)
        self._lookup[dim] = self._build_lookup(categories)
        return encode(arr, categories=categories).codes

    @staticmethod
    def _build_lookup(categories: list) -> tuple | None:
        """(value-sorted categories, sorted-position → code) or None."""
        try:
            cats_array = np.asarray(categories)
            if cats_array.dtype == object:
                return None
            order = np.argsort(cats_array)
        except (TypeError, ValueError):  # mixed/unsortable categories
            return None
        return cats_array[order], order.astype(np.int64)

    def _fold(self, state: StreamState, codes: dict[str, np.ndarray], n: int):
        """One bincount folds a window of pre-encoded codes into state.

        The chunk was encoded at ingest (:meth:`_encode_chunk`), so the
        window is already integer code arrays; the joint code uses the
        tables' *current* sizes — safe even if another stream has since
        grown a dimension, because categories only ever append and old
        codes stay valid.
        """
        dims = self._dims
        sizes = [len(self._categories[dim]) for dim in dims]
        joint = codes[dims[0]]
        n_cells = sizes[0]
        for dim, size in zip(dims[1:], sizes[1:]):
            joint = joint * size + codes[dim]
            n_cells *= size
        counts = np.bincount(joint, minlength=n_cells)
        nonzero = np.flatnonzero(counts)
        indices = np.unravel_index(nonzero, sizes)
        columns = [
            [self._categories[dim][code] for code in dim_codes.tolist()]
            for dim, dim_codes in zip(dims, indices)
        ]
        items = list(zip(zip(*columns), counts[nonzero].tolist()))
        folded = state.acc.ingest_counts(items)
        if folded != n:
            raise AuditError(
                f"window fold lost rows: {folded} of {n} counted"
            )

    def _close_window(self, state: StreamState, size: int) -> _Pending:
        arrays = self._take(state, size)
        index = state.windows_closed
        state.windows_closed += 1
        start = state.rows_seen
        state.rows_seen += size
        tracer = (
            self.config.tracer
            if self.config.tracer is not None
            else get_tracer()
        )
        with tracer.span(
            "streaming.window", stream=state.name, index=index, rows=size
        ):
            self._fold(state, arrays, size)
            delta = state.acc.diff(state.base)
            state.base.restore(state.acc.snapshot())
            gaps, violations, contrasts = self._evaluate(delta)
        return _Pending(
            state, index, start, state.rows_seen, gaps, violations, contrasts
        )

    def _evaluate(self, delta: AuditAccumulator):
        """Score one window's cell delta.

        When the config admits it (``self._battery`` is set) the delta
        is scored in O(cells) by :meth:`_evaluate_cells` — bit-identical
        gaps and contrasts without materialising rows or re-running the
        significance machinery the monitor discards.  Anything the fast
        scorer cannot faithfully reproduce (fault injection, strata,
        exotic battery subsets, non-binary outcome values) runs the full
        materialised audit instead.
        """
        if self._battery is not None:
            scored = self._evaluate_cells(delta)
            if scored is not None:
                return scored
        report = finalize(delta, self.config)
        gaps: dict[str, float] = {}
        violations: list[str] = []
        contrasts: dict[str, tuple] = {}
        for finding in report.findings:
            if finding.result is None:
                continue
            key = f"{finding.attribute}/{finding.metric}"
            gaps[key] = float(finding.result.gap)
            if finding.status == "violation":
                violations.append(key)
            group_stats = getattr(finding.result, "group_stats", ()) or ()
            contrasts[key] = tuple(
                (gs.group, int(gs.n), int(gs.positives))
                for gs in group_stats
            )
        return gaps, tuple(violations), contrasts

    def _evaluate_cells(self, delta: AuditAccumulator):
        """O(cells) window scorer: the battery straight from the delta.

        One pass over the delta's cells marginalises the joint counts
        into per-attribute ``[n, pred_pos, tp, fn, fp, tn]`` tallies;
        :func:`_fast_metric` then reproduces each battery metric's gap
        and group contrasts from the same integer counts the
        materialised audit would derive, in the same repr-sorted group
        order, so every float matches bit for bit.  Returns ``None`` —
        deferring to the materialised audit — when an outcome or label
        value is not binary, since the full battery's validation
        behaviour is the contract there.
        """
        dims = delta._dims
        n_attrs = len(self.protected)
        pred_axis = len(dims) - 1
        has_label = self.label is not None and not self.audits_labels
        label_axis = dims.index("__label__") if has_label else None
        tallies: list[dict] = [{} for _ in range(n_attrs)]
        for key, count in delta._cells.items():
            pred = key[pred_axis]
            if pred != 0 and pred != 1:
                return None
            y = None
            if has_label:
                y = key[label_axis]
                if y != 0 and y != 1:
                    return None
            for axis in range(n_attrs):
                tally = tallies[axis].get(key[axis])
                if tally is None:
                    tally = tallies[axis][key[axis]] = [0, 0, 0, 0, 0, 0]
                tally[0] += count
                if pred == 1:
                    tally[1] += count
                if y is not None:
                    if y == 1:
                        if pred == 1:
                            tally[2] += count
                        else:
                            tally[3] += count
                    elif pred == 1:
                        tally[4] += count
                    else:
                        tally[5] += count
        gaps: dict[str, float] = {}
        contrasts: dict[str, tuple] = {}
        for axis, attribute in enumerate(self.protected):
            by_group = tallies[axis]
            groups = sorted(by_group, key=repr)
            multi = len(groups) >= 2
            for metric in self._fast_battery:
                scored = _fast_metric(
                    metric, groups, by_group, multi, has_label
                )
                if scored is None:
                    continue
                gap, stats = scored
                key = f"{attribute}/{metric}"
                gaps[key] = gap
                contrasts[key] = stats
        return gaps, (), contrasts

    # -- drift resolution ----------------------------------------------------

    def _resolve_drift(self, pending: list[_Pending]) -> None:
        """Decide drift for every closed window in one batched pass.

        Pass 1 walks windows in close order doing the inherently
        sequential bookkeeping — running baselines, alpha-spending look
        counters, CUSUM state — while collecting every
        (window × metric × group) contrast into flat count vectors.
        One :func:`~repro.stats.batch.batch_two_proportion_z` +
        :func:`~repro.stats.batch.batch_wilson_interval` call then
        scores them all, and pass 2 turns the scores into per-window
        detector decisions.
        """
        cfg = self.monitor
        detectors = cfg.detectors
        use_threshold = "threshold" in detectors
        use_spending = "spending" in detectors
        use_cusum = "cusum" in detectors
        cusum_k = cfg.resolved_cusum_k()
        cusum_h = cfg.resolved_cusum_h()

        successes_w: list[int] = []
        trials_w: list[int] = []
        successes_b: list[int] = []
        trials_b: list[int] = []
        tests: list[tuple[dict, list[int], float]] = []

        for p in pending:
            state = p.state
            for key, gap in p.gaps.items():
                history = state.gap_history.setdefault(key, [])
                buf_entry = state.gap_buffer.get(key)
                if buf_entry is None:
                    buf_entry = state.gap_buffer[key] = [np.empty(16), 0]
                if history:
                    # same pairwise sum np.mean performs over the same
                    # float64 values, minus its dispatch overhead and
                    # the per-window list conversion — bit-identical
                    # baselines at a fraction of the cost
                    buf, filled = buf_entry
                    baseline = float(
                        np.add.reduce(buf[:filled]) / filled
                    )
                    delta = gap - baseline
                    # decisions are sparse: a dict materialises only
                    # when a detector fires (or a spending test queues),
                    # so null windows cost pass 2 nothing
                    decision = None
                    if use_threshold and abs(delta) > cfg.drift_threshold:
                        decision = {
                            "gap": gap, "baseline": baseline,
                            "delta": delta, "threshold": True,
                        }
                    if use_cusum:
                        hi = max(
                            0.0,
                            state.cusum_hi.get(key, 0.0) + delta - cusum_k,
                        )
                        lo = max(
                            0.0,
                            state.cusum_lo.get(key, 0.0) - delta - cusum_k,
                        )
                        if max(hi, lo) > cusum_h:
                            if decision is None:
                                decision = {
                                    "gap": gap, "baseline": baseline,
                                    "delta": delta,
                                }
                            decision["cusum"] = hi if hi >= lo else -lo
                            hi = lo = 0.0
                        state.cusum_hi[key] = hi
                        state.cusum_lo[key] = lo
                    if use_spending:
                        baseline_counts = state.baseline_counts.get(key, {})
                        rows: list[int] = []
                        for group, n, positives in p.contrasts.get(key, ()):
                            base = baseline_counts.get(group)
                            if n > 0 and base is not None and base[0] > 0:
                                rows.append(len(trials_w))
                                successes_w.append(positives)
                                trials_w.append(n)
                                successes_b.append(base[1])
                                trials_b.append(base[0])
                        if rows:
                            look = state.looks.get(key, 0) + 1
                            state.looks[key] = look
                            if decision is None:
                                decision = {
                                    "gap": gap, "baseline": baseline,
                                    "delta": delta,
                                }
                            tests.append(
                                (decision, rows, cfg.spending_allowance(look))
                            )
                    if decision is not None:
                        p.decisions[key] = decision
                history.append(gap)
                buf, filled = buf_entry
                if filled == len(buf):
                    grown = np.empty(2 * filled)
                    grown[:filled] = buf
                    buf_entry[0] = buf = grown
                buf[filled] = gap
                buf_entry[1] = filled + 1
                if use_spending:
                    bucket = state.baseline_counts.setdefault(key, {})
                    for group, n, positives in p.contrasts.get(key, ()):
                        entry = bucket.setdefault(group, [0, 0])
                        entry[0] += n
                        entry[1] += positives

        if tests:
            z, p_values = batch_two_proportion_z(
                successes_w, trials_w, successes_b, trials_b
            )
            ci_low, ci_high = batch_wilson_interval(successes_w, trials_w)
            for decision, rows, allowance in tests:
                best = max(rows, key=lambda r: abs(float(z[r])))
                # Bonferroni across the metric's groups keeps the
                # per-look spend within its allowance
                p_adj = min(1.0, float(p_values[best]) * len(rows))
                if p_adj <= allowance:
                    decision["spending"] = (
                        float(z[best]),
                        p_adj,
                        float(ci_low[best]),
                        float(ci_high[best]),
                    )

        order = [d for d in MONITOR_DETECTORS if d in detectors]
        for p in pending:
            for key, decision in p.decisions.items():
                attribute, metric = key.split("/", 1)
                for detector in order:
                    event = None
                    if detector == "threshold" and decision.get("threshold"):
                        event = DriftEvent(
                            window=p.index,
                            attribute=attribute,
                            metric=metric,
                            value=decision["gap"],
                            baseline=decision["baseline"],
                            delta=decision["delta"],
                        )
                    elif detector == "spending" and "spending" in decision:
                        statistic, p_adj, low, high = decision["spending"]
                        event = DriftEvent(
                            window=p.index,
                            attribute=attribute,
                            metric=metric,
                            value=decision["gap"],
                            baseline=decision["baseline"],
                            delta=decision["delta"],
                            reason="spending",
                            statistic=statistic,
                            p_value=p_adj,
                            ci_low=low,
                            ci_high=high,
                        )
                    elif detector == "cusum" and "cusum" in decision:
                        event = DriftEvent(
                            window=p.index,
                            attribute=attribute,
                            metric=metric,
                            value=decision["gap"],
                            baseline=decision["baseline"],
                            delta=decision["delta"],
                            reason="cusum",
                            statistic=decision["cusum"],
                        )
                    if event is not None:
                        p.events.append(event)
                        break

    def _finalize_pending(
        self, pending: list[_Pending]
    ) -> list[WindowResult]:
        if not pending:
            return []
        self._resolve_drift(pending)
        metrics = get_metrics()
        results: list[WindowResult] = []
        for p in pending:
            state = p.state
            result = WindowResult(
                index=p.index,
                start_row=p.start,
                end_row=p.end,
                gaps=p.gaps,
                violations=p.violations,
                drift=tuple(p.events),
                stream=state.name,
            )
            state.windows.append(result)
            state.drift_events.extend(p.events)
            metrics.counter(
                "streaming.windows_evaluated", stream=state.name
            ).inc()
            if p.events:
                metrics.counter(
                    "streaming.drift_events", stream=state.name
                ).inc(len(p.events))
                from repro.observability.events import get_event_bus

                bus = get_event_bus()
                for event in p.events:
                    bus.publish(
                        "monitor.drift",
                        stream=state.name,
                        rows=[p.start, p.end],
                        **event.to_dict(),
                    )
            results.append(result)
        return results

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """JSON-able digest of the whole fleet's session so far."""
        streams = {
            name: {
                "windows": len(state.windows),
                "rows_seen": state.rows_seen,
                "drift_events": [
                    event.to_dict() for event in state.drift_events
                ],
                "results": [window.to_dict() for window in state.windows],
            }
            for name, state in self._streams.items()
        }
        return {
            "streams": streams,
            "window_size": self.monitor.window,
            "drift_threshold": self.monitor.drift_threshold,
            "detectors": list(self.monitor.detectors),
            "windows": sum(len(s.windows) for s in self._streams.values()),
            "drift_events": sum(
                len(s.drift_events) for s in self._streams.values()
            ),
        }

    def markdown(self) -> str:
        """A short fleet monitoring report (Section IV.E evidence trail)."""
        total_windows = sum(
            len(s.windows) for s in self._streams.values()
        )
        total_events = sum(
            len(s.drift_events) for s in self._streams.values()
        )
        lines = [
            "# Fleet monitoring report",
            "",
            f"- streams: {len(self._streams)}",
            f"- windows evaluated: {total_windows} "
            f"(window size {self.monitor.window})",
            f"- drift threshold: {self.monitor.drift_threshold}",
            f"- detectors: {', '.join(self.monitor.detectors)}",
            f"- drift events: {total_events}",
        ]
        for name, state in self._streams.items():
            if not state.drift_events:
                continue
            lines.append("")
            lines.append(f"## Stream `{name}`")
            lines.append("")
            for event in state.drift_events:
                suffix = (
                    "" if event.reason == "threshold"
                    else f" [{event.reason}]"
                )
                lines.append(
                    f"- window {event.window}: `{event.attribute}` "
                    f"{event.metric} gap {event.value:.4f} vs baseline "
                    f"{event.baseline:.4f} (Δ {event.delta:+.4f}){suffix}"
                )
        lines.append("")
        if total_events:
            lines.append(
                "Drifted metrics mean the last full audit no longer "
                "describes the live system; Section IV.E calls for a "
                "re-audit."
            )
        else:
            lines.append(
                "No metric drifted beyond the threshold; the standing "
                "audit remains representative."
            )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"MonitorFleet(protected={list(self.protected)}, "
            f"streams={len(self._streams)}, "
            f"window={self.monitor.window}, "
            f"detectors={list(self.monitor.detectors)})"
        )
