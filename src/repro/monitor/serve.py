"""Monitor serve mode: tail append-only shard spools into a fleet.

``repro monitor serve`` watches a *spool root* — a directory whose
immediate subdirectories are stream names, each an append-only feed of
shard files written by the service layer (or any producer)::

    spool/
      checkout/shard-000001.csv          + shard-000001.csv.schema.json
      checkout/shard-000002.packed/      (PR 8 packed columnar format)
      signup/shard-000001.csv

New shards are picked up on each poll, read in bounded-memory chunks
(:func:`repro.data.ooc.stream_chunks` for packed datasets,
:func:`repro.data.io.load_dataset` for CSV shards), and fed to the
:class:`~repro.monitor.engine.MonitorFleet` under the directory's
stream name.  Drift alerts flow through the PR 7 event bus with
``stream`` labels, and a minimal HTTP endpoint
(:func:`serve_http`) exposes the per-stream labeled metrics::

    GET /healthz                     fleet liveness + per-stream stats
    GET /metrics                     Prometheus text exposition (JSON
                                     behind ``Accept: application/json``)
    GET /events[?since=&kind=&stream=]  cursor-style alert feed

Shard-readiness convention: writers must create shards atomically
(write to a dotfile or ``*.tmp``/``*.partial`` name, then rename) —
the tailer skips those names, and skips directories until their packed
``dataset.json`` sidecar exists.  Consumed shard names are tracked in
memory for the lifetime of the service; restarting the tailer replays
the spool from the start (monitoring state is cheap to rebuild — it is
the *alerts* that are durable, via the event-bus sink).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.data.io import load_dataset
from repro.data.ooc import DEFAULT_CHUNK_ROWS, is_packed, stream_chunks
from repro.exceptions import AuditError
from repro.monitor.engine import MonitorFleet
from repro.observability.events import get_event_bus
from repro.observability.metrics import get_metrics
from repro.observability.promfmt import PROM_CONTENT_TYPE, render_prometheus

__all__ = ["MonitorService", "ShardSpool", "serve_http"]

#: ceiling on one /events response, mirroring the audit service's cap.
MAX_EVENTS = 500

#: suffixes a shard writer uses for not-yet-renamed work in progress.
_UNREADY_SUFFIXES = (".tmp", ".partial")


class ShardSpool:
    """One stream's append-only shard directory.

    Tracks which shard names were already consumed and surfaces new
    ready shards in name-sorted order (producers name shards
    monotonically — ``shard-000001``, ``shard-000002`` — so sort order
    is arrival order).
    """

    def __init__(self, name: str, path):
        self.name = name
        self.path = Path(path)
        self.consumed: set[str] = set()

    @staticmethod
    def _ready(entry: Path) -> bool:
        name = entry.name
        if name.startswith("."):
            return False
        if name.endswith(_UNREADY_SUFFIXES):
            return False
        if name.endswith(".schema.json"):
            return False  # CSV sidecar, not a shard
        if entry.is_dir():
            return is_packed(entry)
        return entry.is_file()

    def poll(self) -> list[Path]:
        """New ready shards since the last poll, oldest first."""
        fresh = sorted(
            entry
            for entry in self.path.iterdir()
            if entry.name not in self.consumed and self._ready(entry)
        )
        for entry in fresh:
            self.consumed.add(entry.name)
        return fresh

    def __repr__(self) -> str:
        return (
            f"ShardSpool(name={self.name!r}, "
            f"consumed={len(self.consumed)})"
        )


class MonitorService:
    """Tail a spool root into a :class:`MonitorFleet`.

    Parameters
    ----------
    fleet:
        The fleet receiving every shard's rows.
    root:
        Spool directory; each subdirectory is one stream.
    schema:
        Optional schema-JSON path applied to CSV shards that have no
        per-shard ``.schema.json`` sidecar (packed shards always carry
        their own).
    prediction_column:
        Column holding the model's decisions in each shard.  ``None``
        runs the fleet as a data audit over the labels themselves
        (``audits_labels=True`` fleets).
    chunk_rows:
        Rows per in-memory chunk when reading a shard.
    poll_interval:
        Seconds between spool scans in :meth:`run`.
    """

    def __init__(
        self,
        fleet: MonitorFleet,
        root,
        *,
        schema=None,
        prediction_column: str | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        poll_interval: float = 0.5,
    ):
        self.fleet = fleet
        self.root = Path(root)
        if not self.root.is_dir():
            raise AuditError(f"spool root {self.root} is not a directory")
        self.schema = None if schema is None else Path(schema)
        self.prediction_column = prediction_column
        if prediction_column is not None and fleet.audits_labels:
            raise AuditError(
                "a data-audit fleet reads no prediction column"
            )
        if prediction_column is None and not fleet.audits_labels:
            raise AuditError(
                "fleet expects predictions; pass prediction_column"
            )
        self.chunk_rows = int(chunk_rows)
        self.poll_interval = float(poll_interval)
        self.rows_ingested = 0
        self.shards_ingested = 0
        self._spools: dict[str, ShardSpool] = {}

    # -- spool scanning ------------------------------------------------------

    def _discover(self) -> list[ShardSpool]:
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and not entry.name.startswith("."):
                if entry.name not in self._spools:
                    self._spools[entry.name] = ShardSpool(entry.name, entry)
        return list(self._spools.values())

    def _open_shard(self, shard: Path):
        if shard.is_dir():
            return stream_chunks(shard, self.chunk_rows)
        sidecar = shard.with_suffix(shard.suffix + ".schema.json")
        schema_path = sidecar if sidecar.is_file() else self.schema
        dataset = load_dataset(shard, schema_path)
        return stream_chunks(dataset, self.chunk_rows)

    def _feed(self, stream: str, chunk) -> int:
        fleet = self.fleet
        label = fleet.label
        strata = fleet.config.strata
        n = chunk.n_rows
        fleet.observe(
            stream,
            y_true=None if label is None else chunk.column(label),
            predictions=(
                None
                if self.prediction_column is None
                else chunk.column(self.prediction_column)
            ),
            protected={
                name: chunk.column(name) for name in fleet.protected
            },
            strata=None if strata is None else chunk.column(strata),
        )
        return n

    def scan_once(self) -> int:
        """Ingest every new shard on every stream; returns rows fed."""
        rows = 0
        for spool in self._discover():
            for shard in spool.poll():
                for chunk in self._open_shard(shard):
                    rows += self._feed(spool.name, chunk)
                self.shards_ingested += 1
                get_metrics().counter(
                    "monitor.shards_ingested", stream=spool.name
                ).inc()
        self.rows_ingested += rows
        return rows

    def run(self, stop: threading.Event | None = None) -> int:
        """Poll the spool until ``stop`` is set; returns rows ingested.

        With no ``stop`` event the loop runs until interrupted — the
        CLI's serve mode passes the event its signal handlers set.
        """
        stop = stop if stop is not None else threading.Event()
        total = 0
        while not stop.is_set():
            total += self.scan_once()
            stop.wait(self.poll_interval)
        return total

    # -- status --------------------------------------------------------------

    def status(self) -> dict:
        """JSON-able liveness snapshot for ``GET /healthz``."""
        fleet = self.fleet
        return {
            "status": "ok",
            "root": str(self.root),
            "rows_ingested": self.rows_ingested,
            "shards_ingested": self.shards_ingested,
            "streams": {
                name: {
                    "windows": len(state.windows),
                    "rows_seen": state.rows_seen,
                    "buffered": state.buffered,
                    "drift_events": len(state.drift_events),
                }
                for name, state in (
                    (name, fleet.stream(name))
                    for name in fleet.stream_names
                )
            },
        }


class _MonitorHandler(BaseHTTPRequestHandler):
    """Read-only HTTP surface for a running monitor service."""

    server_version = "repro-monitor/1"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    def _send_bytes(self, status, body, content_type="application/json"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status, payload):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send_bytes(status, body)

    def do_GET(self):  # noqa: N802 — stdlib casing
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        if parts == ["healthz"]:
            return self._send_json(200, self.server.service.status())
        if parts == ["metrics"]:
            accept = self.headers.get("Accept") or ""
            if "application/json" in accept:
                return self._send_json(200, get_metrics().snapshot())
            body = render_prometheus(get_metrics()).encode()
            return self._send_bytes(200, body, content_type=PROM_CONTENT_TYPE)
        if parts == ["events"]:
            try:
                since = int((query.get("since") or ["0"])[0])
                limit = int((query.get("limit") or [str(MAX_EVENTS)])[0])
            except ValueError:
                return self._send_json(
                    400, {"error": "since and limit must be integers"}
                )
            bus = get_event_bus()
            events = bus.since(
                since,
                kind=(query.get("kind") or [None])[0],
                stream=(query.get("stream") or [None])[0],
                limit=min(limit, MAX_EVENTS),
            )
            return self._send_json(
                200,
                {
                    "events": [event.to_dict() for event in events],
                    "last_seq": bus.last_seq,
                    "capacity": bus.capacity,
                },
            )
        self._send_json(404, {"error": f"no route for {url.path}"})


class MonitorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, service: MonitorService, *, quiet=True):
        super().__init__(address, _MonitorHandler)
        self.service = service
        self.quiet = quiet

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve_http(
    service: MonitorService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> MonitorHTTPServer:
    """Expose a monitor service on a daemon-thread HTTP server.

    Returns the server (inspect ``server.port`` when ``port=0``); call
    ``server.shutdown()`` to stop — exactly what the CLI's
    ``repro monitor serve`` does on SIGTERM.
    """
    server = MonitorHTTPServer((host, port), service, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True, name="repro-monitor-httpd"
    )
    thread.start()
    return server
