"""Structural causal models over a networkx DAG.

A :class:`StructuralCausalModel` is a set of variables, each either
*exogenous* (a noise source with a sampling function) or *endogenous*
(a deterministic structural equation of its parents).  The model supports
the three operations counterfactual fairness needs (Kusner et al. 2017):

1. **sampling** — draw observational data;
2. **intervention** — ``do(A := a)``: replace a structural equation with a
   constant and recompute descendants;
3. **counterfactual** — abduction / action / prediction: recover each
   unit's exogenous noise from observed data (possible here because noise
   terms are explicit), intervene, and recompute.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import networkx as nx
import numpy as np

from repro._validation import check_positive_int, check_random_state
from repro.exceptions import CausalModelError

__all__ = ["StructuralCausalModel", "Variable"]


class Variable:
    """One SCM variable.

    Exogenous variables carry a ``sampler(rng, n) -> array``.  Endogenous
    variables carry an ``equation(parent_values: dict) -> array`` plus the
    tuple of parent names the equation reads.
    """

    def __init__(
        self,
        name: str,
        parents: tuple[str, ...] = (),
        equation: Callable[[Mapping[str, np.ndarray]], np.ndarray] | None = None,
        sampler: Callable[[np.random.Generator, int], np.ndarray] | None = None,
    ):
        if (equation is None) == (sampler is None):
            raise CausalModelError(
                f"variable {name!r} must have exactly one of equation/sampler"
            )
        if sampler is not None and parents:
            raise CausalModelError(
                f"exogenous variable {name!r} cannot have parents"
            )
        self.name = name
        self.parents = tuple(parents)
        self.equation = equation
        self.sampler = sampler

    @property
    def is_exogenous(self) -> bool:
        return self.sampler is not None


class StructuralCausalModel:
    """A collection of :class:`Variable` objects forming a DAG."""

    def __init__(self, variables: list[Variable]):
        self._variables = {v.name: v for v in variables}
        if len(self._variables) != len(variables):
            names = [v.name for v in variables]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise CausalModelError(f"duplicate variable names: {dupes}")
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._variables)
        for var in variables:
            for parent in var.parents:
                if parent not in self._variables:
                    raise CausalModelError(
                        f"variable {var.name!r} references unknown parent "
                        f"{parent!r}"
                    )
                self._graph.add_edge(parent, var.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise CausalModelError(f"structural equations contain a cycle: {cycle}")
        self._order = list(nx.topological_sort(self._graph))

    # -- introspection ---------------------------------------------------------

    @property
    def variable_names(self) -> list[str]:
        """All variable names in topological order."""
        return list(self._order)

    @property
    def exogenous_names(self) -> list[str]:
        return [n for n in self._order if self._variables[n].is_exogenous]

    @property
    def endogenous_names(self) -> list[str]:
        return [n for n in self._order if not self._variables[n].is_exogenous]

    def graph(self) -> nx.DiGraph:
        """A copy of the causal DAG."""
        return self._graph.copy()

    def descendants(self, name: str) -> set[str]:
        """Strict descendants of a variable in the DAG."""
        self._require(name)
        return set(nx.descendants(self._graph, name))

    def _require(self, name: str) -> Variable:
        if name not in self._variables:
            raise CausalModelError(
                f"unknown variable {name!r}; known: {sorted(self._variables)}"
            )
        return self._variables[name]

    # -- simulation --------------------------------------------------------------

    def sample(
        self,
        n: int,
        random_state: int | np.random.Generator | None = None,
        interventions: Mapping[str, object] | None = None,
        noise: Mapping[str, np.ndarray] | None = None,
    ) -> dict[str, np.ndarray]:
        """Draw ``n`` units from the (possibly intervened) model.

        Parameters
        ----------
        interventions:
            Mapping ``{variable: value}`` implementing ``do(variable := value)``.
            Values may be scalars (broadcast) or length-``n`` arrays.
        noise:
            Pre-drawn exogenous values, overriding the samplers; used by the
            abduction step of counterfactual inference.
        """
        n = check_positive_int(n, "n")
        rng = check_random_state(random_state)
        interventions = dict(interventions or {})
        for name in interventions:
            self._require(name)
        noise = dict(noise or {})

        values: dict[str, np.ndarray] = {}
        for name in self._order:
            var = self._variables[name]
            if name in interventions:
                values[name] = np.broadcast_to(
                    np.asarray(interventions[name]), (n,)
                ).copy()
            elif var.is_exogenous:
                if name in noise:
                    provided = np.asarray(noise[name])
                    if provided.shape != (n,):
                        raise CausalModelError(
                            f"noise for {name!r} must have shape ({n},), "
                            f"got {provided.shape}"
                        )
                    values[name] = provided.copy()
                else:
                    values[name] = np.asarray(var.sampler(rng, n))
            else:
                parent_values = {p: values[p] for p in var.parents}
                result = np.asarray(var.equation(parent_values))
                if result.shape != (n,):
                    raise CausalModelError(
                        f"equation for {name!r} returned shape {result.shape}, "
                        f"expected ({n},)"
                    )
                values[name] = result
        return values

    def intervene(
        self,
        n: int,
        interventions: Mapping[str, object],
        random_state: int | np.random.Generator | None = None,
    ) -> dict[str, np.ndarray]:
        """Convenience alias for :meth:`sample` with interventions."""
        return self.sample(n, random_state=random_state, interventions=interventions)

    # -- counterfactuals ----------------------------------------------------------

    def abduct(self, observed: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Recover exogenous noise from fully observed endogenous values.

        Requires invertible additive structure: each endogenous variable's
        equation must be writable as ``f(parents) + u`` where ``u`` is the
        unit's idiosyncratic deviation.  We recover ``u`` as the residual
        ``observed − f(parents)`` evaluated at the observed parent values.
        Exogenous variables present in ``observed`` are passed through.
        """
        observed = {k: np.asarray(v) for k, v in observed.items()}
        lengths = {k: len(v) for k, v in observed.items()}
        if len(set(lengths.values())) > 1:
            raise CausalModelError(f"observed arrays differ in length: {lengths}")
        missing = [n for n in self.endogenous_names if n not in observed]
        if missing:
            raise CausalModelError(
                f"abduction requires all endogenous variables observed; "
                f"missing {missing}"
            )

        noise: dict[str, np.ndarray] = {}
        for name in self.exogenous_names:
            if name in observed:
                noise[name] = observed[name]
                continue
            # The exogenous term must feed exactly one endogenous variable
            # additively for residual recovery to be well-defined.
            children = list(self._graph.successors(name))
            if len(children) != 1:
                raise CausalModelError(
                    f"cannot abduce exogenous {name!r}: expected exactly one "
                    f"child, found {children}"
                )
            child = self._variables[children[0]]
            parent_values = {}
            for parent in child.parents:
                if parent == name:
                    parent_values[parent] = np.zeros_like(
                        observed[child.name], dtype=float
                    )
                elif parent in observed:
                    parent_values[parent] = observed[parent]
                elif parent in noise:
                    parent_values[parent] = noise[parent]
                else:
                    raise CausalModelError(
                        f"abduction of {name!r} needs observed parent {parent!r}"
                    )
            baseline = np.asarray(child.equation(parent_values), dtype=float)
            noise[name] = np.asarray(observed[child.name], dtype=float) - baseline
        return noise

    def counterfactual(
        self,
        observed: Mapping[str, np.ndarray],
        interventions: Mapping[str, object],
    ) -> dict[str, np.ndarray]:
        """Unit-level counterfactuals via abduction → action → prediction.

        Returns the full set of variable values each unit *would* have had
        under the intervention, holding its exogenous noise fixed.
        """
        observed = {k: np.asarray(v) for k, v in observed.items()}
        n = len(next(iter(observed.values())))
        noise = self.abduct(observed)
        return self.sample(
            n,
            random_state=0,  # no randomness is actually consumed: all noise given
            interventions=interventions,
            noise=noise,
        )
