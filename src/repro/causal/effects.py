"""Causal effect decomposition: direct vs mediated discrimination.

The legal distinction at the heart of the paper's Section II — *direct*
discrimination (the protected attribute itself moves the decision) vs
*indirect* discrimination (facially neutral mediators carry the effect)
— has an exact causal-inference counterpart: the decomposition of the
total effect of A on the decision into a natural direct effect (NDE)
and a natural indirect effect (NIE) through the mediators.

Given an SCM and a predictor, :func:`effect_decomposition` estimates:

* **total effect**  TE  = E[Ŷ | do(A=1)] − E[Ŷ | do(A=0)]
* **natural direct effect**  NDE = E[Ŷ(A=1, M(A=0))] − E[Ŷ(A=0, M(A=0))]
  — flip A in the *predictor's inputs* while mediators keep their A=0
  values;
* **natural indirect effect** NIE = TE − NDE — the share of the
  disparity carried by the mediators (the "proxy channel").

A predictor that never reads A has NDE = 0 by construction; any
remaining TE is pure indirect discrimination, which is exactly the
paper's warning about fairness through unawareness.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive_int, check_random_state
from repro.causal.scm import StructuralCausalModel
from repro.exceptions import CausalModelError

__all__ = ["EffectDecomposition", "effect_decomposition"]


@dataclass(frozen=True)
class EffectDecomposition:
    """Total / direct / indirect effect of a protected attribute."""

    total_effect: float
    natural_direct_effect: float
    natural_indirect_effect: float
    baseline_rate: float
    treated_rate: float

    @property
    def indirect_share(self) -> float:
        """|NIE| / |TE| — how much of the disparity the mediators carry."""
        if self.total_effect == 0:
            return 0.0
        return abs(self.natural_indirect_effect) / abs(self.total_effect)

    def dominant_channel(self, threshold: float = 0.5) -> str:
        """``"indirect"`` when mediators carry ≥ ``threshold`` of the
        effect, else ``"direct"`` (the paper's doctrine mapping)."""
        return "indirect" if self.indirect_share >= threshold else "direct"

    def __repr__(self) -> str:
        return (
            f"EffectDecomposition(TE={self.total_effect:+.4f}, "
            f"NDE={self.natural_direct_effect:+.4f}, "
            f"NIE={self.natural_indirect_effect:+.4f})"
        )


def effect_decomposition(
    scm: StructuralCausalModel,
    protected: str,
    predictor: Callable[[Mapping[str, np.ndarray]], np.ndarray],
    n: int = 5000,
    treated_value: float = 1.0,
    baseline_value: float = 0.0,
    random_state: int | np.random.Generator | None = None,
) -> EffectDecomposition:
    """Decompose a predictor's disparity into direct and indirect effects.

    Parameters
    ----------
    scm:
        The domain model; ``protected`` must be one of its variables.
    predictor:
        Maps a dict of variable arrays to binary predictions.  It may or
        may not read ``protected`` directly — that is exactly what the
        decomposition measures.
    n:
        Monte-Carlo sample size.
    treated_value / baseline_value:
        The two protected-attribute levels compared.

    Notes
    -----
    The NDE world is constructed by simulating all mediators under
    ``do(A=baseline)`` and then overriding only the ``protected`` entry
    of the predictor's inputs with ``treated_value``.  Noise is shared
    across all three worlds (same exogenous draws), so the contrasts are
    unit-level.
    """
    check_positive_int(n, "n")
    if protected not in scm.variable_names:
        raise CausalModelError(
            f"unknown protected variable {protected!r}; known: "
            f"{scm.variable_names}"
        )
    rng = check_random_state(random_state)

    # One shared set of exogenous draws for all three worlds.
    seed_world = scm.sample(n, random_state=rng)
    noise = {name: seed_world[name] for name in scm.exogenous_names
             if name != protected}

    baseline_world = scm.sample(
        n, interventions={protected: baseline_value}, noise=noise
    )
    treated_world = scm.sample(
        n, interventions={protected: treated_value}, noise=noise
    )

    baseline_rate = float(np.mean(predictor(baseline_world)))
    treated_rate = float(np.mean(predictor(treated_world)))
    total = treated_rate - baseline_rate

    # NDE world: mediators from the baseline world, A flipped only in the
    # predictor's view.
    nde_inputs = dict(baseline_world)
    nde_inputs[protected] = np.full(n, float(treated_value))
    nde_rate = float(np.mean(predictor(nde_inputs)))
    nde = nde_rate - baseline_rate

    return EffectDecomposition(
        total_effect=total,
        natural_direct_effect=nde,
        natural_indirect_effect=total - nde,
        baseline_rate=baseline_rate,
        treated_rate=treated_rate,
    )
