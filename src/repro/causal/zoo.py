"""Canonical structural causal models used by examples and benchmarks.

Every model here keeps its exogenous noise terms explicit and additive so
that :meth:`StructuralCausalModel.abduct` can recover them exactly.
"""

from __future__ import annotations

from repro.causal.scm import StructuralCausalModel, Variable

__all__ = ["biased_hiring_scm", "law_school_scm", "HIRING_VARIABLES"]

#: variable names of :func:`biased_hiring_scm`, in topological order
HIRING_VARIABLES = (
    "sex",
    "u_experience",
    "u_skill",
    "experience",
    "skill_score",
)


def biased_hiring_scm(
    sex_effect_experience: float = -1.0,
    sex_effect_skill: float = -5.0,
    female_fraction: float = 0.5,
) -> StructuralCausalModel:
    """Hiring SCM in which sex causally influences the observed merit features.

    ``sex`` is exogenous binary (1 = female).  Experience and skill score
    each combine a sex effect (representing structural disadvantage, e.g.
    career interruptions) with independent noise:

    .. math::

        \\text{experience} = 5 + e_x \\cdot \\text{sex} + U_e,\\qquad
        \\text{skill} = 70 + e_s \\cdot \\text{sex} + U_s

    A predictor using experience/skill alone is therefore *not*
    counterfactually fair whenever the effects are non-zero: flipping sex
    changes the features, which changes the prediction.
    """
    return StructuralCausalModel([
        Variable(
            "sex",
            sampler=lambda rng, n: (rng.random(n) < female_fraction).astype(float),
        ),
        Variable("u_experience", sampler=lambda rng, n: rng.normal(0, 1.5, n)),
        Variable("u_skill", sampler=lambda rng, n: rng.normal(0, 8.0, n)),
        Variable(
            "experience",
            parents=("sex", "u_experience"),
            equation=lambda v: 5.0
            + sex_effect_experience * v["sex"]
            + v["u_experience"],
        ),
        Variable(
            "skill_score",
            parents=("sex", "u_skill"),
            equation=lambda v: 70.0 + sex_effect_skill * v["sex"] + v["u_skill"],
        ),
    ])


def law_school_scm(
    race_effect_gpa: float = -0.3,
    race_effect_lsat: float = -4.0,
    minority_fraction: float = 0.3,
) -> StructuralCausalModel:
    """Law-school-style SCM (Kusner et al.'s running example, simplified).

    Latent ``knowledge`` drives both GPA and LSAT; ``race`` (1 = minority)
    additionally shifts both observed scores, modelling structurally biased
    measurement.  A counterfactually fair predictor must rely on the part
    of GPA/LSAT attributable to knowledge, not to race.
    """
    return StructuralCausalModel([
        Variable(
            "race",
            sampler=lambda rng, n: (rng.random(n) < minority_fraction).astype(float),
        ),
        Variable("knowledge", sampler=lambda rng, n: rng.normal(0, 1, n)),
        Variable("u_gpa", sampler=lambda rng, n: rng.normal(0, 0.3, n)),
        Variable("u_lsat", sampler=lambda rng, n: rng.normal(0, 3.0, n)),
        Variable(
            "gpa",
            parents=("knowledge", "race", "u_gpa"),
            equation=lambda v: 3.0
            + 0.5 * v["knowledge"]
            + race_effect_gpa * v["race"]
            + v["u_gpa"],
        ),
        Variable(
            "lsat",
            parents=("knowledge", "race", "u_lsat"),
            equation=lambda v: 35.0
            + 5.0 * v["knowledge"]
            + race_effect_lsat * v["race"]
            + v["u_lsat"],
        ),
    ])
