"""Causal substrate: structural causal models and counterfactuals."""

from repro.causal.counterfactual import (
    CounterfactualResult,
    counterfactual_flip_rate,
    generate_counterfactual_pairs,
)
from repro.causal.effects import EffectDecomposition, effect_decomposition
from repro.causal.scm import StructuralCausalModel, Variable
from repro.causal.zoo import biased_hiring_scm, law_school_scm

__all__ = [
    "StructuralCausalModel",
    "Variable",
    "CounterfactualResult",
    "counterfactual_flip_rate",
    "generate_counterfactual_pairs",
    "EffectDecomposition",
    "effect_decomposition",
    "biased_hiring_scm",
    "law_school_scm",
]
