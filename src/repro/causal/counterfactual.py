"""Counterfactual generation and counterfactual-fairness auditing.

Implements the paper's Section III.G procedure literally: *"We change the
gender of the male individual to female (adjusting other features to this
change) and let the model predict again."*  The "adjusting other features"
step is what distinguishes a genuine counterfactual (computed through a
structural causal model) from the naive attribute flip of
:func:`repro.data.bias.swap_protected_values`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from repro._validation import check_probability
from repro.causal.scm import StructuralCausalModel
from repro.exceptions import CausalModelError

__all__ = ["CounterfactualResult", "counterfactual_flip_rate", "generate_counterfactual_pairs"]


class CounterfactualResult:
    """Outcome of a counterfactual-fairness audit.

    Attributes
    ----------
    flip_rate:
        Fraction of audited units whose prediction changed under the
        counterfactual protected value.
    flipped_mask:
        Boolean array marking the units that flipped.
    factual_predictions / counterfactual_predictions:
        The two binary prediction arrays being compared.
    """

    def __init__(
        self,
        factual_predictions: np.ndarray,
        counterfactual_predictions: np.ndarray,
        tolerance: float,
    ):
        self.factual_predictions = np.asarray(factual_predictions).astype(int)
        self.counterfactual_predictions = np.asarray(
            counterfactual_predictions
        ).astype(int)
        if self.factual_predictions.shape != self.counterfactual_predictions.shape:
            raise CausalModelError("prediction arrays must have equal shape")
        self.flipped_mask = (
            self.factual_predictions != self.counterfactual_predictions
        )
        self.flip_rate = float(np.mean(self.flipped_mask)) if len(
            self.flipped_mask
        ) else 0.0
        self.tolerance = tolerance

    @property
    def is_fair(self) -> bool:
        """True when the flip rate does not exceed the tolerance."""
        return self.flip_rate <= self.tolerance

    def __repr__(self) -> str:
        verdict = "fair" if self.is_fair else "unfair"
        return (
            f"CounterfactualResult(flip_rate={self.flip_rate:.4f}, "
            f"tolerance={self.tolerance}, verdict={verdict!r})"
        )


def generate_counterfactual_pairs(
    scm: StructuralCausalModel,
    observed: Mapping[str, np.ndarray],
    protected: str,
    counterfactual_value,
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """(factual, counterfactual) variable dictionaries for each unit.

    The factual world is ``observed`` itself; the counterfactual world is
    computed by abduction–action–prediction with ``do(protected := value)``,
    so every descendant of the protected attribute is adjusted consistently.
    """
    counterfactuals = scm.counterfactual(
        observed, {protected: counterfactual_value}
    )
    factual = {k: np.asarray(v) for k, v in observed.items()}
    return factual, counterfactuals


def counterfactual_flip_rate(
    scm: StructuralCausalModel,
    observed: Mapping[str, np.ndarray],
    protected: str,
    counterfactual_value,
    predictor: Callable[[Mapping[str, np.ndarray]], np.ndarray],
    tolerance: float = 0.0,
) -> CounterfactualResult:
    """Audit a predictor for counterfactual fairness.

    Parameters
    ----------
    scm:
        The assumed structural causal model of the domain.
    observed:
        Observed variable arrays (all endogenous variables present).
    protected:
        Name of the protected attribute to intervene on.
    counterfactual_value:
        Value assigned by the intervention (scalar or per-unit array).
    predictor:
        Callable mapping a dict of variable arrays to binary predictions —
        typically a closure over a fitted classifier that assembles its
        feature matrix from the dict.
    tolerance:
        Maximum acceptable flip rate (0 = the paper's strict definition).
    """
    check_probability(tolerance, "tolerance")
    factual, counterfactual = generate_counterfactual_pairs(
        scm, observed, protected, counterfactual_value
    )
    factual_pred = np.asarray(predictor(factual)).astype(int)
    counter_pred = np.asarray(predictor(counterfactual)).astype(int)
    return CounterfactualResult(factual_pred, counter_pred, tolerance)
