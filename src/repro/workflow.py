"""Compliance workflow: the paper's Section V best practices, end to end.

The paper closes by calling for "a set of systematic guidelines for the
design, deployment and assessment of fairness methods on AI systems, on
real-world use cases."  :func:`run_compliance_workflow` is that
guideline as a function.  Given a use-case profile, a dataset, and
(optionally) model outputs, it:

1. resolves the applicable statutes for every protected attribute
   (Section II);
2. ranks fairness definitions for the use case with written rationale
   (Section IV criteria) and lists the cross-cutting risk flags;
3. runs the full audit battery, intersections included (Section III
   definitions + IV.C drill-down);
4. cross-checks the audit against the recommendation — the headline
   verdict is driven by the metrics the criteria engine ranked for
   *this* use case, not by a fixed default;
5. assembles everything into a :class:`ComplianceDossier` that renders
   to a single markdown document.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.audit import (
    _UNSET,
    _resolve_config,
    AuditReport,
    FairnessAudit,
)
from repro.core.config import AuditConfig
from repro.core.criteria import (
    Recommendation,
    RiskFlag,
    UseCaseProfile,
    recommend_metrics,
    risk_flags,
)
from repro.core.legal import Statute, statutes_protecting
from repro.core.report import render_markdown
from repro.data.dataset import TabularDataset
from repro.exceptions import AuditError
from repro.observability.provenance import ProvenanceRecord
from repro.robustness import ExecutionPolicy, StageRunner

__all__ = ["ComplianceDossier", "run_compliance_workflow"]


def _dataclass_to_dict(value) -> dict:
    """Flat dataclass → JSON-able dict (tuples become lists)."""
    payload = {}
    for f in dataclasses.fields(value):
        item = getattr(value, f.name)
        payload[f.name] = list(item) if isinstance(item, tuple) else item
    return payload


def _dataclass_from_dict(cls, payload: dict):
    """Rebuild a flat dataclass, restoring list fields to tuples."""
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in payload:
            continue
        item = payload[f.name]
        kwargs[f.name] = tuple(item) if isinstance(item, list) else item
    return cls(**kwargs)


@dataclass
class ComplianceDossier:
    """Everything a fairness review of one deployment produces."""

    profile: UseCaseProfile
    statutes: dict  # attribute -> list[Statute]
    recommendations: list
    risks: list
    audit: AuditReport
    primary_metric: str
    primary_finding_satisfied: bool | None
    degradations: list = field(default_factory=list)
    provenance: ProvenanceRecord | None = None

    @property
    def verdict(self) -> str:
        """``"pass"``, ``"fail"``, or ``"inconclusive"`` on the primary
        (criteria-recommended) metric."""
        if self.primary_finding_satisfied is None:
            return "inconclusive"
        return "pass" if self.primary_finding_satisfied else "fail"

    @property
    def degraded(self) -> bool:
        """True when any workflow or audit stage errored or timed out.

        A degraded dossier is partial evidence: every missing piece is
        itemised in :attr:`degradations` so a reviewer can see exactly
        what the verdict does — and does not — rest on.
        """
        return bool(self.degradations)

    def to_dict(self) -> dict:
        """JSON-able dict of the full dossier (inverse of :meth:`from_dict`)."""
        from repro.core.serialize import report_to_dict

        return {
            "profile": _dataclass_to_dict(self.profile),
            "statutes": {
                attribute: [_dataclass_to_dict(s) for s in statutes]
                for attribute, statutes in self.statutes.items()
            },
            "recommendations": [
                _dataclass_to_dict(r) for r in self.recommendations
            ],
            "risks": [_dataclass_to_dict(r) for r in self.risks],
            "audit": report_to_dict(self.audit),
            "primary_metric": self.primary_metric,
            "primary_finding_satisfied": self.primary_finding_satisfied,
            "verdict": self.verdict,
            "degradations": list(self.degradations),
            "provenance": (
                None if self.provenance is None else self.provenance.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ComplianceDossier":
        """Rebuild a dossier written by :meth:`to_dict`.

        ``verdict`` is derived, not stored; everything else round-trips,
        so ``ComplianceDossier.from_dict(d.to_dict()).to_dict() ==
        d.to_dict()``.
        """
        from repro.core.serialize import report_from_dict

        provenance = payload.get("provenance")
        return cls(
            profile=_dataclass_from_dict(UseCaseProfile, payload["profile"]),
            statutes={
                attribute: [
                    _dataclass_from_dict(Statute, s) for s in statutes
                ]
                for attribute, statutes in payload["statutes"].items()
            },
            recommendations=[
                _dataclass_from_dict(Recommendation, r)
                for r in payload["recommendations"]
            ],
            risks=[
                _dataclass_from_dict(RiskFlag, r) for r in payload["risks"]
            ],
            audit=report_from_dict(payload["audit"]),
            primary_metric=payload["primary_metric"],
            primary_finding_satisfied=payload["primary_finding_satisfied"],
            degradations=list(payload.get("degradations", [])),
            provenance=(
                None
                if provenance is None
                else ProvenanceRecord.from_dict(provenance)
            ),
        )

    def to_markdown(self) -> str:
        """Render the dossier as one reviewable document."""
        lines = [
            f"# Compliance dossier — {self.profile.name}",
            "",
            f"- sector: {self.profile.sector}",
            f"- jurisdiction: {self.profile.jurisdiction.upper()}",
            f"- primary metric (criteria-selected): `{self.primary_metric}`",
            f"- **verdict on primary metric: {self.verdict.upper()}**",
            "",
        ]
        if self.degraded:
            lines.append(
                "## Degradations (partial evidence — paper §V)"
            )
            lines.append("")
            lines.append(
                "_The following stages errored, timed out, or were "
                "skipped; their results are missing from this dossier._"
            )
            lines.append("")
            for entry in self.degradations:
                lines.append(
                    f"- stage `{entry['stage']}`: "
                    f"{entry['status'].upper()} ({entry['error_type']}) — "
                    f"{entry['error']} [attempts={entry['attempts']}]"
                )
                for attempt in entry.get("attempt_log", [])[:-1]:
                    lines.append(
                        f"  - attempt {attempt['attempt']}: "
                        f"{attempt['error_type']} after "
                        f"{attempt['elapsed']:.3f}s; retried with "
                        f"{attempt['backoff']:g}s backoff"
                    )
            lines.append("")
        if self.provenance is not None:
            lines.append("## Provenance (audit trail)")
            lines.append("")
            lines.extend(self.provenance.markdown_lines())
            lines.append("")
        lines += [
            "## Applicable statutes (paper §II)",
            "",
        ]
        for attribute, statutes in self.statutes.items():
            lines.append(f"### Protected attribute `{attribute}`")
            if not statutes:
                lines.append(
                    "- no cataloged statute matches this attribute/sector; "
                    "verify the attribute naming against the catalog"
                )
            for statute in statutes:
                lines.append(f"- {statute.name} ({statute.year})")
            lines.append("")

        lines.append("## Metric selection (paper §IV criteria)")
        lines.append("")
        for rec in self.recommendations:
            marker = "" if rec.feasible else " **[infeasible]**"
            lines.append(
                f"- {rec.score:+.1f} `{rec.metric}` "
                f"[{rec.equality_concept}]{marker}"
            )
            for reason in rec.rationale:
                lines.append(f"  - {reason}")
            for blocker in rec.blockers:
                lines.append(f"  - blocked: {blocker}")
        lines.append("")

        lines.append("## Cross-cutting risks (paper §IV.B–IV.F)")
        lines.append("")
        for flag in self.risks:
            lines.append(f"- **[{flag.paper_section}] {flag.risk}** — "
                         f"{flag.advice}")
            if flag.tooling:
                lines.append(f"  - tooling: {', '.join(flag.tooling)}")
        lines.append("")

        lines.append("## Audit")
        lines.append("")
        lines.append(render_markdown(self.audit))
        return "\n".join(lines)


def _resolve_statutes(dataset: TabularDataset, profile: UseCaseProfile) -> dict:
    """Applicable statutes per protected attribute (paper §II)."""
    statutes = {}
    for attribute in dataset.schema.protected_names:
        column = dataset.schema[attribute]
        hits = []
        seen = set()
        # Attribute names double as protected-attribute terms ("sex",
        # "race"), and schema statute_tags name statute keys directly.
        for statute in statutes_protecting(
            attribute, sector=profile.sector,
            jurisdiction=None,
        ):
            if statute.key not in seen:
                hits.append(statute)
                seen.add(statute.key)
        from repro.core.legal import STATUTES

        for tag in column.statute_tags:
            statute = STATUTES.get(tag)
            if statute is not None and statute.key not in seen:
                hits.append(statute)
                seen.add(statute.key)
        statutes[attribute] = hits
    return statutes


def run_compliance_workflow(
    dataset: TabularDataset,
    profile: UseCaseProfile,
    predictions=None,
    probabilities=None,
    tolerance=_UNSET,
    strata=_UNSET,
    policy=_UNSET,
    faults=_UNSET,
    tracer=_UNSET,
    *,
    config: AuditConfig | None = None,
) -> ComplianceDossier:
    """Execute the full Section V workflow on one deployment.

    Settings come from ``config`` (an
    :class:`~repro.core.config.AuditConfig`, the same object the audit
    and streaming entry points take); the individual
    ``tolerance``/``strata``/``policy``/``faults``/``tracer`` keywords
    are deprecated shims that override the matching config fields with a
    :class:`DeprecationWarning`.

    The *primary metric* is the highest-ranked feasible recommendation
    that the audit battery can actually evaluate on this dataset; its
    verdict headlines the dossier.

    Every stage — statute resolution, metric recommendation, risk flags,
    the audit battery, the primary verdict — runs supervised under
    ``policy``.  Under the default fail-open policy a failed stage is
    recorded in the dossier's ``degradations`` and the workflow carries
    on with that piece missing; in particular, when the primary metric's
    stage failed the verdict becomes ``"inconclusive"`` rather than a
    crash.  A fail-closed policy (``fail_fast=True``) raises
    :class:`~repro.exceptions.DegradedRunError` on the first failure
    instead.  ``faults`` is the chaos-testing injection hook, threaded
    through to the audit battery's per-metric stages; ``tracer`` the
    observability hook — one ``workflow.run`` root span with a child
    span per supervised stage (defaults to the process-current tracer).
    """
    from repro.observability.trace import get_tracer

    config = _resolve_config(
        config,
        {
            "tolerance": tolerance,
            "strata": strata,
            "policy": policy,
            "faults": faults,
            "tracer": tracer,
        },
    )
    tracer = config.tracer if config.tracer is not None else get_tracer()
    # Pin the resolved tracer so the audit's spans nest under this root
    # even when a process-current tracer is installed mid-run.
    config = config.replace(tracer=tracer)
    runner = StageRunner(
        config.policy if config.policy is not None else ExecutionPolicy(),
        faults=config.faults, tracer=tracer,
    )

    with tracer.span(
        "workflow.run",
        use_case=profile.name,
        sector=profile.sector,
        jurisdiction=profile.jurisdiction,
        n_rows=dataset.n_rows,
    ):
        outcome = runner.run("statutes", _resolve_statutes, dataset, profile)
        statutes = (
            outcome.value
            if outcome.ok
            else {a: [] for a in dataset.schema.protected_names}
        )

        outcome = runner.run("recommendations", recommend_metrics, profile)
        recommendations = outcome.value if outcome.ok else []

        outcome = runner.run("risk_flags", risk_flags, profile)
        risks = outcome.value if outcome.ok else []

        def _run_audit() -> AuditReport:
            return FairnessAudit(
                dataset,
                predictions=predictions,
                probabilities=probabilities,
                config=config,
            ).run()

        outcome = runner.run("audit", _run_audit)
        if outcome.ok:
            audit = outcome.value
        else:
            audit = AuditReport(
                dataset_summary={
                    "n_rows": dataset.n_rows,
                    "protected_attributes": list(
                        dataset.schema.protected_names
                    ),
                    "audits_labels": predictions is None,
                    "strata": config.strata,
                },
                tolerance=config.tolerance,
            )

        outcome = runner.run(
            "primary_verdict", _primary_verdict, recommendations, audit
        )
        if outcome.ok:
            primary_metric, satisfied = outcome.value
        else:
            # The criteria-selected metric could not be evaluated: the paper's
            # position is that missing evidence yields "inconclusive", never a
            # silently-defaulted verdict.
            primary_metric = next(
                (r.metric for r in recommendations if r.feasible), "unknown"
            )
            satisfied = None

    return ComplianceDossier(
        profile=profile,
        statutes=statutes,
        recommendations=recommendations,
        risks=risks,
        audit=audit,
        primary_metric=primary_metric,
        primary_finding_satisfied=satisfied,
        degradations=runner.degradations + list(audit.degradations),
        provenance=ProvenanceRecord.collect(
            dataset, config.policy, runner, tracer=tracer
        ),
    )


def _primary_verdict(
    recommendations: list, audit: AuditReport
) -> tuple[str, bool | None]:
    """First feasible recommendation the audit evaluated, and its verdict.

    When the top recommendation was skipped by the audit (e.g. the
    counterfactual metric, which the battery cannot run without an SCM),
    fall through to the next; a dossier with *no* evaluable recommended
    metric is a configuration error worth raising, not hiding.
    """
    for rec in recommendations:
        if not rec.feasible:
            continue
        verdicts = [
            f.satisfied
            for f in audit.all_findings()
            if f.metric == rec.metric and f.satisfied is not None
        ]
        if verdicts:
            return rec.metric, all(verdicts)
    raise AuditError(
        "no criteria-recommended metric could be evaluated by the audit; "
        "check the dataset roles and audit configuration"
    )
