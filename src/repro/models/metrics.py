"""Standard (fairness-agnostic) classification metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    check_array_1d,
    check_binary_array,
    check_same_length,
)
from repro.exceptions import ValidationError

__all__ = [
    "ConfusionMatrix",
    "confusion_matrix",
    "accuracy",
    "precision",
    "recall",
    "false_positive_rate",
    "f1_score",
    "balanced_accuracy",
    "roc_curve",
    "roc_auc",
    "log_loss",
    "brier_score",
]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion-matrix counts with derived rates.

    Rates on empty denominators are returned as ``nan`` rather than
    raising, because audits routinely slice into small subgroups where a
    cell can legitimately be empty (the Section IV.C sparsity issue).
    """

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def n(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.n if self.n else float("nan")

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else float("nan")

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else float("nan")

    # true-positive rate is recall; alias for fairness-metric readability
    true_positive_rate = recall

    @property
    def false_positive_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else float("nan")

    @property
    def false_negative_rate(self) -> float:
        denom = self.tp + self.fn
        return self.fn / denom if denom else float("nan")

    @property
    def true_negative_rate(self) -> float:
        denom = self.fp + self.tn
        return self.tn / denom if denom else float("nan")

    @property
    def positive_rate(self) -> float:
        """P(prediction = +): the selection rate used by parity metrics."""
        return (self.tp + self.fp) / self.n if self.n else float("nan")


def confusion_matrix(y_true, y_pred) -> ConfusionMatrix:
    """Counts of TP/FP/TN/FN for binary arrays."""
    y_true = check_binary_array(y_true, "y_true")
    y_pred = check_binary_array(y_pred, "y_pred")
    check_same_length(("y_true", y_true), ("y_pred", y_pred))
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return ConfusionMatrix(tp=tp, fp=fp, tn=tn, fn=fn)


def accuracy(y_true, y_pred) -> float:
    """Fraction of correct predictions."""
    return confusion_matrix(y_true, y_pred).accuracy


def precision(y_true, y_pred) -> float:
    """TP / (TP + FP); nan when nothing is predicted positive."""
    return confusion_matrix(y_true, y_pred).precision


def recall(y_true, y_pred) -> float:
    """TP / (TP + FN); nan when there are no actual positives."""
    return confusion_matrix(y_true, y_pred).recall


def false_positive_rate(y_true, y_pred) -> float:
    """FP / (FP + TN); nan when there are no actual negatives."""
    return confusion_matrix(y_true, y_pred).false_positive_rate


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall."""
    cm = confusion_matrix(y_true, y_pred)
    p, r = cm.precision, cm.recall
    if np.isnan(p) or np.isnan(r) or (p + r) == 0:
        return float("nan")
    return 2.0 * p * r / (p + r)


def balanced_accuracy(y_true, y_pred) -> float:
    """Mean of TPR and TNR; robust to class imbalance."""
    cm = confusion_matrix(y_true, y_pred)
    return (cm.recall + cm.true_negative_rate) / 2.0


def roc_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) sweeping the decision threshold.

    Thresholds are the distinct score values in decreasing order, with a
    leading ``inf`` so the curve starts at (0, 0).
    """
    y = check_binary_array(y_true, "y_true")
    s = check_array_1d(scores, "scores").astype(float)
    check_same_length(("y_true", y), ("scores", s))
    n_pos = int(y.sum())
    n_neg = len(y) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("roc_curve requires both classes in y_true")

    order = np.argsort(-s, kind="mergesort")
    sorted_scores = s[order]
    sorted_y = y[order]
    distinct = np.flatnonzero(np.diff(sorted_scores) != 0)
    cut_points = np.concatenate([distinct, [len(y) - 1]])
    tps = np.cumsum(sorted_y)[cut_points]
    fps = (cut_points + 1) - tps
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_points]])
    return fpr, tpr, thresholds


def roc_auc(y_true, scores) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, __ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))


def log_loss(y_true, probabilities, eps: float = 1e-12) -> float:
    """Mean negative log likelihood of binary labels under probabilities."""
    y = check_binary_array(y_true, "y_true")
    p = check_array_1d(probabilities, "probabilities").astype(float)
    check_same_length(("y_true", y), ("probabilities", p))
    p = np.clip(p, eps, 1.0 - eps)
    return float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))


def brier_score(y_true, probabilities) -> float:
    """Mean squared error between probabilities and binary labels."""
    y = check_binary_array(y_true, "y_true")
    p = check_array_1d(probabilities, "probabilities").astype(float)
    check_same_length(("y_true", y), ("probabilities", p))
    return float(np.mean((p - y) ** 2))
