"""Model persistence: a JSON-serialisable linear scoring pipeline.

Audits outlive Python sessions; so must the models they audited.
:class:`LinearPipeline` bundles the standardiser and logistic regression
used throughout the examples into one object with an exact JSON
round-trip — enough for the CLI's train/predict loop and for archiving
the model a compliance dossier refers to.
"""

from __future__ import annotations

import json
import logging

import numpy as np

from repro.data.dataset import TabularDataset
from repro.exceptions import NotFittedError, ValidationError
from repro.models.logistic import LogisticRegression
from repro.models.preprocessing import Standardizer
from repro.observability.metrics import get_metrics
from repro.observability.trace import get_tracer

__all__ = ["LinearPipeline"]

_LOG = logging.getLogger(__name__)

_FORMAT = "repro.linear_pipeline.v1"


class LinearPipeline:
    """Standardizer + LogisticRegression with JSON round-trip.

    The pipeline records the feature-column layout it was fitted on
    (including one-hot expansion), so loading and applying it to a
    dataset with a different schema fails loudly instead of silently
    mis-aligning columns.
    """

    def __init__(self, l2: float = 1e-3, max_iter: int = 800):
        self._scaler = Standardizer()
        self._model = LogisticRegression(l2=l2, max_iter=max_iter)
        self._feature_names: list[str] | None = None

    # -- training / scoring ------------------------------------------------

    def fit(self, dataset: TabularDataset) -> "LinearPipeline":
        """Fit on a dataset's features and labels."""
        if dataset.schema.label_name is None:
            raise ValidationError("dataset must carry labels to train on")
        with get_tracer().span(
            "pipeline.fit", n_rows=dataset.n_rows,
        ), get_metrics().timer("pipeline.fit"):
            X = self._scaler.fit_transform(dataset.feature_matrix())
            self._model.fit(X, dataset.labels())
            self._feature_names = dataset.feature_matrix_names()
        _LOG.info(
            "fitted LinearPipeline on %d rows × %d feature columns",
            dataset.n_rows, len(self._feature_names),
        )
        return self

    def _check_layout(self, dataset: TabularDataset) -> None:
        if self._feature_names is None:
            raise NotFittedError("LinearPipeline must be fitted first")
        names = dataset.feature_matrix_names()
        if names != self._feature_names:
            raise ValidationError(
                "dataset feature layout does not match the fitted model: "
                f"expected {self._feature_names}, got {names}"
            )

    def predict_proba(self, dataset: TabularDataset) -> np.ndarray:
        self._check_layout(dataset)
        with get_tracer().span(
            "pipeline.predict", n_rows=dataset.n_rows,
        ), get_metrics().timer("pipeline.predict"):
            X = self._scaler.transform(dataset.feature_matrix())
            return self._model.predict_proba(X)

    def predict(self, dataset: TabularDataset) -> np.ndarray:
        return (self.predict_proba(dataset) >= self._model.threshold).astype(int)

    @property
    def feature_names(self) -> list[str]:
        if self._feature_names is None:
            raise NotFittedError("LinearPipeline must be fitted first")
        return list(self._feature_names)

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Exact JSON-able representation of the fitted pipeline."""
        if self._feature_names is None:
            raise NotFittedError("cannot serialise an unfitted pipeline")
        return {
            "format": _FORMAT,
            "feature_names": self._feature_names,
            "scaler": {
                "mean": self._scaler._mean.tolist(),
                "scale": self._scaler._scale.tolist(),
            },
            "model": {
                "coef": self._model.coef_.tolist(),
                "intercept": self._model.intercept_,
                "threshold": self._model.threshold,
                "l2": self._model.l2,
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LinearPipeline":
        """Rebuild a pipeline saved by :meth:`to_dict`."""
        if payload.get("format") != _FORMAT:
            raise ValidationError(
                f"unsupported model payload format {payload.get('format')!r}; "
                f"expected {_FORMAT!r}"
            )
        pipeline = cls(l2=float(payload["model"].get("l2", 1e-3)))
        pipeline._feature_names = list(payload["feature_names"])
        pipeline._scaler._mean = np.asarray(payload["scaler"]["mean"], float)
        pipeline._scaler._scale = np.asarray(payload["scaler"]["scale"], float)
        model = pipeline._model
        model.coef_ = np.asarray(payload["model"]["coef"], float)
        model.intercept_ = float(payload["model"]["intercept"])
        model.threshold = float(payload["model"].get("threshold", 0.5))
        model._n_features = len(model.coef_)
        model._fitted = True
        return pipeline

    def save(self, path) -> None:
        """Write the pipeline to a JSON file."""
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path) -> "LinearPipeline":
        """Read a pipeline written by :meth:`save`."""
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text()))
