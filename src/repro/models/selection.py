"""Fairness-aware model evaluation: cross-validation with joint metrics.

Model selection that looks only at accuracy silently picks the most
biased model whenever bias is predictive (which biased labels make it).
:func:`cross_validate_fairness` evaluates a model factory with k-fold
cross-validation, reporting accuracy *and* demographic-parity gap (and
equal-opportunity gap when labels are trusted) per fold, so the
selection decision can weigh both — the IV.A trade-off at model-choice
time rather than after deployment.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_positive_int, check_random_state
from repro.data.dataset import TabularDataset
from repro.exceptions import InsufficientDataError, MetricError, ValidationError
from repro.models.base import Classifier
from repro.models.metrics import accuracy
from repro.models.preprocessing import Standardizer

__all__ = ["FoldResult", "CrossValidationResult", "cross_validate_fairness"]


@dataclass(frozen=True)
class FoldResult:
    """Metrics of one cross-validation fold."""

    fold: int
    accuracy: float
    dp_gap: float
    eo_gap: float | None


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregated k-fold results."""

    folds: tuple = field(default_factory=tuple)

    def mean_accuracy(self) -> float:
        return float(np.mean([f.accuracy for f in self.folds]))

    def mean_dp_gap(self) -> float:
        return float(np.mean([f.dp_gap for f in self.folds]))

    def mean_eo_gap(self) -> float:
        values = [f.eo_gap for f in self.folds if f.eo_gap is not None]
        return float(np.mean(values)) if values else float("nan")

    def std_dp_gap(self) -> float:
        return float(np.std([f.dp_gap for f in self.folds]))

    def dominates(self, other: "CrossValidationResult",
                  slack: float = 0.0) -> bool:
        """Weakly better on both axes (accuracy ↑, DP gap ↓), strictly on
        one; ``slack`` tolerates noise-level differences."""
        acc_ge = self.mean_accuracy() >= other.mean_accuracy() - slack
        gap_le = self.mean_dp_gap() <= other.mean_dp_gap() + slack
        strictly = (
            self.mean_accuracy() > other.mean_accuracy() + slack
            or self.mean_dp_gap() < other.mean_dp_gap() - slack
        )
        return acc_ge and gap_le and strictly


def cross_validate_fairness(
    model_factory: Callable[[], Classifier],
    dataset: TabularDataset,
    attribute: str | None = None,
    n_folds: int = 5,
    random_state: int | np.random.Generator | None = None,
) -> CrossValidationResult:
    """k-fold CV reporting accuracy and fairness gaps per fold.

    Folds are stratified by the protected attribute so every fold
    contains both groups.  The equal-opportunity gap is reported per
    fold when computable (both groups have actual positives in the
    fold), else None for that fold.
    """
    # Imported here rather than at module level: repro.core.metrics
    # itself imports from repro.models (calibration), so a top-level
    # import would create a package-initialisation cycle.
    from repro.core.metrics import demographic_parity, equal_opportunity

    check_positive_int(n_folds, "n_folds")
    if n_folds < 2:
        raise ValidationError("n_folds must be at least 2")
    if dataset.schema.label_name is None:
        raise ValidationError("dataset must carry labels")
    if attribute is None:
        protected = dataset.schema.protected_names
        if len(protected) != 1:
            raise ValidationError(
                "attribute must be named when the dataset has "
                f"{len(protected)} protected columns"
            )
        attribute = protected[0]
    rng = check_random_state(random_state)

    groups = dataset.column(attribute)
    # stratified fold assignment: shuffle within each group, deal in
    # round-robin so group shares match across folds
    assignment = np.empty(dataset.n_rows, dtype=int)
    for value in np.unique(groups):
        members = rng.permutation(np.flatnonzero(groups == value))
        assignment[members] = np.arange(len(members)) % n_folds

    folds = []
    for fold in range(n_folds):
        test_mask = assignment == fold
        train = dataset.take(~test_mask)
        test = dataset.take(test_mask)
        if test.n_rows == 0 or train.n_rows == 0:
            raise ValidationError(
                f"fold {fold} is empty; reduce n_folds for this dataset"
            )
        scaler = Standardizer()
        model = model_factory()
        model.fit(
            scaler.fit_transform(train.feature_matrix()), train.labels()
        )
        preds = model.predict(scaler.transform(test.feature_matrix()))
        fold_groups = test.column(attribute)
        fold_labels = test.labels()

        dp_gap = demographic_parity(preds, fold_groups).gap
        try:
            eo_gap = equal_opportunity(fold_labels, preds, fold_groups).gap
        except (InsufficientDataError, MetricError):
            eo_gap = None
        folds.append(FoldResult(
            fold=fold,
            accuracy=float(accuracy(fold_labels, preds)),
            dp_gap=float(dp_gap),
            eo_gap=None if eo_gap is None else float(eo_gap),
        ))
    return CrossValidationResult(folds=tuple(folds))
