"""Probability calibration: Platt scaling, reliability curves, ECE.

Calibration-within-groups is one of the fairness definitions the paper's
discussion section singles out as legally relevant; the primitives here
back :func:`repro.core.metrics.calibration_within_groups`.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_array_1d,
    check_binary_array,
    check_positive_int,
    check_same_length,
)
from repro.exceptions import NotFittedError, ValidationError
from repro.models.base import Classifier
from repro.models.logistic import sigmoid

__all__ = [
    "PlattCalibrator",
    "CalibratedClassifier",
    "reliability_curve",
    "expected_calibration_error",
]


class PlattCalibrator:
    """Univariate logistic (Platt) recalibration of scores.

    Fits ``P(y=1|s) = sigmoid(a*s + b)`` by gradient descent on log loss.
    """

    def __init__(self, learning_rate: float = 0.5, max_iter: int = 3000):
        self.learning_rate = float(learning_rate)
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, scores, y) -> "PlattCalibrator":
        scores = check_array_1d(scores, "scores").astype(float)
        y = check_binary_array(y, "y")
        check_same_length(("scores", scores), ("y", y))
        if len(np.unique(y)) < 2:
            raise ValidationError("calibration requires both classes in y")
        a, b = 1.0, 0.0
        n = len(y)
        for __ in range(self.max_iter):
            p = sigmoid(a * scores + b)
            error = p - y
            grad_a = float((error * scores).sum() / n)
            grad_b = float(error.sum() / n)
            a -= self.learning_rate * grad_a
            b -= self.learning_rate * grad_b
            if max(abs(grad_a), abs(grad_b)) < 1e-7:
                break
        self.a_, self.b_ = a, b
        return self

    def transform(self, scores) -> np.ndarray:
        if self.a_ is None:
            raise NotFittedError("PlattCalibrator must be fitted first")
        scores = check_array_1d(scores, "scores").astype(float)
        return sigmoid(self.a_ * scores + self.b_)


class CalibratedClassifier(Classifier):
    """Wrap a fitted classifier with a Platt recalibration layer.

    ``fit`` recalibrates on the provided (held-out) data; the base model
    itself is not refitted.
    """

    def __init__(self, base: Classifier):
        super().__init__()
        if not base.is_fitted:
            raise NotFittedError("base classifier must be fitted before wrapping")
        self.base = base
        self._calibrator = PlattCalibrator()

    def _fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray) -> None:
        raw = self.base.predict_proba(X)
        self._calibrator.fit(raw, y)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._calibrator.transform(self.base.predict_proba(X))


def reliability_curve(
    y_true, probabilities, n_bins: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(bin mean predicted prob, bin observed positive rate, bin counts).

    Bins are equal-width over [0, 1]; empty bins are dropped.
    """
    y = check_binary_array(y_true, "y_true")
    p = check_array_1d(probabilities, "probabilities").astype(float)
    check_same_length(("y_true", y), ("probabilities", p))
    n_bins = check_positive_int(n_bins, "n_bins")
    if np.any((p < 0) | (p > 1)):
        raise ValidationError("probabilities must lie in [0, 1]")

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bin_index = np.clip(np.digitize(p, edges[1:-1]), 0, n_bins - 1)
    mean_pred, observed, counts = [], [], []
    for b in range(n_bins):
        mask = bin_index == b
        if not mask.any():
            continue
        mean_pred.append(float(p[mask].mean()))
        observed.append(float(y[mask].mean()))
        counts.append(int(mask.sum()))
    return np.array(mean_pred), np.array(observed), np.array(counts)


def expected_calibration_error(
    y_true, probabilities, n_bins: int = 10
) -> float:
    """ECE: count-weighted mean |predicted − observed| over bins."""
    mean_pred, observed, counts = reliability_curve(
        y_true, probabilities, n_bins=n_bins
    )
    if counts.sum() == 0:
        return 0.0
    weights = counts / counts.sum()
    return float(np.sum(weights * np.abs(mean_pred - observed)))
