"""k-nearest-neighbours classifier (Euclidean, weighted votes)."""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_int
from repro.models.base import Classifier

__all__ = ["KNearestNeighbors"]


class KNearestNeighbors(Classifier):
    """Plain kNN: P(y=1|x) is the weighted positive fraction among the
    ``k`` nearest training points (sample weights act as vote weights)."""

    def __init__(self, k: int = 15):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._w: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray) -> None:
        self._X = X
        self._y = y.astype(float)
        self._w = sample_weight

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        k = min(self.k, len(self._X))
        probs = np.empty(len(X))
        # Chunked distance computation keeps memory bounded on large inputs.
        chunk = max(1, 2_000_000 // max(len(self._X), 1))
        for start in range(0, len(X), chunk):
            block = X[start : start + chunk]
            d2 = (
                (block**2).sum(axis=1)[:, None]
                - 2.0 * block @ self._X.T
                + (self._X**2).sum(axis=1)[None, :]
            )
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            for i, row in enumerate(nearest):
                w = self._w[row]
                total = w.sum()
                probs[start + i] = (
                    float((w * self._y[row]).sum() / total) if total > 0 else 0.5
                )
        return probs
