"""Feature preprocessing: standardisation and one-hot encoding."""

from __future__ import annotations

import numpy as np

from repro._validation import check_array_1d, check_matrix_2d
from repro.exceptions import NotFittedError, ValidationError

__all__ = ["Standardizer", "OneHotEncoder"]


class Standardizer:
    """Column-wise z-score scaling fitted on training data.

    Columns with zero variance are left centred but unscaled, so constant
    features do not produce NaNs.
    """

    def __init__(self):
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X) -> "Standardizer":
        X = check_matrix_2d(X, "X")
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._scale = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        if self._mean is None:
            raise NotFittedError("Standardizer must be fitted before transform")
        X = check_matrix_2d(X, "X")
        if X.shape[1] != len(self._mean):
            raise ValidationError(
                f"X has {X.shape[1]} columns, fitted with {len(self._mean)}"
            )
        return (X - self._mean) / self._scale

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self._mean is None:
            raise NotFittedError("Standardizer must be fitted before transform")
        X = check_matrix_2d(X, "X")
        return X * self._scale + self._mean


class OneHotEncoder:
    """One-hot encoding of a single categorical array.

    Unknown categories at transform time raise by default; pass
    ``ignore_unknown=True`` to map them to the all-zero row instead.
    """

    def __init__(self, ignore_unknown: bool = False):
        self.ignore_unknown = bool(ignore_unknown)
        self._categories: list | None = None

    def fit(self, values) -> "OneHotEncoder":
        values = check_array_1d(values, "values")
        self._categories = sorted(np.unique(values).tolist(), key=repr)
        return self

    @property
    def categories(self) -> list:
        if self._categories is None:
            raise NotFittedError("OneHotEncoder must be fitted first")
        return list(self._categories)

    def transform(self, values) -> np.ndarray:
        if self._categories is None:
            raise NotFittedError("OneHotEncoder must be fitted before transform")
        values = check_array_1d(values, "values")
        known = set(self._categories)
        unknown = set(np.unique(values).tolist()) - known
        if unknown and not self.ignore_unknown:
            raise ValidationError(
                f"unknown categories at transform time: {sorted(unknown, key=repr)}"
            )
        out = np.zeros((len(values), len(self._categories)))
        for j, cat in enumerate(self._categories):
            out[:, j] = (values == cat).astype(float)
        return out

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)
