"""From-scratch supervised-learning substrate (no external ML deps)."""

from repro.models.base import Classifier, ConstantClassifier
from repro.models.boosting import GradientBoosting
from repro.models.calibration import (
    CalibratedClassifier,
    PlattCalibrator,
    expected_calibration_error,
    reliability_curve,
)
from repro.models.forest import RandomForest
from repro.models.knn import KNearestNeighbors
from repro.models.logistic import LogisticRegression, sigmoid
from repro.models.metrics import (
    ConfusionMatrix,
    accuracy,
    balanced_accuracy,
    brier_score,
    confusion_matrix,
    f1_score,
    false_positive_rate,
    log_loss,
    precision,
    recall,
    roc_auc,
    roc_curve,
)
from repro.models.naive_bayes import GaussianNaiveBayes
from repro.models.persistence import LinearPipeline
from repro.models.preprocessing import OneHotEncoder, Standardizer
from repro.models.selection import (
    CrossValidationResult,
    FoldResult,
    cross_validate_fairness,
)
from repro.models.tree import DecisionTree

__all__ = [
    "Classifier",
    "ConstantClassifier",
    "GradientBoosting",
    "LinearPipeline",
    "LogisticRegression",
    "GaussianNaiveBayes",
    "DecisionTree",
    "RandomForest",
    "KNearestNeighbors",
    "CalibratedClassifier",
    "PlattCalibrator",
    "reliability_curve",
    "expected_calibration_error",
    "Standardizer",
    "OneHotEncoder",
    "CrossValidationResult",
    "FoldResult",
    "cross_validate_fairness",
    "sigmoid",
    "ConfusionMatrix",
    "confusion_matrix",
    "accuracy",
    "precision",
    "recall",
    "false_positive_rate",
    "f1_score",
    "balanced_accuracy",
    "roc_curve",
    "roc_auc",
    "log_loss",
    "brier_score",
]
