"""Base classes for the from-scratch ML substrate.

The library cannot rely on scikit-learn, so a minimal but complete
supervised-learning stack is implemented locally.  All classifiers follow
the familiar fit/predict/predict_proba contract and operate on plain
float matrices; :meth:`Classifier.fit_dataset` bridges from
:class:`~repro.data.dataset.TabularDataset`.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_binary_array,
    check_matrix_2d,
    check_same_length,
)
from repro.data.dataset import TabularDataset
from repro.exceptions import NotFittedError, ValidationError

__all__ = ["Classifier", "ConstantClassifier"]


class Classifier:
    """Abstract binary classifier.

    Subclasses implement :meth:`_fit` and :meth:`_predict_proba`; this base
    class handles input validation, the fitted-state protocol, thresholding,
    and dataset convenience wrappers.
    """

    #: probability threshold used by :meth:`predict`
    threshold: float = 0.5

    def __init__(self):
        self._fitted = False
        self._n_features: int | None = None

    # -- subclass contract -------------------------------------------------

    def _fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray) -> None:
        raise NotImplementedError

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- public API ----------------------------------------------------------

    def fit(self, X, y, sample_weight=None) -> "Classifier":
        """Fit on a float matrix ``X`` and binary labels ``y``.

        ``sample_weight`` (optional, non-negative) supports the reweighing
        mitigation of :mod:`repro.mitigation.preprocessing`.
        """
        X = check_matrix_2d(X, "X")
        y = check_binary_array(y, "y")
        check_same_length(("X", X), ("y", y))
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
            check_same_length(("X", X), ("sample_weight", sample_weight))
            if np.any(sample_weight < 0):
                raise ValidationError("sample_weight must be non-negative")
            if not np.any(sample_weight > 0):
                raise ValidationError("sample_weight must not be all zero")
        if len(np.unique(y)) < 2:
            raise ValidationError(
                "fit requires both classes present in y "
                f"(got only class {int(y[0]) if len(y) else '<empty>'})"
            )
        from repro.observability.trace import get_tracer

        self._n_features = X.shape[1]
        with get_tracer().span(
            "model.fit", model=type(self).__name__,
            n_rows=int(X.shape[0]), n_features=int(X.shape[1]),
        ):
            self._fit(X, y, sample_weight)
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        """P(y=1 | x) for each row of ``X``."""
        self._check_fitted()
        X = check_matrix_2d(X, "X")
        if X.shape[1] != self._n_features:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self._n_features}"
            )
        probs = self._predict_proba(X)
        return np.clip(probs, 0.0, 1.0)

    def predict(self, X) -> np.ndarray:
        """Binary predictions via :attr:`threshold` on predict_proba."""
        return (self.predict_proba(X) >= self.threshold).astype(int)

    def score(self, X, y) -> float:
        """Plain accuracy on (X, y)."""
        y = check_binary_array(y, "y")
        return float(np.mean(self.predict(X) == y))

    # -- dataset bridges -----------------------------------------------------

    def fit_dataset(
        self, dataset: TabularDataset, sample_weight=None
    ) -> "Classifier":
        """Fit on a dataset's feature matrix and label column.

        Only ``feature``-role columns are used; protected columns are
        excluded unless their role has been changed explicitly (see
        :meth:`TabularDataset.with_role`), mirroring the paper's
        fairness-through-unawareness discussion.
        """
        return self.fit(dataset.feature_matrix(), dataset.labels(), sample_weight)

    def predict_dataset(self, dataset: TabularDataset) -> np.ndarray:
        """Binary predictions for each dataset row."""
        return self.predict(dataset.feature_matrix())

    def predict_proba_dataset(self, dataset: TabularDataset) -> np.ndarray:
        """P(y=1 | x) for each dataset row."""
        return self.predict_proba(dataset.feature_matrix())

    # -- helpers ---------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before prediction"
            )


class ConstantClassifier(Classifier):
    """Predicts a fixed probability for every input; a degenerate baseline."""

    def __init__(self, probability: float = 0.5):
        super().__init__()
        if not 0.0 <= probability <= 1.0:
            raise ValidationError(
                f"probability must be in [0, 1], got {probability}"
            )
        self.probability = float(probability)

    def _fit(self, X, y, sample_weight) -> None:
        pass

    def fit(self, X, y, sample_weight=None) -> "ConstantClassifier":
        # The single-class restriction does not apply to a constant model.
        X = check_matrix_2d(X, "X")
        y = check_binary_array(y, "y")
        check_same_length(("X", X), ("y", y))
        self._n_features = X.shape[1]
        self._fitted = True
        return self

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        return np.full(len(X), self.probability)
