"""Gradient boosting with shallow regression-tree base learners.

A compact gradient-boosting implementation for the logistic loss: each
round fits a depth-limited regression tree (weighted MSE splits) to the
negative gradient.  Exists so fairness experiments can show their
conclusions are not artifacts of one model family — the audit layer
treats every classifier identically.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_in_range, check_positive_int
from repro.models.base import Classifier
from repro.models.logistic import sigmoid

__all__ = ["GradientBoosting"]


class _RegressionTree:
    """Depth-limited regression tree minimising weighted MSE.

    Internal nodes are (feature, threshold); leaves predict the weighted
    mean residual of their region.
    """

    def __init__(self, max_depth: int):
        self.max_depth = max_depth
        self.feature: int | None = None
        self.threshold: float = 0.0
        self.value: float = 0.0
        self.left: "_RegressionTree | None" = None
        self.right: "_RegressionTree | None" = None

    def fit(self, X: np.ndarray, residuals: np.ndarray, w: np.ndarray) -> None:
        total_w = w.sum()
        self.value = float((w * residuals).sum() / total_w) if total_w > 0 else 0.0
        if self.max_depth <= 0 or len(residuals) < 2:
            return
        split = self._best_split(X, residuals, w)
        if split is None:
            return
        self.feature, self.threshold = split
        mask = X[:, self.feature] <= self.threshold
        self.left = _RegressionTree(self.max_depth - 1)
        self.right = _RegressionTree(self.max_depth - 1)
        self.left.fit(X[mask], residuals[mask], w[mask])
        self.right.fit(X[~mask], residuals[~mask], w[~mask])

    @staticmethod
    def _best_split(
        X: np.ndarray, residuals: np.ndarray, w: np.ndarray
    ) -> tuple[int, float] | None:
        n, d = X.shape
        total_w = w.sum()
        total_rw = (w * residuals).sum()
        parent_score = total_rw**2 / total_w if total_w > 0 else 0.0
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        for j in range(d):
            order = np.argsort(X[:, j], kind="mergesort")
            xs = X[order, j]
            rw = (w * residuals)[order]
            ws = w[order]
            cum_rw = np.cumsum(rw)
            cum_w = np.cumsum(ws)
            distinct = np.flatnonzero(np.diff(xs) > 0)
            for i in distinct:
                left_w, left_rw = cum_w[i], cum_rw[i]
                right_w = total_w - left_w
                right_rw = total_rw - left_rw
                if left_w <= 0 or right_w <= 0:
                    continue
                gain = (
                    left_rw**2 / left_w + right_rw**2 / right_w
                ) - parent_score
                if gain > best_gain:
                    best_gain = gain
                    best = (int(j), float((xs[i] + xs[i + 1]) / 2))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.feature is None:
            return np.full(len(X), self.value)
        mask = X[:, self.feature] <= self.threshold
        out = np.empty(len(X))
        out[mask] = self.left.predict(X[mask])
        out[~mask] = self.right.predict(X[~mask])
        return out


class GradientBoosting(Classifier):
    """Logit-loss gradient boosting over shallow regression trees.

    Parameters
    ----------
    n_rounds:
        Number of boosting rounds (trees).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of each base tree.  Depth 1 gives additive (stump)
        boosting; depth ≥ 2 captures feature interactions (XOR-like
        structure).
    """

    def __init__(
        self,
        n_rounds: int = 100,
        learning_rate: float = 0.3,
        max_depth: int = 2,
    ):
        super().__init__()
        self.n_rounds = check_positive_int(n_rounds, "n_rounds")
        self.learning_rate = check_in_range(
            learning_rate, "learning_rate", 1e-6, 10.0
        )
        self.max_depth = check_positive_int(max_depth, "max_depth")
        self.trees_: list[_RegressionTree] = []
        self.base_score_: float = 0.0

    def _fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray) -> None:
        w = sample_weight / sample_weight.sum()
        positive = float((w * y).sum())
        positive = min(max(positive, 1e-6), 1 - 1e-6)
        self.base_score_ = float(np.log(positive / (1 - positive)))
        raw = np.full(len(y), self.base_score_)

        self.trees_ = []
        for __ in range(self.n_rounds):
            residuals = y - sigmoid(raw)
            tree = _RegressionTree(self.max_depth)
            tree.fit(X, residuals, w)
            raw = raw + self.learning_rate * tree.predict(X)
            self.trees_.append(tree)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        raw = np.full(len(X), self.base_score_)
        for tree in self.trees_:
            raw = raw + self.learning_rate * tree.predict(X)
        return sigmoid(raw)

    def staged_scores(self, X) -> np.ndarray:
        """(n_rounds, n) matrix of probabilities after each round."""
        self._check_fitted()
        from repro._validation import check_matrix_2d

        X = check_matrix_2d(X, "X")
        raw = np.full(len(X), self.base_score_)
        stages = np.empty((len(self.trees_), len(X)))
        for r, tree in enumerate(self.trees_):
            raw = raw + self.learning_rate * tree.predict(X)
            stages[r] = sigmoid(raw)
        return stages
