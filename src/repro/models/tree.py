"""CART-style decision tree classifier (binary labels, numeric features).

The implementation is a straightforward recursive splitter minimising
weighted Gini impurity, with the usual structural regularisers
(``max_depth``, ``min_samples_split``, ``min_samples_leaf``) and optional
per-split feature subsampling (used by the random forest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive_int, check_random_state
from repro.models.base import Classifier

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    """One tree node; a leaf iff ``feature`` is None."""

    probability: float
    n_samples: int
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _weighted_gini(pos_weight: float, total_weight: float) -> float:
    if total_weight <= 0:
        return 0.0
    p = pos_weight / total_weight
    return 2.0 * p * (1.0 - p)


class DecisionTree(Classifier):
    """Binary CART tree on numeric features.

    Parameters
    ----------
    max_depth:
        Maximum depth; the root is depth 0.
    min_samples_split:
        Minimum number of samples a node needs to be considered for a split.
    min_samples_leaf:
        Minimum number of samples in each child after a split.
    max_features:
        Number of candidate features per split (None = all); when smaller
        than the feature count, candidates are drawn at random — the
        random-forest de-correlation trick.
    random_state:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.max_depth = check_positive_int(max_depth, "max_depth")
        self.min_samples_split = check_positive_int(
            min_samples_split, "min_samples_split"
        )
        self.min_samples_leaf = check_positive_int(
            min_samples_leaf, "min_samples_leaf"
        )
        if max_features is not None:
            max_features = check_positive_int(max_features, "max_features")
        self.max_features = max_features
        self._rng = check_random_state(random_state)
        self._root: _Node | None = None

    # -- fitting ------------------------------------------------------------

    def _fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray) -> None:
        self._root = self._build(X, y.astype(float), sample_weight, depth=0)

    def _leaf(self, y: np.ndarray, w: np.ndarray) -> _Node:
        total = w.sum()
        prob = float((w * y).sum() / total) if total > 0 else 0.5
        return _Node(probability=prob, n_samples=len(y))

    def _build(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int
    ) -> _Node:
        node = self._leaf(y, w)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or node.probability in (0.0, 1.0)
        ):
            return node
        split = self._best_split(X, y, w)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _candidate_features(self, d: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= d:
            return np.arange(d)
        return self._rng.choice(d, size=self.max_features, replace=False)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray
    ) -> tuple[int, float] | None:
        total_w = w.sum()
        total_pos = (w * y).sum()
        parent_impurity = _weighted_gini(total_pos, total_w)
        best_gain = 1e-12
        best: tuple[int, float] | None = None

        for feature in self._candidate_features(X.shape[1]):
            column = X[:, feature]
            order = np.argsort(column, kind="mergesort")
            xs, ys, ws = column[order], y[order], w[order]
            cum_w = np.cumsum(ws)
            cum_pos = np.cumsum(ws * ys)
            # Splits are allowed only between distinct consecutive values.
            distinct = np.flatnonzero(np.diff(xs) > 0)
            for i in distinct:
                n_left = i + 1
                n_right = len(xs) - n_left
                if (
                    n_left < self.min_samples_leaf
                    or n_right < self.min_samples_leaf
                ):
                    continue
                left_w = cum_w[i]
                right_w = total_w - left_w
                left_pos = cum_pos[i]
                right_pos = total_pos - left_pos
                child_impurity = (
                    left_w * _weighted_gini(left_pos, left_w)
                    + right_w * _weighted_gini(right_pos, right_w)
                ) / total_w
                gain = parent_impurity - child_impurity
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float((xs[i] + xs[i + 1]) / 2.0))
        return best

    # -- prediction -----------------------------------------------------------

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        probs = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            probs[i] = node.probability
        return probs

    # -- introspection ----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)

    def feature_split_counts(self) -> dict[int, int]:
        """How many internal nodes split on each feature index."""
        self._check_fitted()
        counts: dict[int, int] = {}

        def walk(node: _Node) -> None:
            if node.is_leaf:
                return
            counts[node.feature] = counts.get(node.feature, 0) + 1
            walk(node.left)
            walk(node.right)

        walk(self._root)
        return counts
