"""Logistic regression trained by full-batch gradient descent.

Supports L2 regularisation, per-sample weights (for the reweighing
mitigation), and an optional extra penalty term hook used by the
fairness-regularised model in :mod:`repro.mitigation.inprocessing` and
the concealment attack in :mod:`repro.manipulation.attack`.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_nonnegative, check_positive_int
from repro.exceptions import ConvergenceError
from repro.models.base import Classifier

__all__ = ["LogisticRegression", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically clipped logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression(Classifier):
    """Binary logistic regression.

    Parameters
    ----------
    l2:
        L2 regularisation strength on the weights (not the intercept).
    learning_rate:
        Gradient-descent step size.
    max_iter:
        Iteration budget.
    tol:
        Stop when the max absolute parameter update falls below this.
    raise_on_no_convergence:
        When True, failing to reach ``tol`` raises
        :class:`~repro.exceptions.ConvergenceError` instead of returning
        the best-so-far parameters.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.5,
        max_iter: int = 2000,
        tol: float = 1e-6,
        raise_on_no_convergence: bool = False,
    ):
        super().__init__()
        self.l2 = check_nonnegative(l2, "l2")
        self.learning_rate = check_nonnegative(learning_rate, "learning_rate")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = check_nonnegative(tol, "tol")
        self.raise_on_no_convergence = bool(raise_on_no_convergence)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    # extra_gradient hook: callable(weights, intercept) -> (grad_w, grad_b)
    # added to the loss gradient each step.  Used by in-processing
    # mitigations; None for the plain model.
    _extra_gradient = None

    def _fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray) -> None:
        n, d = X.shape
        weights = np.zeros(d)
        intercept = 0.0
        sw = sample_weight / sample_weight.sum() * n

        converged = False
        for iteration in range(1, self.max_iter + 1):
            probs = sigmoid(X @ weights + intercept)
            error = (probs - y) * sw
            grad_w = X.T @ error / n + self.l2 * weights
            grad_b = float(error.sum() / n)
            if self._extra_gradient is not None:
                extra_w, extra_b = self._extra_gradient(weights, intercept)
                grad_w = grad_w + extra_w
                grad_b = grad_b + extra_b
            step_w = self.learning_rate * grad_w
            step_b = self.learning_rate * grad_b
            weights -= step_w
            intercept -= step_b
            self.n_iter_ = iteration
            if max(np.max(np.abs(step_w), initial=0.0), abs(step_b)) < self.tol:
                converged = True
                break

        if not converged and self.raise_on_no_convergence:
            raise ConvergenceError(
                f"logistic regression did not converge in {self.max_iter} "
                f"iterations (tol={self.tol})"
            )
        self.coef_ = weights
        self.intercept_ = float(intercept)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        return sigmoid(X @ self.coef_ + self.intercept_)

    def decision_function(self, X) -> np.ndarray:
        """Raw logits for each row of ``X``."""
        self._check_fitted()
        from repro._validation import check_matrix_2d

        X = check_matrix_2d(X, "X")
        return X @ self.coef_ + self.intercept_
