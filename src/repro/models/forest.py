"""Random forest: bagged decision trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_int, check_random_state
from repro.models.base import Classifier
from repro.models.tree import DecisionTree

__all__ = ["RandomForest"]


class RandomForest(Classifier):
    """Bootstrap-aggregated :class:`DecisionTree` ensemble.

    Probabilities are the mean of per-tree leaf probabilities.  Feature
    subsampling defaults to ``ceil(sqrt(d))`` per split.
    """

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.n_trees = check_positive_int(n_trees, "n_trees")
        self.max_depth = check_positive_int(max_depth, "max_depth")
        self.min_samples_leaf = check_positive_int(
            min_samples_leaf, "min_samples_leaf"
        )
        self.max_features = max_features
        self._rng = check_random_state(random_state)
        self.trees_: list[DecisionTree] = []

    def _fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray) -> None:
        n, d = X.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.ceil(np.sqrt(d))))
        probabilities = sample_weight / sample_weight.sum()

        self.trees_ = []
        attempts = 0
        while len(self.trees_) < self.n_trees:
            attempts += 1
            if attempts > 20 * self.n_trees:
                break  # pathological data: give up adding more trees
            indices = self._rng.choice(n, size=n, replace=True, p=probabilities)
            if len(np.unique(y[indices])) < 2:
                continue  # bootstrap drew a single class; redraw
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=self._rng,
            )
            tree.fit(X[indices], y[indices])
            self.trees_.append(tree)
        if not self.trees_:
            # Fall back to one unbagged tree so the model is usable.
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=self._rng,
            )
            tree.fit(X, y, sample_weight)
            self.trees_.append(tree)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        stacked = np.stack([tree.predict_proba(X) for tree in self.trees_])
        return stacked.mean(axis=0)
