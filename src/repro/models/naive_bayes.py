"""Gaussian naive Bayes for continuous feature matrices."""

from __future__ import annotations

import numpy as np

from repro._validation import check_nonnegative
from repro.models.base import Classifier

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes(Classifier):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    ``var_smoothing`` adds a fraction of the largest feature variance to
    all variances, preventing degenerate zero-variance likelihoods.
    Sample weights scale each observation's contribution to the class
    priors and the per-class moments.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        super().__init__()
        self.var_smoothing = check_nonnegative(var_smoothing, "var_smoothing")
        self.class_prior_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None  # (2, d) means
        self.var_: np.ndarray | None = None  # (2, d) variances

    def _fit(self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray) -> None:
        d = X.shape[1]
        self.theta_ = np.zeros((2, d))
        self.var_ = np.zeros((2, d))
        priors = np.zeros(2)
        for cls in (0, 1):
            mask = y == cls
            w = sample_weight[mask]
            total = w.sum()
            priors[cls] = total
            if total == 0:
                # Guarded by base-class both-classes check, but a class can
                # still receive zero total weight; fall back to unweighted.
                w = np.ones(mask.sum())
                total = float(mask.sum())
            Xc = X[mask]
            mean = (w[:, None] * Xc).sum(axis=0) / total
            var = (w[:, None] * (Xc - mean) ** 2).sum(axis=0) / total
            self.theta_[cls] = mean
            self.var_[cls] = var
        max_var = float(self.var_.max(initial=0.0))
        epsilon = self.var_smoothing * max(max_var, 1.0)
        self.var_ = self.var_ + max(epsilon, 1e-12)
        self.class_prior_ = priors / priors.sum()

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        jll = np.zeros((len(X), 2))
        for cls in (0, 1):
            log_prior = np.log(self.class_prior_[cls] + 1e-300)
            diff = X - self.theta_[cls]
            log_lik = -0.5 * (
                np.log(2.0 * np.pi * self.var_[cls]) + diff**2 / self.var_[cls]
            ).sum(axis=1)
            jll[:, cls] = log_prior + log_lik
        return jll

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        likes = np.exp(jll)
        return likes[:, 1] / likes.sum(axis=1)
