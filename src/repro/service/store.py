"""Content-addressed result store: identical audits are one object.

A result's address is a sha256 over *what determines it*: the job kind,
the dataset fingerprint (byte-exact content hash), the configuration
fingerprint (:meth:`~repro.core.config.AuditConfig.fingerprint`), and
any kind-specific parameters that shape the output (a workflow's
profile, a scan's attribute list).  Two submissions of the same
``(dataset, config)`` therefore resolve to the same key — the second is
a cache hit that returns the stored bytes untouched, which is both the
"millions of users" economics (audits are idempotent; never recompute
one) and the legal-evidence property (a resubmitted audit cannot
quietly produce a different dossier).

Objects are written once, atomically, and never rewritten: if a
recomputation races a cache hit, first write wins and every reader sees
one canonical byte sequence for the key.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.exceptions import CheckpointError
from repro.robustness.checkpoint import atomic_write_text

__all__ = ["ResultStore", "array_fingerprint", "cache_key", "file_fingerprint"]


def cache_key(
    kind: str,
    dataset_fingerprint: str,
    config_fingerprint: str,
    extra: dict | None = None,
) -> str:
    """The content address of one job's result."""
    return hashlib.sha256(
        json.dumps(
            {
                "kind": kind,
                "dataset": dataset_fingerprint,
                "config": config_fingerprint,
                "extra": extra or {},
            },
            sort_keys=True,
        ).encode()
    ).hexdigest()


def array_fingerprint(values) -> str:
    """sha256 over an array's dtype, shape, and bytes.

    The identity hash for inline prediction arrays: two submissions of
    one dataset with different predictions are different audits and
    must resolve to different cache keys.
    """
    arr = np.ascontiguousarray(np.asarray(values))
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode())
    digest.update(b"\x00")
    digest.update(str(arr.shape).encode())
    digest.update(b"\x00")
    digest.update(arr.tobytes())
    return digest.hexdigest()


def file_fingerprint(*paths) -> str:
    """sha256 over the raw bytes of one or more files, in order.

    The dataset-identity hash for path-based submissions: a CSV plus its
    schema sidecar hash to the same value iff their bytes are identical,
    which is exactly the cache-correctness requirement (a changed file
    must miss; an untouched one must hit).  Missing optional files are
    hashed as absent rather than erroring, so ``(data, schema)`` pairs
    and bare CSVs both fingerprint cleanly.
    """
    digest = hashlib.sha256()
    for path in paths:
        if path is None:
            digest.update(b"\x00absent")
            continue
        path = Path(path)
        digest.update(b"\x00file")
        digest.update(str(len(path.name)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class ResultStore:
    """Write-once JSON objects under two-level fan-out directories."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise CheckpointError(
                f"malformed result key {key!r}", path=self.root
            )
        return self.root / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def put(self, key: str, payload: dict) -> str:
        """Store ``payload`` at ``key``; first write wins.

        The stored text is canonical (sorted keys, fixed indent), so a
        byte-for-byte comparison of two fetches is meaningful.
        """
        path = self.path_for(key)
        if path.exists():
            return key
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(payload, sort_keys=True, indent=2) + "\n"
        )
        return key

    def get_bytes(self, key: str) -> bytes:
        """The stored object, byte-identical on every call."""
        path = self.path_for(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(
                f"no stored result for key {key}", path=path
            ) from None

    def get(self, key: str) -> dict:
        try:
            return json.loads(self.get_bytes(key))
        except ValueError as exc:
            raise CheckpointError(
                f"corrupt stored result {key}: {exc}",
                path=self.path_for(key),
            ) from exc

    def keys(self) -> list[str]:
        return sorted(
            path.stem for path in self.root.glob("??/*.json")
        )

    def __len__(self) -> int:
        return len(self.keys())
