"""The job model of the audit service.

A :class:`JobRecord` is the durable identity of one unit of audit work:
what was asked for (kind + parameters + configuration fingerprints),
where it stands (status, attempts, timestamps), and — once finished —
the *reference* to its result in the content-addressed store.  Records
are what the journal persists and what the HTTP API returns; results
themselves live behind the reference and are paged, never inlined.

Statuses form a small machine::

    queued ──> running ──> succeeded        (result_key set; degraded
       │          │                          flags partial evidence)
       │          ├──────> failed           (error + error_type set)
       │          ├──────> cancelled        (cooperative cancellation)
       │          └──────> interrupted      (process died mid-job; a
       │                                     resumable job is requeued
       ├────────> cancelled                  on recovery instead)
       └────────> interrupted               (process died before an
                                             inline-dataset job ran)

``interrupted`` is terminal only for jobs the journal cannot re-run —
submissions that carried an in-process dataset object rather than a
path.  Everything else is replayed or resumed after a crash.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = [
    "JOB_KINDS",
    "TERMINAL_STATUSES",
    "JobRecord",
    "new_job_id",
]

#: the work the engine knows how to run (streamed audits are the
#: ``audit`` kind with a ``chunk_size`` parameter).
JOB_KINDS = ("audit", "subgroups", "workflow")

TERMINAL_STATUSES = ("succeeded", "failed", "cancelled", "interrupted")

_STATUSES = ("queued", "running") + TERMINAL_STATUSES


def new_job_id() -> str:
    """A short, unique, URL-safe job identifier."""
    return uuid.uuid4().hex[:12]


@dataclass
class JobRecord:
    """One audit job's durable state.

    ``params`` is the JSON-able request payload (``data`` path, optional
    ``schema`` path, ``chunk_size``, workflow ``profile``, subgroup
    ``attributes``…); ``config`` is the job's
    :meth:`~repro.core.config.AuditConfig.to_dict`.  Together with the
    two fingerprints they fully determine the result, which is why
    ``(dataset_fingerprint, config_fingerprint)`` keys the result cache.
    """

    job_id: str
    kind: str
    params: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    degraded: bool = False
    cache_hit: bool = False
    recovered: bool = False
    resumable: bool = True
    error: str = ""
    error_type: str = ""
    result_key: str | None = None
    dataset_fingerprint: str = ""
    config_fingerprint: str = ""
    predictions_fingerprint: str | None = None
    #: the submitting request's TraceContext.to_dict() (or None): a
    #: crash-recovered job keeps the trace that caused it, so the merged
    #: trace still reaches from the original HTTP request to the rerun.
    trace: dict | None = None

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValidationError(
                f"unknown job kind {self.kind!r}; use one of {JOB_KINDS}"
            )
        if self.status not in _STATUSES:
            raise ValidationError(f"unknown job status {self.status!r}")

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def active(self) -> bool:
        """Queued or running — the states admission control counts."""
        return self.status in ("queued", "running")

    def to_dict(self) -> dict:
        """Full JSON-able state (what the journal persists)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "params": dict(self.params),
            "config": dict(self.config),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "degraded": self.degraded,
            "cache_hit": self.cache_hit,
            "recovered": self.recovered,
            "resumable": self.resumable,
            "error": self.error,
            "error_type": self.error_type,
            "result_key": self.result_key,
            "dataset_fingerprint": self.dataset_fingerprint,
            "config_fingerprint": self.config_fingerprint,
            "predictions_fingerprint": self.predictions_fingerprint,
            "trace": dict(self.trace) if self.trace else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        return cls(**{
            key: payload[key]
            for key in (
                "job_id", "kind", "params", "config", "status",
                "submitted_at", "started_at", "finished_at", "attempts",
                "degraded", "cache_hit", "recovered", "resumable",
                "error", "error_type", "result_key",
                "dataset_fingerprint", "config_fingerprint",
                "predictions_fingerprint", "trace",
            )
            if key in payload
        })

    def ref(self) -> dict:
        """The reference-sized view the HTTP API returns.

        Everything a client needs to poll, link, or fetch the result —
        and nothing dossier-sized.
        """
        payload = {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "degraded": self.degraded,
            "cache_hit": self.cache_hit,
            "recovered": self.recovered,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "href": f"/jobs/{self.job_id}",
        }
        if self.trace:
            payload["trace_id"] = self.trace.get("trace_id")
        if self.result_key:
            payload["result"] = f"/results/{self.result_key}"
        if self.error:
            payload["error"] = self.error
            payload["error_type"] = self.error_type
        return payload
