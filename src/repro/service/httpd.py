"""Reference-based HTTP/JSON API over a :class:`JobEngine`.

Stdlib-only (:mod:`http.server`), threaded, and deliberately small: the
API returns *references* — job records with ``href`` links and result
previews with paginated findings — never megabyte dossiers in one
response.  The full stored object stays available, byte-identical, at
``/results/<key>/raw`` for clients that asked for it by address.

Routes::

    GET  /healthz                    liveness + job counts
    GET  /metrics                    Prometheus text exposition (JSON
                                     behind ``Accept: application/json``)
    GET  /events[?since=&kind=&stream=]  alerting event bus, cursor-style
    GET  /jobs[?status=...]          job references, oldest first
    POST /jobs                       submit {kind, params, config}
    GET  /jobs/<id>                  one job reference
    POST /jobs/<id>/cancel           cooperative cancellation
    GET  /results/<key>              result preview (no findings body)
    GET  /results/<key>/findings     paginated findings (?page=&per_page=)
    GET  /results/<key>/raw          the stored object, byte-identical

``POST /jobs`` honours a W3C ``traceparent`` request header: the
submission's ``http.request`` span continues the caller's trace, and
the job (and its audit spans, down to process-pool chunk workers)
parents under it — one trace_id from the external caller to the
deepest ``subgroups.score_chunk`` span.  Headerless submissions make
their own head-sampling decision at ``trace_sample_rate``.

Failure mapping: a saturated queue answers ``429`` with a
``Retry-After`` header and the structured
:meth:`~repro.exceptions.AdmissionError.to_dict` body; bad requests are
``400``; unknown references ``404``; submissions after shutdown began
``503``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    AdmissionError,
    CheckpointError,
    EngineClosedError,
    ReproError,
    ValidationError,
)
from repro.observability.context import TraceContext, head_sample
from repro.observability.events import get_event_bus
from repro.observability.metrics import get_metrics
from repro.observability.promfmt import PROM_CONTENT_TYPE, render_prometheus
from repro.observability.trace import get_tracer
from repro.service.engine import JobEngine

__all__ = ["AuditHTTPServer", "serve", "MAX_PER_PAGE"]

#: ceiling on one /events response, mirroring the findings-page cap.
MAX_EVENTS = 500

#: hard ceiling on one findings page — the "never megabyte responses"
#: contract is enforced here, not trusted to clients.
MAX_PER_PAGE = 200
_DEFAULT_PER_PAGE = 50
_MAX_BODY = 1 << 20  # 1 MiB of request JSON is already generous


def _findings_of(payload: dict) -> list:
    """The findings list inside a stored result, whatever its kind."""
    kind = payload.get("kind")
    if kind == "subgroups":
        return list(payload.get("findings") or [])
    if kind == "workflow":
        report = (payload.get("dossier") or {}).get("audit") or {}
        return list(report.get("findings") or [])
    return list((payload.get("report") or {}).get("findings") or [])


def _preview_of(payload: dict, key: str) -> dict:
    """A result preview: everything except the findings body."""
    findings = _findings_of(payload)
    preview = {
        "result_key": key,
        "kind": payload.get("kind"),
        "schema_version": payload.get("schema_version"),
        "degraded": payload.get("degraded", False),
        "n_findings": len(findings),
        "findings": f"/results/{key}/findings",
        "raw": f"/results/{key}/raw",
    }
    if payload.get("kind") == "subgroups":
        for field in ("alpha", "adjust", "n_subgroups", "n_significant"):
            preview[field] = payload.get(field)
    elif payload.get("kind") == "workflow":
        preview["verdict"] = payload.get("verdict")
        preview["primary_metric"] = payload.get("primary_metric")
    else:
        report = payload.get("report") or {}
        preview["is_clean"] = payload.get("is_clean")
        preview["counts"] = report.get("counts")
        preview["dataset_summary"] = report.get("dataset_summary")
    return preview


class _Handler(BaseHTTPRequestHandler):
    """One request; the engine lives on the server object."""

    server_version = "repro-audit-service"
    protocol_version = "HTTP/1.1"

    # -- response helpers ----------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    def _send_bytes(self, status: int, body: bytes, *, headers=None,
                    content_type: str = "application/json"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, *, headers=None):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send_bytes(status, body, headers=headers)

    def _send_error(self, status: int, message: str, **extra):
        self._send_json(status, {"error": message, **extra})

    # -- routing -------------------------------------------------------------

    @property
    def engine(self) -> JobEngine:
        return self.server.engine

    def do_GET(self):  # noqa: N802 — stdlib casing
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if parts == ["healthz"]:
                return self._get_healthz()
            if parts == ["metrics"]:
                return self._get_metrics()
            if parts == ["events"]:
                return self._get_events(query)
            if parts == ["jobs"]:
                return self._get_jobs(query)
            if len(parts) == 2 and parts[0] == "jobs":
                return self._get_job(parts[1])
            if len(parts) == 2 and parts[0] == "results":
                return self._get_result_preview(parts[1])
            if len(parts) == 3 and parts[0] == "results":
                if parts[2] == "findings":
                    return self._get_findings(parts[1], query)
                if parts[2] == "raw":
                    return self._get_raw(parts[1])
            self._send_error(404, f"no route for {url.path}")
        except CheckpointError as exc:
            self._send_error(404, str(exc))
        except ReproError as exc:
            self._send_error(400, str(exc), error_type=type(exc).__name__)

    def do_POST(self):  # noqa: N802 — stdlib casing
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        try:
            if parts == ["jobs"]:
                return self._post_job()
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                return self._post_cancel(parts[1])
            self._send_error(404, f"no route for {self.path}")
        except AdmissionError as exc:
            self._metrics().counter("service.http_rejections").inc()
            self._send_json(
                429, exc.to_dict(),
                headers={"Retry-After": str(max(1, round(exc.retry_after)))},
            )
        except EngineClosedError as exc:
            self._send_error(503, str(exc))
        except ValidationError as exc:
            self._send_error(400, str(exc), error_type=type(exc).__name__)
        except ReproError as exc:
            self._send_error(400, str(exc), error_type=type(exc).__name__)

    def _metrics(self):
        return (
            self.engine.metrics
            if self.engine.metrics is not None
            else get_metrics()
        )

    def _tracer(self):
        return (
            self.engine.tracer
            if self.engine.tracer is not None
            else get_tracer()
        )

    # -- GET bodies ----------------------------------------------------------

    def _get_metrics(self):
        """Prometheus text by default; the JSON snapshot on request.

        Content negotiation keeps both consumers: any standard scraper
        reads the default, and the pre-v2 JSON shape stays available
        behind ``Accept: application/json``.
        """
        accept = self.headers.get("Accept") or ""
        if "application/json" in accept:
            return self._send_json(200, self._metrics().snapshot())
        body = render_prometheus(self._metrics()).encode()
        self._send_bytes(200, body, content_type=PROM_CONTENT_TYPE)

    def _get_events(self, query):
        """Cursor-style poll over the alerting event bus.

        ``?since=<seq>`` returns events strictly after that sequence
        number (clients poll with the ``last_seq`` they saw);
        ``?kind=job.`` filters by kind or dotted prefix;
        ``?stream=<name>`` keeps only events labeled with that
        monitoring stream; ``?limit=`` caps the page from the oldest
        end so nothing is skipped.
        """
        try:
            since = int((query.get("since") or ["0"])[0])
            limit = int((query.get("limit") or [str(MAX_EVENTS)])[0])
        except ValueError:
            return self._send_error(400, "since and limit must be integers")
        kind = (query.get("kind") or [None])[0]
        stream = (query.get("stream") or [None])[0]
        bus = get_event_bus()
        events = bus.since(
            since, kind=kind, stream=stream, limit=min(limit, MAX_EVENTS)
        )
        self._send_json(
            200,
            {
                "events": [event.to_dict() for event in events],
                "last_seq": bus.last_seq,
                "capacity": bus.capacity,
            },
        )

    def _get_healthz(self):
        jobs = self.engine.jobs()
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        self._send_json(
            200,
            {
                "status": "ok",
                "jobs": counts,
                "queue_limit": self.engine.queue_limit,
                "results": len(self.engine.store),
            },
        )

    def _get_jobs(self, query):
        status = (query.get("status") or [None])[0]
        jobs = self.engine.jobs(status=status)
        self._send_json(200, {"jobs": [job.ref() for job in jobs]})

    def _get_job(self, job_id):
        job = self.engine.get(job_id)
        if job is None:
            return self._send_error(404, f"unknown job {job_id!r}")
        self._send_json(200, job.ref())

    def _get_result_preview(self, key):
        payload = self.engine.store.get(key)
        self._send_json(200, _preview_of(payload, key))

    def _get_findings(self, key, query):
        try:
            page = int((query.get("page") or ["1"])[0])
            per_page = int(
                (query.get("per_page") or [str(_DEFAULT_PER_PAGE)])[0]
            )
        except ValueError:
            return self._send_error(400, "page and per_page must be integers")
        if page < 1 or per_page < 1:
            return self._send_error(400, "page and per_page must be >= 1")
        per_page = min(per_page, MAX_PER_PAGE)
        findings = _findings_of(self.engine.store.get(key))
        total = len(findings)
        start = (page - 1) * per_page
        items = findings[start:start + per_page]
        base = f"/results/{key}/findings"
        self._send_json(
            200,
            {
                "items": items,
                "page": page,
                "per_page": per_page,
                "total": total,
                "next": (
                    f"{base}?page={page + 1}&per_page={per_page}"
                    if start + per_page < total
                    else None
                ),
                "prev": (
                    f"{base}?page={page - 1}&per_page={per_page}"
                    if page > 1 and start < total + per_page
                    else None
                ),
            },
        )

    def _get_raw(self, key):
        self._send_bytes(200, self.engine.store.get_bytes(key))

    # -- POST bodies ---------------------------------------------------------

    def _read_body(self) -> dict:
        declared = self.headers.get("Content-Length") or "0"
        try:
            length = int(declared)
        except ValueError:
            self.close_connection = True
            raise ValidationError(
                f"Content-Length {declared!r} is not an integer"
            ) from None
        if length < 0:
            self.close_connection = True
            raise ValidationError("Content-Length must not be negative")
        if length > _MAX_BODY:
            # the body is never read on rejection, so the connection
            # cannot be reused — the unread bytes would be parsed as the
            # next request line
            self.close_connection = True
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise ValidationError(f"request body is not JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        return body

    def _post_job(self):
        body = self._read_body()
        kind = body.get("kind")
        if not kind:
            raise ValidationError("submissions need a 'kind'")
        params = dict(body.get("params") or {})
        if body.get("scan_config") is not None:
            # a top-level inline ScanConfig is sugar for
            # params["scan_config"]; the engine validates it at admission
            if not isinstance(body["scan_config"], dict):
                raise ValidationError("'scan_config' must be a JSON object")
            params["scan_config"] = body["scan_config"]
        incoming = TraceContext.from_traceparent(
            self.headers.get("traceparent")
        )
        sampled = (
            incoming.sampled
            if incoming is not None
            else head_sample(
                getattr(self.server, "trace_sample_rate", 1.0)
            )
        )
        tracer = self._tracer()
        if tracer.enabled and sampled:
            # The request becomes a span continuing the caller's trace
            # (or heading a new one); the job inherits the span's child
            # context, so everything below — engine job, audit stages,
            # pool-worker chunks — shares this trace_id.
            with tracer.span(
                "http.request", context=incoming,
                method="POST", path="/jobs", kind=kind,
            ) as span:
                job = self.engine.submit(
                    kind,
                    params=params,
                    config=body.get("config"),
                    trace_context=span.context(),
                )
                span.set(job_id=job.job_id, cache_hit=job.cache_hit)
        else:
            # No local tracer (or head-sampled out): still forward a
            # sampled caller's context so an engine-side tracer can
            # attach the job to the caller's trace.
            job = self.engine.submit(
                kind,
                params=params,
                config=body.get("config"),
                trace_context=(
                    incoming if incoming and incoming.sampled else None
                ),
            )
        status = 200 if job.cache_hit else 201
        self._send_json(status, job.ref())

    def _post_cancel(self, job_id):
        job = self.engine.cancel(job_id)
        self._send_json(200, job.ref())


class AuditHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`JobEngine`.

    ``trace_sample_rate`` is the head-sampling probability for
    submissions that arrive without a ``traceparent`` header; requests
    that carry one honour the caller's recorded decision instead.
    """

    daemon_threads = True

    def __init__(self, address, engine: JobEngine, *, quiet: bool = True,
                 trace_sample_rate: float = 1.0):
        super().__init__(address, _Handler)
        self.engine = engine
        self.quiet = quiet
        self.trace_sample_rate = trace_sample_rate

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve(
    engine: JobEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    trace_sample_rate: float = 1.0,
) -> AuditHTTPServer:
    """Bind an :class:`AuditHTTPServer` and serve it on a daemon thread.

    Returns the server (inspect ``server.port`` when ``port=0``); call
    ``server.shutdown()`` then ``engine.shutdown()`` to stop — which is
    exactly what the CLI's ``repro serve`` does on SIGTERM.
    """
    server = AuditHTTPServer(
        (host, port), engine, quiet=quiet,
        trace_sample_rate=trace_sample_rate,
    )
    thread = threading.Thread(
        target=server.serve_forever, daemon=True, name="repro-httpd"
    )
    thread.start()
    return server
