"""Crash-safe append-only job journal with atomic rotation.

The journal is the service's write-ahead log: every job transition is
one JSON line, flushed and fsynced before the engine acts on it, so a
``kill -9`` at any instant loses at most the line being written — and a
torn final line (no trailing newline) is recognised and discarded on
replay, exactly the failure a mid-write crash produces.  Corruption
anywhere *else* is a different animal — it means the file was edited or
the disk lied — and raises :class:`~repro.exceptions.CheckpointError`
with the path and line number rather than silently skipping evidence.

Rotation keeps the log bounded: the engine periodically compacts the
event history into one ``snapshot`` event per live job and rewrites the
file through :func:`~repro.robustness.checkpoint.atomic_write_text`, so
a crash during rotation leaves the previous complete journal intact.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.exceptions import CheckpointError
from repro.robustness.checkpoint import atomic_write_text

__all__ = ["JOURNAL_VERSION", "JobJournal"]

JOURNAL_VERSION = 1


class JobJournal:
    """Append-only JSON-lines event log for one engine root.

    Parameters
    ----------
    path:
        The journal file; created (with a version header event) on
        first append if missing.
    fsync:
        Force every appended line to disk before returning.  ``True``
        (the default) is what makes recovery exact under ``kill -9``;
        benchmarks may turn it off to measure the engine without the
        disk in the loop.
    """

    def __init__(self, path, *, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        self.entries_written = 0

    # -- writing -------------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists()
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._write_line({"event": "journal", "version": JOURNAL_VERSION})
        return self._handle

    def _write_line(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True)
        if "\n" in line:  # pragma: no cover — json never emits newlines
            raise CheckpointError(
                "journal events must serialise to one line", path=self.path
            )
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.entries_written += 1

    def append(self, event: dict) -> None:
        """Durably append one event (flushed + fsynced under the lock)."""
        with self._lock:
            self._open()
            self._write_line(event)

    # -- replay --------------------------------------------------------------

    def replay(self) -> list[dict]:
        """Parse every journaled event, tolerating only a torn tail.

        A final line without its newline is the signature of a crash
        mid-append and is dropped; a malformed *complete* line raises
        :class:`~repro.exceptions.CheckpointError` with the path and
        1-based line number.
        """
        if not self.path.exists():
            return []
        text = self.path.read_text(encoding="utf-8")
        if not text:
            return []
        complete = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        events: list[dict] = []
        for number, line in enumerate(lines, start=1):
            torn_tail = number == len(lines) and not complete
            try:
                event = json.loads(line)
                if not isinstance(event, dict):
                    raise ValueError("journal lines must be JSON objects")
            except ValueError as exc:
                if torn_tail:
                    break  # crash mid-append: the event never happened
                raise CheckpointError(
                    f"corrupt journal {self.path} at line {number}: {exc}",
                    path=self.path,
                ) from exc
            events.append(event)
        return events

    # -- rotation ------------------------------------------------------------

    def rotate(self, events: list[dict]) -> None:
        """Atomically replace the journal with a compacted event list."""
        with self._lock:
            lines = [
                json.dumps(
                    {"event": "journal", "version": JOURNAL_VERSION},
                    sort_keys=True,
                )
            ]
            lines.extend(json.dumps(event, sort_keys=True) for event in events)
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            atomic_write_text(self.path, "\n".join(lines) + "\n")
            self.entries_written = len(lines)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
