"""The supervised job engine: audits as fault-tolerant background jobs.

A :class:`JobEngine` owns three durable artifacts under one root
directory — the append-only :class:`~repro.service.journal.JobJournal`
(``journal.jsonl``), the content-addressed
:class:`~repro.service.store.ResultStore` (``results/``), and a
``checkpoints/`` directory of per-job resume state — plus a pool of
worker threads that execute jobs under the same
:class:`~repro.robustness.StageRunner` supervision audits use
everywhere else in this library.

The design commitments, in the order the ISSUE states them:

* **Every transition is journaled before it matters.**  Submissions,
  starts, finishes, requeues: each appends one fsynced JSON line
  carrying the full :class:`~repro.service.jobs.JobRecord`, so a
  ``kill -9`` at any instant is recoverable.  On construction the
  engine replays the journal: path-based jobs that were *running* are
  requeued (their checkpoints make re-execution a resume, not a
  restart) and *queued* ones re-enqueued; active jobs whose dataset
  lived only in the dead process are marked ``interrupted`` whether
  they had started or not.

* **Results are content-addressed.**  A job's result key is a sha256
  over ``(kind, dataset fingerprint, config fingerprint, shaping
  params)``; resubmitting an identical audit is answered at submit
  time from the store — a cache hit, byte-identical to the first
  computation, no recomputation, no queue slot consumed.

* **Admission control, not collapse.**  Active (queued + running) jobs
  are counted against ``queue_limit``; a submission over the limit
  raises :class:`~repro.exceptions.AdmissionError` with a structured
  ``retry_after`` hint while running jobs continue unharmed.

* **Supervision is two-level.**  The engine's own ``policy`` governs
  the *job* (whole-job retries, a deadline that turns a hang into a
  timeout); the job's ``config.policy`` governs the audit *stages*
  inside it, exactly as it would in-process — so a job whose metric
  stages degrade completes as ``succeeded`` with ``degraded=True``,
  the service analogue of the CLI's exit code 3.

* **Shutdown drains.**  ``shutdown()`` stops accepting work, lets
  running jobs finish, and leaves still-queued jobs journaled as
  ``queued`` — the next engine over the same root picks them up.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.config import AuditConfig, ScanConfig
from repro.core.criteria import UseCaseProfile
from repro.core.serialize import report_to_dict
from repro.data.io import load_dataset
from repro.exceptions import (
    AdmissionError,
    AuditError,
    CheckpointError,
    DegradedRunError,
    EngineClosedError,
    JobCancelledError,
    ServiceError,
    ValidationError,
)
from repro.observability.context import TraceContext
from repro.observability.events import get_event_bus
from repro.observability.metrics import get_metrics
from repro.observability.provenance import dataset_fingerprint
from repro.observability.trace import get_tracer
from repro.robustness.policy import ExecutionPolicy
from repro.robustness.runner import StageRunner
from repro.service.jobs import JOB_KINDS, JobRecord, new_job_id
from repro.service.journal import JobJournal
from repro.service.store import (
    ResultStore,
    array_fingerprint,
    cache_key,
    file_fingerprint,
)
from repro.streaming.stream import finalize, ingest_stream
from repro.subgroup.auditor import (
    _finding_to_payload,
    adjust_for_multiple_testing,
    audit_subgroups,
)
from repro.subgroup.search import scan_subgroups
from repro.workflow import _dataclass_from_dict, run_compliance_workflow

__all__ = ["JobEngine"]

RESULT_SCHEMA_VERSION = 1


class JobEngine:
    """Run audit jobs on worker threads with journaled, cached results.

    Parameters
    ----------
    root:
        Directory owning this engine's durable state (journal, result
        store, checkpoints).  A second engine constructed over the same
        root — typically after a crash — recovers the first one's jobs.
    workers:
        Worker thread count.
    queue_limit:
        Maximum active (queued + running) jobs before submissions are
        rejected with :class:`~repro.exceptions.AdmissionError`.
    policy:
        Job-level :class:`~repro.robustness.ExecutionPolicy` (retries,
        deadline, backoff for the *whole job*).  Defaults to no retries
        and no deadline.  List :class:`StageTimeoutError` in its
        ``retryable`` to have hung jobs retried before failing.
    faults:
        Optional :class:`~repro.robustness.FaultInjector` fired at
        stage ``service.job:<kind>`` — the chaos hook for the engine
        itself (job configs carry their own injectors for audit-stage
        chaos).
    retry_after:
        Base of the ``retry_after`` hint on rejections; the hint scales
        with backlog depth.
    journal_fsync:
        Passed to the journal; leave ``True`` for crash-exactness.
    rotate_after / history_limit:
        Compact the journal once it holds this many lines, keeping at
        most ``history_limit`` terminal jobs of history.
    """

    def __init__(
        self,
        root,
        *,
        workers: int = 2,
        queue_limit: int = 16,
        policy: ExecutionPolicy | None = None,
        faults=None,
        tracer=None,
        metrics=None,
        retry_after: float = 1.0,
        journal_fsync: bool = True,
        rotate_after: int = 4096,
        history_limit: int = 1000,
    ):
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        if queue_limit < 1:
            raise ValidationError("queue_limit must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.checkpoint_dir = self.root / "checkpoints"
        self.checkpoint_dir.mkdir(exist_ok=True)
        self.journal = JobJournal(self.root / "journal.jsonl", fsync=journal_fsync)
        self.store = ResultStore(self.root / "results")
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.faults = faults
        self.tracer = tracer
        self.metrics = metrics
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self.rotate_after = rotate_after
        self.history_limit = history_limit
        self._jobs: dict[str, JobRecord] = {}
        self._inline: dict[str, tuple] = {}
        self._cancel: dict[str, threading.Event] = {}
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.RLock()
        self._state = threading.Condition(self._lock)
        self._closed = False
        self._draining = threading.Event()
        self._recover()
        self.journal.append({"event": "engine_started", "ts": time.time()})
        self._workers = [
            threading.Thread(
                target=self._worker_loop, daemon=True, name=f"repro-job-{i}"
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- plumbing ------------------------------------------------------------

    def _metrics(self):
        return self.metrics if self.metrics is not None else get_metrics()

    def _tracer(self):
        return self.tracer if self.tracer is not None else get_tracer()

    @staticmethod
    def _check_cancel(cancel, job_id: str) -> None:
        if cancel is not None and cancel.is_set():
            raise JobCancelledError(f"job {job_id} cancelled")

    @staticmethod
    def _cache_extra(kind: str, params: dict, correction: str) -> dict:
        """The kind-specific parameters that shape the result bytes.

        ``chunk_size`` is deliberately absent: streamed and in-memory
        audits of the same rows produce the same report, so they share
        a cache entry.
        """
        if kind == "subgroups":
            attributes = params.get("attributes")
            extra = {
                "attributes": list(attributes) if attributes else None,
                "adjust": params.get("adjust", correction),
            }
            scan_payload = params.get("scan_config")
            if scan_payload is not None:
                # an inline ScanConfig shapes the result bytes exactly
                # like AuditConfig.scan does through config_fingerprint,
                # so it must enter the content address the same way
                extra["scan"] = ScanConfig.from_dict(
                    dict(scan_payload)
                ).fingerprint()
            return extra
        if kind == "workflow":
            return {"profile": dict(params.get("profile") or {})}
        return {}

    def _job_key(self, job: JobRecord) -> str:
        """Recompute a job's content address from its durable record."""
        extra = self._cache_extra(
            job.kind, job.params, job.config.get("correction", "holm")
        )
        if job.predictions_fingerprint:
            # inline predictions change the result, so they must change
            # the address — a label-only submission of the same dataset
            # keys the bare extra and stays a distinct entry
            extra = {**extra, "predictions": job.predictions_fingerprint}
        return cache_key(
            job.kind,
            job.dataset_fingerprint,
            job.config_fingerprint,
            extra=extra,
        )

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict | None = None,
        *,
        config: AuditConfig | dict | None = None,
        dataset=None,
        predictions=None,
        trace_context: TraceContext | None = None,
    ) -> JobRecord:
        """Enqueue one job (or answer it from the result cache).

        Path-based submissions (``params["data"]`` + optional
        ``params["schema"]``) are durable: they survive a crash and are
        resumed from their checkpoints.  In-process submissions
        (``dataset=``) run identically but are marked
        ``resumable=False`` — a crash leaves them ``interrupted``
        because the journal cannot reload an object that died with the
        process.

        Cache hits bypass admission control — they consume no queue
        slot, so a saturated engine still answers repeat audits.

        ``trace_context`` continues the submitter's trace: the job's
        ``service.job`` span (and everything inside it, down to
        pool-worker chunk spans) parents to the submitting request's
        span.  The context rides in the journaled record, so even a
        crash-recovered rerun stays attached to the originating trace.
        """
        if kind not in JOB_KINDS:
            raise ValidationError(
                f"unknown job kind {kind!r}; use one of {JOB_KINDS}"
            )
        params = dict(params or {})
        if params.get("scan_config") is not None:
            # validate at admission and journal the canonical full dict,
            # so recovery re-materialises exactly the scan that was
            # admitted (and a bad strategy fails the request, not the job)
            try:
                params["scan_config"] = ScanConfig.from_dict(
                    dict(params["scan_config"])
                ).to_dict()
            except (AuditError, ValueError, TypeError) as exc:
                raise ValidationError(f"invalid scan_config: {exc}") from exc
        if params.get("state") is not None:
            self._scan_state_name(params["state"])  # validate early
        if isinstance(config, AuditConfig):
            config_obj = config
        elif config is not None:
            config_obj = AuditConfig.from_dict(dict(config))
        else:
            config_obj = AuditConfig()
        if dataset is not None:
            ds_fp = dataset_fingerprint(dataset)
            resumable = False
        else:
            data = params.get("data")
            if not data:
                raise ValidationError(
                    "submit() needs params['data'] (a dataset path) or an "
                    "in-process dataset= argument"
                )
            if Path(str(data)).is_dir():
                # packed columnar dataset: its sidecar already records
                # the content fingerprint, so the cache key costs one
                # JSON read however many rows the pack holds.
                from repro.data.ooc import packed_fingerprint

                try:
                    ds_fp = packed_fingerprint(data)
                except DatasetError as exc:
                    raise ValidationError(str(exc)) from exc
            else:
                schema = params.get("schema")
                if schema is None:
                    sidecar = Path(str(data) + ".schema.json")
                    schema = str(sidecar) if sidecar.exists() else None
                ds_fp = file_fingerprint(data, schema)
            resumable = True
            predictions = None  # path jobs audit the labels on disk
        job = JobRecord(
            job_id=new_job_id(),
            kind=kind,
            params=params,
            config=config_obj.to_dict(),
            submitted_at=time.time(),
            resumable=resumable,
            dataset_fingerprint=ds_fp,
            config_fingerprint=config_obj.fingerprint(),
            predictions_fingerprint=(
                array_fingerprint(predictions)
                if predictions is not None
                else None
            ),
            trace=(
                trace_context.to_dict()
                if trace_context is not None and trace_context.sampled
                else None
            ),
        )
        key = self._job_key(job)
        if self.store.has(key):
            job.status = "succeeded"
            job.cache_hit = True
            job.finished_at = job.submitted_at
            job.result_key = key
            job.degraded = bool(self.store.get(key).get("degraded", False))
            with self._lock:
                if self._closed:
                    raise EngineClosedError(
                        "engine is shut down; no new submissions"
                    )
                self._jobs[job.job_id] = job
            self.journal.append({"event": "submitted", "job": job.to_dict()})
            self._metrics().counter("service.cache_hits").inc()
            self._maybe_rotate()
            return job
        with self._lock:
            if self._closed:
                raise EngineClosedError("engine is shut down; no new submissions")
            active = sum(1 for j in self._jobs.values() if j.active)
            if active >= self.queue_limit:
                self._metrics().counter("service.jobs_rejected").inc()
                hint = self.retry_after * max(
                    1.0, active / max(1, len(self._workers))
                )
                get_event_bus().publish(
                    "job.rejected",
                    job_kind=kind,
                    active=active,
                    queue_limit=self.queue_limit,
                    retry_after=round(hint, 3),
                )
                raise AdmissionError(
                    f"queue saturated: {active} active jobs at limit "
                    f"{self.queue_limit}; retry after {hint:.1f}s",
                    retry_after=round(hint, 3),
                    active=active,
                    queue_limit=self.queue_limit,
                )
            self._jobs[job.job_id] = job
            self._cancel[job.job_id] = threading.Event()
            if dataset is not None:
                self._inline[job.job_id] = (dataset, predictions, config_obj)
        self.journal.append({"event": "submitted", "job": job.to_dict()})
        self._metrics().counter("service.jobs_submitted").inc()
        self._queue.put(job.job_id)
        self._maybe_rotate()
        return job

    # -- inspection ----------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, status: str | None = None) -> list[JobRecord]:
        """All known jobs, oldest first, optionally filtered by status."""
        with self._lock:
            records = sorted(
                self._jobs.values(), key=lambda j: (j.submitted_at, j.job_id)
            )
        if status is not None:
            records = [j for j in records if j.status == status]
        return records

    def result(self, job: JobRecord | str) -> dict:
        """A finished job's stored result object."""
        record = self.get(job) if isinstance(job, str) else job
        if record is None or not record.result_key:
            raise ServiceError("job has no stored result")
        return self.store.get(record.result_key)

    def wait(self, job_id: str, timeout: float = 30.0) -> JobRecord:
        """Block until the job reaches a terminal status."""
        deadline = time.monotonic() + timeout
        with self._state:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise ValidationError(f"unknown job {job_id!r}")
                if job.terminal:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"timed out after {timeout:g}s waiting for job "
                        f"{job_id} (status {job.status!r})"
                    )
                # _finish() notify_alls under this lock, so a plain wait
                # suffices — no periodic wakeups stealing cycles from the
                # worker threads on small machines
                self._state.wait(remaining)

    # -- cancellation --------------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Request cooperative cancellation; returns the current record.

        A queued job is cancelled before it starts; a running job stops
        at its next cancellation point (chunk boundary, subgroup
        progress callback).  Terminal jobs are returned unchanged.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ValidationError(f"unknown job {job_id!r}")
            if job.terminal:
                return job
            event = self._cancel.get(job_id)
            if event is not None:
                event.set()
        self._metrics().counter("service.cancel_requests").inc()
        return job

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work; optionally wait for running jobs.

        With ``drain=True`` (the default) running jobs finish and are
        journaled terminal; jobs still queued when the workers exit
        remain journaled as ``queued`` — pending work for the next
        engine over this root.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._draining.set()
        if drain:
            for worker in self._workers:
                worker.join(timeout)
        self.journal.append({"event": "engine_stopped", "ts": time.time()})
        self.journal.close()

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal and requeue or settle what the crash left."""
        events = self.journal.replay()
        jobs: dict[str, JobRecord] = {}
        for index, event in enumerate(events, start=1):
            record = event.get("job")
            if not isinstance(record, dict):
                continue
            try:
                jobs[record["job_id"]] = JobRecord.from_dict(record)
            except (KeyError, TypeError, ValidationError) as exc:
                raise CheckpointError(
                    f"journal {self.journal.path} event {index} holds an "
                    f"invalid job record: {type(exc).__name__}: {exc}",
                    path=self.journal.path,
                ) from exc
        self._jobs = jobs
        if not jobs:
            return
        metrics = self._metrics()
        now = time.time()
        for job in sorted(jobs.values(), key=lambda j: (j.submitted_at, j.job_id)):
            if not job.active:
                continue
            if not job.resumable:
                # queued or running, the inline dataset object died with
                # the crashed process — requeueing would only fail on a
                # missing params["data"]
                was = job.status
                job.status = "interrupted"
                job.finished_at = now
                job.error = (
                    f"process died while the job was {was}; its dataset "
                    "lived only in that process"
                )
                job.error_type = "InterruptedJob"
                self.journal.append({"event": "interrupted", "job": job.to_dict()})
                metrics.counter("service.jobs_interrupted").inc()
                get_event_bus().publish(
                    "job.interrupted",
                    job_id=job.job_id,
                    job_kind=job.kind,
                    error=job.error,
                    error_type=job.error_type,
                )
                continue
            job.status = "queued"
            job.recovered = True
            job.started_at = None
            self._cancel[job.job_id] = threading.Event()
            self.journal.append({"event": "requeued", "job": job.to_dict()})
            metrics.counter("service.jobs_recovered").inc()
            self._queue.put(job.job_id)

    def _maybe_rotate(self) -> None:
        if self.journal.entries_written < self.rotate_after:
            return
        with self._lock:
            records = sorted(
                self._jobs.values(), key=lambda j: (j.submitted_at, j.job_id)
            )
            terminal = [j for j in records if j.terminal]
            if len(terminal) > self.history_limit:
                for job in terminal[: -self.history_limit]:
                    del self._jobs[job.job_id]
                records = [j for j in records if j.job_id in self._jobs]
            self.journal.rotate(
                [{"event": "snapshot", "job": j.to_dict()} for j in records]
            )

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._draining.is_set():
                    return
                continue
            if self._draining.is_set():
                # Drained before starting: the job stays journaled as
                # queued and the next engine over this root runs it.
                return
            try:
                self._run_job(job_id)
            except Exception as exc:  # noqa: BLE001 — worker must survive
                self._settle_crashed_job(job_id, exc)

    def _run_job(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status != "queued":
                return
            cancel = self._cancel.get(job_id)
            if cancel is not None and cancel.is_set():
                self._finish(
                    job, "cancelled",
                    error="cancelled while queued",
                    error_type="JobCancelledError",
                )
                return
            job.status = "running"
            job.started_at = time.time()
        metrics = self._metrics()
        metrics.observe(
            "service.queue_wait", job.started_at - job.submitted_at
        )
        self.journal.append({"event": "started", "job": job.to_dict()})
        runner = StageRunner(
            self.policy, faults=self.faults,
            tracer=self.tracer, metrics=self.metrics,
        )
        # A journaled context may predate this build or be hand-edited;
        # a bad one must not fail the job it annotates.
        context = None
        if job.trace:
            try:
                context = TraceContext.from_dict(job.trace)
            except ValidationError:
                context = None
        with self._tracer().span(
            "service.job", context=context, job_id=job_id, kind=job.kind,
            recovered=job.recovered,
        ):
            with metrics.timer("service.job_elapsed"):
                try:
                    outcome = runner.run(
                        f"service.job:{job.kind}", self._execute, job, cancel
                    )
                except DegradedRunError as exc:
                    self._finish(
                        job, "failed",
                        error=str(exc), error_type="DegradedRunError",
                        attempts=runner.outcomes[-1].attempts
                        if runner.outcomes else 1,
                    )
                    return
        if outcome.ok:
            payload, degraded = outcome.value
            key = self._job_key(job)
            self.store.put(key, payload)
            self._cleanup_checkpoints(job_id)
            job.degraded = degraded
            job.result_key = key
            if degraded:
                metrics.counter("service.jobs_degraded").inc()
            self._finish(job, "succeeded", attempts=outcome.attempts)
        elif outcome.error_type == "JobCancelledError":
            self._finish(
                job, "cancelled",
                error=outcome.error, error_type=outcome.error_type,
                attempts=outcome.attempts,
            )
        else:
            self._finish(
                job, "failed",
                error=outcome.error, error_type=outcome.error_type,
                attempts=outcome.attempts,
            )

    def _settle_crashed_job(self, job_id: str, exc: Exception) -> None:
        """Settle a job whose engine-side plumbing raised.

        ``runner.run`` captures errors inside the job body; anything
        that still escapes ``_run_job`` — result serialisation, a full
        disk under ``store.put`` or a journal append — must not kill
        the worker thread (the pool would silently shrink) or strand
        the job ``running`` forever (``wait()`` would only time out).
        """
        self._metrics().counter("service.worker_errors").inc()
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
        error = f"engine error after the job body ran: {exc}"
        try:
            self._finish(
                job, "failed", error=error, error_type=type(exc).__name__
            )
        except Exception:  # noqa: BLE001 — journal may be the failing part
            # settle in memory so waiters unblock even if the journal
            # itself cannot record the failure
            with self._state:
                job.status = "failed"
                job.finished_at = time.time()
                job.error = error
                job.error_type = type(exc).__name__
                self._inline.pop(job.job_id, None)
                self._cancel.pop(job.job_id, None)
                self._state.notify_all()

    def _finish(
        self,
        job: JobRecord,
        status: str,
        *,
        error: str = "",
        error_type: str = "",
        attempts: int | None = None,
    ) -> None:
        with self._state:
            job.status = status
            job.finished_at = time.time()
            if attempts is not None:
                job.attempts = attempts
            job.error = error
            job.error_type = error_type
            self._inline.pop(job.job_id, None)
            self._cancel.pop(job.job_id, None)
            self._state.notify_all()
        self.journal.append({"event": status, "job": job.to_dict()})
        self._metrics().counter(f"service.jobs_{status}").inc()
        if status in ("failed", "interrupted"):
            get_event_bus().publish(
                f"job.{status}",
                job_id=job.job_id,
                job_kind=job.kind,
                error=error,
                error_type=error_type,
            )
        self._maybe_rotate()

    def _cleanup_checkpoints(self, job_id: str) -> None:
        # mid-run resume state only; ``.scanstate.json`` files are the
        # durable output of incremental scans and must survive the job
        # that wrote them — the next rescan over grown data starts there
        for suffix in (".state.json", ".scan.json"):
            (self.checkpoint_dir / f"{job_id}{suffix}").unlink(missing_ok=True)

    @staticmethod
    def _scan_state_name(value) -> str:
        """Validate a client-supplied scan-state name (no path tricks)."""
        name = str(value)
        ok = name and len(name) <= 100 and not name.startswith(".") and all(
            c.isalnum() or c in "._-" for c in name
        )
        if not ok:
            raise ValidationError(
                "params['state'] must be a plain name (letters, digits, "
                "'.', '_', '-'; not starting with '.')"
            )
        return name

    def _scan_state_path(self, job: JobRecord) -> Path:
        """Where an incremental job's ScanState lives.

        A client-chosen ``params['state']`` name lets successive jobs
        over a growing dataset share one state file; without it the
        job id keys the state, which still lets a crash-recovered rerun
        of the *same* job resume its delta re-score.
        """
        named = job.params.get("state")
        key = self._scan_state_name(named) if named is not None else job.job_id
        return self.checkpoint_dir / f"{key}.scanstate.json"

    # -- job bodies ----------------------------------------------------------

    def _materialize(self, job: JobRecord):
        """(dataset, predictions, config) for one attempt of a job."""
        with self._lock:
            inline = self._inline.get(job.job_id)
        if inline is not None:
            return inline
        config = AuditConfig.from_dict(dict(job.config))
        dataset = load_dataset(job.params["data"], job.params.get("schema"))
        return dataset, None, config

    def _execute(self, job: JobRecord, cancel) -> tuple[dict, bool]:
        """One supervised attempt; returns ``(result payload, degraded)``."""
        self._check_cancel(cancel, job.job_id)
        dataset, predictions, config = self._materialize(job)
        self._check_cancel(cancel, job.job_id)
        if job.kind == "audit":
            return self._run_audit(job, dataset, predictions, config, cancel)
        if job.kind == "subgroups":
            return self._run_subgroups(job, dataset, config, cancel)
        return self._run_workflow(job, dataset, config)

    def _run_audit(self, job, dataset, predictions, config, cancel):
        chunk_size = job.params.get("chunk_size")
        if not chunk_size and hasattr(dataset, "chunk_rows"):
            # packed datasets default to chunked ingestion: a full-
            # population audit must never materialise the pack, and the
            # streaming path is byte-identical to the in-memory one.
            chunk_size = dataset.chunk_rows
        if not chunk_size:
            from repro.api import audit as run_audit

            report = run_audit(dataset, predictions=predictions, config=config)
        else:
            chunk_size = int(chunk_size)
            if chunk_size < 1:
                raise ValidationError("chunk_size must be >= 1")
            checkpoint = self.checkpoint_dir / f"{job.job_id}.state.json"
            n_rows = dataset.n_rows

            def chunk_iter():
                for low in range(0, n_rows, chunk_size):
                    self._check_cancel(cancel, job.job_id)
                    piece = dataset.take(
                        np.arange(low, min(low + chunk_size, n_rows))
                    )
                    if predictions is None:
                        yield piece
                    else:
                        yield piece, predictions[low:low + chunk_size]

            accumulator = ingest_stream(
                chunk_iter(),
                config,
                checkpoint=str(checkpoint),
                checkpoint_every=int(job.params.get("checkpoint_every", 1)),
                resume=checkpoint.exists(),
            )
            report = finalize(accumulator, config)
        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": "audit",
            "degraded": bool(report.degraded),
            "is_clean": bool(report.is_clean),
            "report": report_to_dict(report),
        }
        return payload, bool(report.degraded)

    def _run_subgroups(self, job, dataset, config, cancel):
        checkpoint = self.checkpoint_dir / f"{job.job_id}.scan.json"
        attributes = job.params.get("attributes") or None

        def progress(done, total):
            self._check_cancel(cancel, job.job_id)

        scan_kwargs = {}
        if self.tracer is not None:
            # the engine's own tracer (not the process-global one) holds
            # the service.job span this scan must nest under
            scan_kwargs["tracer"] = self.tracer
        if self.metrics is not None:
            # likewise: pool-worker deltas must merge into the registry
            # GET /metrics actually serves
            scan_kwargs["metrics"] = self.metrics
        scan_payload = job.params.get("scan_config")
        if scan_payload is not None or config.scan is not None:
            scan = (
                ScanConfig.from_dict(dict(scan_payload))
                if scan_payload is not None
                else config.scan
            )
            adjust = job.params.get("adjust")
            if adjust is not None:
                # one semantic for both code paths: the job-level
                # correction override also governs a ScanConfig scan
                scan = scan.replace(correction=adjust)
            state_path = None
            if scan.strategy == "incremental":
                state_path = self._scan_state_path(job)
                # journal the durable state location before the scan so
                # a kill -9 recovery knows where the delta re-score left
                # its per-subgroup counts and scores
                self.journal.append(
                    {
                        "event": "scan_state",
                        "job_id": job.job_id,
                        "path": str(state_path),
                        "ts": time.time(),
                    }
                )
            result = scan_subgroups(
                dataset.labels(),
                dataset,
                attributes=list(attributes) if attributes else None,
                config=scan,
                checkpoint_path=str(checkpoint),
                resume=checkpoint.exists(),
                state_path=str(state_path) if state_path else None,
                on_progress=progress,
                **scan_kwargs,
            )
            payload = {
                "schema_version": RESULT_SCHEMA_VERSION,
                "kind": "subgroups",
                "degraded": False,
                "alpha": scan.alpha,
                "adjust": scan.correction,
                "strategy": scan.strategy,
                "scan": result.summary(),
                "state_path": str(state_path) if state_path else None,
                "n_subgroups": len(result.findings),
                "n_significant": len(result.flagged),
                "findings": [
                    {
                        **_finding_to_payload(finding),
                        "adjusted_p_value": finding.adjusted_p_value,
                        "significant": finding.significant(scan.alpha),
                    }
                    for finding in result.findings
                ],
            }
            return payload, False
        # legacy path: byte-identical to pre-ScanConfig payloads; the
        # exhaustive ScanConfig below only bundles the loose knobs so the
        # call avoids the deprecated individual keywords
        exhaustive = ScanConfig.from_audit(config).replace(
            checkpoint_every=int(job.params.get("checkpoint_every", 64)),
        )
        findings = audit_subgroups(
            dataset.labels(),
            dataset,
            attributes=list(attributes) if attributes else None,
            checkpoint_path=str(checkpoint),
            resume=checkpoint.exists(),
            on_progress=progress,
            config=config,
            scan_config=exhaustive,
            **scan_kwargs,
        )
        adjust = job.params.get("adjust", config.correction)
        if adjust and adjust != "none":
            findings = adjust_for_multiple_testing(findings, method=adjust)
        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": "subgroups",
            "degraded": False,
            "alpha": config.alpha,
            "adjust": adjust,
            "n_subgroups": len(findings),
            "n_significant": sum(
                1 for f in findings if f.significant(config.alpha)
            ),
            "findings": [
                {
                    **_finding_to_payload(finding),
                    "adjusted_p_value": finding.adjusted_p_value,
                    "significant": finding.significant(config.alpha),
                }
                for finding in findings
            ],
        }
        return payload, False

    def _run_workflow(self, job, dataset, config):
        profile_payload = dict(job.params.get("profile") or {})
        profile_payload.setdefault("name", f"service job {job.job_id}")
        profile = _dataclass_from_dict(UseCaseProfile, profile_payload)
        dossier = run_compliance_workflow(dataset, profile, config=config)
        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": "workflow",
            "degraded": bool(dossier.degraded),
            "verdict": dossier.verdict,
            "primary_metric": dossier.primary_metric,
            "dossier": dossier.to_dict(),
        }
        return payload, bool(dossier.degraded)
