"""Fault-tolerant audit service: jobs, journal, cache, and HTTP API.

The paper's legal framing assumes audits that serve institutions —
regulators resubmitting the same evidence, vendors auditing at scale —
so this package turns the library's audit surfaces into a supervised
background service: a :class:`~repro.service.engine.JobEngine` running
audits as journaled, cancellable, crash-recoverable jobs; a
content-addressed :class:`~repro.service.store.ResultStore` that makes
identical resubmissions cache hits with byte-identical reports; and a
reference-based HTTP/JSON API (``repro serve``) that returns job and
result references with paginated findings.
"""

from repro.service.engine import JobEngine
from repro.service.httpd import AuditHTTPServer, serve
from repro.service.jobs import JOB_KINDS, TERMINAL_STATUSES, JobRecord
from repro.service.journal import JobJournal
from repro.service.store import (
    ResultStore,
    array_fingerprint,
    cache_key,
    file_fingerprint,
)

__all__ = [
    "JOB_KINDS",
    "TERMINAL_STATUSES",
    "AuditHTTPServer",
    "JobEngine",
    "JobJournal",
    "JobRecord",
    "ResultStore",
    "array_fingerprint",
    "cache_key",
    "file_fingerprint",
    "serve",
]
