"""Cross-process trace context: one trace_id from HTTP edge to kernel.

A :class:`TraceContext` is the portable identity of a point in a trace:
the 128-bit ``trace_id`` shared by every span of one request, the
64-bit ``span_id`` of the span that is currently open, and the head
``sampled`` decision.  It serialises two ways:

* :meth:`~TraceContext.to_traceparent` — the W3C Trace Context
  ``traceparent`` header (``00-<trace_id>-<span_id>-<flags>``), carried
  on HTTP requests into ``POST /jobs`` and honoured on the way out, so
  an external caller's trace continues through the audit service;
* :meth:`~TraceContext.to_dict` — a plain JSON object, carried through
  the job journal (a crash-recovered job keeps its originating trace)
  and pickled into process-pool chunk workers.

Parsing is deliberately lenient where the W3C spec is
(:meth:`from_traceparent` returns ``None`` on malformed input — a bad
header must not fail the request it annotates) and strict where our own
durable formats are (:meth:`from_dict` raises
:class:`~repro.exceptions.ValidationError`, because a journaled context
is evidence).

:func:`head_sample` is the one sampling primitive: the decision is made
once, at the head of the trace (the HTTP edge or the CLI entry point),
and every downstream boundary honours the recorded flag instead of
re-rolling the dice — the only scheme in which a sampled trace is
always *complete*.
"""

from __future__ import annotations

import os
import random
import re
from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "head_sample",
]

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

#: flag bit 0 of the traceparent flags byte: "the caller recorded this".
_FLAG_SAMPLED = 0x01


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex characters."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex characters.

    Random ids (rather than a per-tracer sequence) are what make traces
    *mergeable*: spans minted in pool worker processes can be folded
    into the parent's file without an id-collision rewrite pass.
    """
    return os.urandom(8).hex()


def head_sample(rate: float, rng: random.Random | None = None) -> bool:
    """One head-sampling decision at probability ``rate``.

    ``rate`` is clamped semantics-free: ``>= 1`` always samples,
    ``<= 0`` never does.  ``rng`` injects determinism for tests.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return (rng or random).random() < rate


@dataclass(frozen=True)
class TraceContext:
    """The (trace_id, span_id, sampled) triple shipped across boundaries."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def __post_init__(self):
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id or ""):
            raise ValidationError(
                f"trace_id must be 32 lowercase hex chars, got "
                f"{self.trace_id!r}"
            )
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id or ""):
            raise ValidationError(
                f"span_id must be 16 lowercase hex chars, got "
                f"{self.span_id!r}"
            )

    @classmethod
    def generate(cls, sampled: bool = True) -> "TraceContext":
        """A brand-new root context (trace head with no upstream caller)."""
        return cls(
            trace_id=new_trace_id(), span_id=new_span_id(), sampled=sampled
        )

    def child(self, span_id: str | None = None) -> "TraceContext":
        """The context a span opened under this one hands further down."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            sampled=self.sampled,
        )

    # -- W3C traceparent -----------------------------------------------------

    def to_traceparent(self) -> str:
        flags = _FLAG_SAMPLED if self.sampled else 0
        return f"00-{self.trace_id}-{self.span_id}-{flags:02x}"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` on absent/malformed.

        Per the W3C spec a receiver must not fail a request over a bad
        header — it simply starts a new trace — so malformed input maps
        to ``None`` rather than an exception.
        """
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        if match["version"] == "ff":  # forbidden version value
            return None
        trace_id, span_id = match["trace_id"], match["span_id"]
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None  # all-zero ids are invalid per spec
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(int(match["flags"], 16) & _FLAG_SAMPLED),
        )

    # -- durable form --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        if not isinstance(payload, dict):
            raise ValidationError(
                f"trace context must be a mapping, got "
                f"{type(payload).__name__}"
            )
        try:
            return cls(
                trace_id=payload["trace_id"],
                span_id=payload["span_id"],
                sampled=bool(payload.get("sampled", True)),
            )
        except KeyError as exc:
            raise ValidationError(
                f"trace context is missing the {exc.args[0]!r} field"
            ) from None
