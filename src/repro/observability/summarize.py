"""Trace-file analysis: per-stage timing and retry tables.

``repro trace summarize PATH`` renders the table produced here — the
reviewer's view of a run: every stage grouped by name, with call counts,
latency percentiles, retry totals, and non-ok statuses.  The same
functions work as a library (:func:`summarize_trace` returns structured
rows) so dossier tooling can post-process traces programmatically.

Summaries read traces *forensically* (``read_trace(strict=False)``):
merged multi-process traces can legally carry several ``trace_meta``
envelopes, hand-concatenated ones may have lost theirs, and a killed
run can tear a line — none of which should prevent summarising whatever
survives.  :func:`summarize_trace_by_process` splits the same
aggregates per producing process for merged traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.metrics import Histogram
from repro.observability.trace import read_trace

__all__ = [
    "StageSummary",
    "summarize_trace",
    "summarize_trace_by_process",
    "render_summary_table",
]


@dataclass
class StageSummary:
    """Aggregate of all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    retries: int = 0
    errors: int = 0
    elapsed: list = field(default_factory=list)

    @property
    def p50(self) -> float:
        return Histogram._percentile(sorted(self.elapsed), 0.50)

    @property
    def p95(self) -> float:
        return Histogram._percentile(sorted(self.elapsed), 0.95)

    @property
    def max(self) -> float:
        return max(self.elapsed, default=0.0)


def _span_retries(span: dict) -> int:
    """Retries recorded on a span — the explicit attribute when present,
    otherwise the count of ``retry`` events."""
    attempts = span.get("attrs", {}).get("attempts")
    if isinstance(attempts, int) and attempts > 1:
        return attempts - 1
    return sum(
        1 for event in span.get("events", []) if event.get("name") == "retry"
    )


def _accumulate(summaries: dict, span: dict, group_prefix: bool) -> None:
    name = span.get("name", "?")
    if group_prefix:
        name = name.split(":", 1)[0]
    summary = summaries.get(name)
    if summary is None:
        summary = summaries[name] = StageSummary(name)
    try:
        elapsed = float(span.get("elapsed", 0.0))
    except (TypeError, ValueError):
        elapsed = 0.0
    summary.count += 1
    summary.total += elapsed
    summary.elapsed.append(elapsed)
    summary.retries += _span_retries(span)
    if span.get("status") != "ok":
        summary.errors += 1


def _ordered(summaries: dict) -> list[StageSummary]:
    return sorted(summaries.values(), key=lambda s: (-s.total, s.name))


def _forensic_lines(path) -> list[dict]:
    """Lenient trace read, but not *silent*: a file with nothing
    parseable at all is malformed input, not an empty trace."""
    from repro.exceptions import ValidationError

    lines = read_trace(path, strict=False)
    if not lines:
        raise ValidationError(
            f"trace {path} contains no parseable trace lines"
        )
    return lines


def summarize_trace(path, group_prefix: bool = False) -> list[StageSummary]:
    """Per-stage aggregates from a trace file, longest total first.

    ``group_prefix=True`` groups stage names by their prefix up to the
    first ``":"`` (all ``audit:*`` stages become one row) — the
    birds-eye view; the default keeps every distinct stage.

    Tolerant of imperfect files: missing or duplicated ``trace_meta``
    envelopes (merged multi-process traces) and torn lines are skipped,
    and v1 traces are accepted alongside v2.
    """
    summaries: dict[str, StageSummary] = {}
    for line in _forensic_lines(path):
        if line.get("kind") != "span":
            continue
        _accumulate(summaries, line, group_prefix)
    return _ordered(summaries)


def summarize_trace_by_process(
    path, group_prefix: bool = False
) -> list[tuple[str, list[StageSummary]]]:
    """Per-process stage aggregates from a (possibly merged) trace file.

    Returns ``[(process_label, summaries), ...]`` — the process that
    wrote the envelope first (the trace owner), then absorbed worker
    processes by ascending pid.  v1 spans, which carry no
    ``process_id``, land in an ``"unknown"`` section.
    """
    per_process: dict[str, dict[str, StageSummary]] = {}
    order: list[str] = []
    owner: str | None = None
    for line in _forensic_lines(path):
        kind = line.get("kind")
        if kind == "trace_meta":
            if owner is None and line.get("process_id") is not None:
                owner = f"pid {line['process_id']}"
            continue
        if kind != "span":
            continue
        pid = line.get("process_id")
        label = f"pid {pid}" if pid is not None else "unknown"
        if label not in per_process:
            per_process[label] = {}
            order.append(label)
        _accumulate(per_process[label], line, group_prefix)
    order.sort(
        key=lambda label: (
            label != owner,  # trace owner first
            label == "unknown",
            label,
        )
    )
    return [(label, _ordered(per_process[label])) for label in order]


def render_summary_table(
    summaries: list[StageSummary], top: int | None = None
) -> str:
    """Fixed-width table of stage summaries for terminal output."""
    rows = summaries if top is None else summaries[:top]
    header = ("stage", "calls", "total s", "p50 s", "p95 s", "max s",
              "retries", "errors")
    table = [header] + [
        (
            s.name,
            str(s.count),
            f"{s.total:.4f}",
            f"{s.p50:.4f}",
            f"{s.p95:.4f}",
            f"{s.max:.4f}",
            str(s.retries),
            str(s.errors),
        )
        for s in rows
    ]
    widths = [
        max(len(row[i]) for row in table) for i in range(len(header))
    ]
    lines = []
    for index, row in enumerate(table):
        cells = [
            row[0].ljust(widths[0]),
            *(cell.rjust(width) for cell, width in zip(row[1:], widths[1:])),
        ]
        lines.append("  ".join(cells))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    dropped = len(summaries) - len(rows)
    if dropped > 0:
        lines.append(f"... {dropped} more stage(s); raise --top to see all")
    return "\n".join(lines)
