"""Trace-file analysis: per-stage timing and retry tables.

``repro trace summarize PATH`` renders the table produced here — the
reviewer's view of a run: every stage grouped by name, with call counts,
latency percentiles, retry totals, and non-ok statuses.  The same
functions work as a library (:func:`summarize_trace` returns structured
rows) so dossier tooling can post-process traces programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.metrics import Histogram
from repro.observability.trace import read_trace

__all__ = ["StageSummary", "summarize_trace", "render_summary_table"]


@dataclass
class StageSummary:
    """Aggregate of all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    retries: int = 0
    errors: int = 0
    elapsed: list = field(default_factory=list)

    @property
    def p50(self) -> float:
        return Histogram._percentile(sorted(self.elapsed), 0.50)

    @property
    def p95(self) -> float:
        return Histogram._percentile(sorted(self.elapsed), 0.95)

    @property
    def max(self) -> float:
        return max(self.elapsed, default=0.0)


def _span_retries(span: dict) -> int:
    """Retries recorded on a span — the explicit attribute when present,
    otherwise the count of ``retry`` events."""
    attempts = span.get("attrs", {}).get("attempts")
    if isinstance(attempts, int) and attempts > 1:
        return attempts - 1
    return sum(
        1 for event in span.get("events", []) if event.get("name") == "retry"
    )


def summarize_trace(path, group_prefix: bool = False) -> list[StageSummary]:
    """Per-stage aggregates from a trace file, longest total first.

    ``group_prefix=True`` groups stage names by their prefix up to the
    first ``":"`` (all ``audit:*`` stages become one row) — the
    birds-eye view; the default keeps every distinct stage.
    """
    summaries: dict[str, StageSummary] = {}
    for line in read_trace(path):
        if line.get("kind") != "span":
            continue
        name = line.get("name", "?")
        if group_prefix:
            name = name.split(":", 1)[0]
        summary = summaries.get(name)
        if summary is None:
            summary = summaries[name] = StageSummary(name)
        elapsed = float(line.get("elapsed", 0.0))
        summary.count += 1
        summary.total += elapsed
        summary.elapsed.append(elapsed)
        summary.retries += _span_retries(line)
        if line.get("status") != "ok":
            summary.errors += 1
    return sorted(summaries.values(), key=lambda s: (-s.total, s.name))


def render_summary_table(
    summaries: list[StageSummary], top: int | None = None
) -> str:
    """Fixed-width table of stage summaries for terminal output."""
    rows = summaries if top is None else summaries[:top]
    header = ("stage", "calls", "total s", "p50 s", "p95 s", "max s",
              "retries", "errors")
    table = [header] + [
        (
            s.name,
            str(s.count),
            f"{s.total:.4f}",
            f"{s.p50:.4f}",
            f"{s.p95:.4f}",
            f"{s.max:.4f}",
            str(s.retries),
            str(s.errors),
        )
        for s in rows
    ]
    widths = [
        max(len(row[i]) for row in table) for i in range(len(header))
    ]
    lines = []
    for index, row in enumerate(table):
        cells = [
            row[0].ljust(widths[0]),
            *(cell.rjust(width) for cell, width in zip(row[1:], widths[1:])),
        ]
        lines.append("  ".join(cells))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    dropped = len(summaries) - len(rows)
    if dropped > 0:
        lines.append(f"... {dropped} more stage(s); raise --top to see all")
    return "\n".join(lines)
