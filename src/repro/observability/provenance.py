"""Provenance records: what evidence a fairness verdict rests on.

The paper's position (after Wachter et al.) is that automated fairness
metrics are *summary evidence for human judicial review* — so every
verdict must be able to answer: which data (byte-exact), which code
version, under which execution policy, how long each stage took, what
was retried, and what degraded.  A :class:`ProvenanceRecord` is that
answer, attached to every :class:`~repro.core.audit.AuditReport` and
:class:`~repro.workflow.ComplianceDossier` and rendered into their
markdown/JSON reports.

The dataset fingerprint is a sha256 over the schema layout and every
column's bytes — the same construction the subgroup scan uses to refuse
foreign checkpoints — cached on the (immutable) dataset so repeated
audits of one dataset hash it once.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ProvenanceRecord", "dataset_fingerprint"]

_FINGERPRINT_ATTR = "_repro_fingerprint"


def dataset_fingerprint(dataset) -> str:
    """sha256 fingerprint of a dataset's schema layout and column bytes.

    Two datasets share a fingerprint iff they have identical column
    names/roles and byte-identical column arrays — the property a legal
    evidence trail needs ("this verdict was computed on exactly this
    data").  Cached on the dataset instance; `TabularDataset` is
    immutable, so the cache can never go stale.
    """
    cached = getattr(dataset, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    layout = {
        "n_rows": dataset.n_rows,
        "columns": [
            [column.name, str(column.kind), str(column.role)]
            for column in dataset.schema
        ],
    }
    digest.update(json.dumps(layout, sort_keys=True).encode())
    for column in dataset.schema:
        digest.update(np.ascontiguousarray(dataset.column(column.name)).tobytes())
    fingerprint = digest.hexdigest()
    try:
        setattr(dataset, _FINGERPRINT_ATTR, fingerprint)
    except AttributeError:  # slotted/foreign dataset: just skip the cache
        pass
    return fingerprint


def _policy_summary(policy) -> dict:
    """The audit-relevant fields of an ExecutionPolicy, JSON-able."""
    if policy is None:
        return {}
    return {
        "deadline": policy.deadline,
        "max_retries": policy.max_retries,
        "max_failures": policy.max_failures,
        "fail_fast": policy.fail_fast,
    }


@dataclass
class ProvenanceRecord:
    """The audit trail behind one verdict.

    ``stages`` carries one entry per supervised stage — name, status,
    elapsed seconds, attempts, and the retry history — in execution
    order; aggregate properties summarise it for report rendering.
    """

    dataset_fingerprint: str
    n_rows: int
    repro_version: str
    created_unix: float
    policy: dict = field(default_factory=dict)
    stages: list = field(default_factory=list)
    trace_run_id: str = ""

    @classmethod
    def collect(cls, dataset, policy, runner, tracer=None) -> "ProvenanceRecord":
        """Build a record from a finished run's dataset, policy, and runner."""
        from repro import __version__

        stages = []
        for outcome in runner.outcomes:
            entry = {
                "stage": outcome.stage,
                "status": outcome.status,
                "elapsed": round(outcome.elapsed, 6),
                "attempts": outcome.attempts,
            }
            if outcome.attempt_log:
                entry["attempt_log"] = list(outcome.attempt_log)
            if not outcome.ok:
                entry["error_type"] = outcome.error_type
            stages.append(entry)
        run_id = ""
        if tracer is not None and getattr(tracer, "enabled", False):
            run_id = tracer.run_id
        return cls(
            dataset_fingerprint=dataset_fingerprint(dataset),
            n_rows=dataset.n_rows,
            repro_version=__version__,
            created_unix=time.time(),
            policy=_policy_summary(policy),
            stages=stages,
            trace_run_id=run_id,
        )

    # -- aggregates ----------------------------------------------------------

    @property
    def total_elapsed(self) -> float:
        return float(sum(entry["elapsed"] for entry in self.stages))

    @property
    def total_retries(self) -> int:
        return sum(max(0, entry["attempts"] - 1) for entry in self.stages)

    @property
    def degraded_stages(self) -> int:
        return sum(1 for entry in self.stages if entry["status"] != "ok")

    def slowest(self, top: int = 5) -> list[dict]:
        """The ``top`` longest stages, slowest first."""
        return sorted(
            self.stages, key=lambda entry: -entry["elapsed"]
        )[:top]

    # -- rendering -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "dataset_fingerprint": self.dataset_fingerprint,
            "n_rows": self.n_rows,
            "repro_version": self.repro_version,
            "created_unix": self.created_unix,
            "policy": dict(self.policy),
            "trace_run_id": self.trace_run_id,
            "totals": {
                "stages": len(self.stages),
                "elapsed": round(self.total_elapsed, 6),
                "retries": self.total_retries,
                "degraded_stages": self.degraded_stages,
            },
            "stages": list(self.stages),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProvenanceRecord":
        """Rebuild a record written by :meth:`to_dict`.

        ``totals`` is derived from ``stages`` and ignored on input, so
        ``ProvenanceRecord.from_dict(r.to_dict()).to_dict() ==
        r.to_dict()``.
        """
        return cls(
            dataset_fingerprint=payload["dataset_fingerprint"],
            n_rows=int(payload["n_rows"]),
            repro_version=payload["repro_version"],
            created_unix=float(payload["created_unix"]),
            policy=dict(payload.get("policy", {})),
            stages=[dict(entry) for entry in payload.get("stages", [])],
            trace_run_id=payload.get("trace_run_id", ""),
        )

    def markdown_lines(self) -> list[str]:
        """The report's Provenance section (without the heading)."""
        policy = self.policy
        policy_text = (
            "default (fail-open, no deadline, no retries)"
            if not policy or not any(
                policy.get(key) for key in
                ("deadline", "max_retries", "max_failures", "fail_fast")
            )
            else ", ".join(
                f"{key}={policy[key]}" for key in
                ("deadline", "max_retries", "max_failures", "fail_fast")
                if policy.get(key)
            )
        )
        lines = [
            f"- dataset sha256: `{self.dataset_fingerprint}` "
            f"({self.n_rows} rows)",
            f"- repro version: {self.repro_version}",
            f"- execution policy: {policy_text}",
            f"- stages: {len(self.stages)} supervised, "
            f"{self.total_elapsed:.3f}s total, "
            f"{self.total_retries} retried, "
            f"{self.degraded_stages} degraded",
        ]
        if self.trace_run_id:
            lines.append(f"- trace run id: `{self.trace_run_id}`")
        slowest = [s for s in self.slowest(3) if s["elapsed"] > 0]
        if slowest:
            slow = ", ".join(
                f"`{entry['stage']}` {entry['elapsed']:.3f}s"
                for entry in slowest
            )
            lines.append(f"- slowest stages: {slow}")
        return lines
