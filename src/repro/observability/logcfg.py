"""Logging configuration for the ``repro`` logger hierarchy.

Library modules log through ``logging.getLogger(__name__)`` under the
``repro`` root logger, which carries a ``NullHandler`` (set in
``repro/__init__.py``) so embedding applications decide what to do with
records.  The CLI calls :func:`configure_logging` once per invocation to
attach a stderr handler with either the human format — lowercased level
names, matching the CLI's historical ``error: ...`` contract — or a
JSON-lines format (``--log-json``) so error paths land in the same
machine-readable stream as traces.

Reconfiguration is idempotent: the previously installed handler is
replaced, never stacked, so repeated ``main()`` calls (tests, REPLs)
log each record exactly once.
"""

from __future__ import annotations

import json
import logging
import sys

__all__ = [
    "configure_logging",
    "verbosity_to_level",
    "JsonLineFormatter",
    "HumanFormatter",
]

#: marker attribute identifying the handler this module installed
_HANDLER_FLAG = "_repro_cli_handler"


class HumanFormatter(logging.Formatter):
    """``level: message`` with a lowercased level name.

    The CLI's error contract predates the logging layer — scripts grep
    stderr for ``error:`` — so the formatter preserves it exactly.
    """

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        if record.exc_info and record.exc_info[0] is not None:
            message += f" ({record.exc_info[0].__name__})"
        return f"{record.levelname.lower()}: {message}"


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: level, logger, message, timestamp."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "created": record.created,
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["error_type"] = record.exc_info[0].__name__
        return json.dumps(payload, sort_keys=True)


def verbosity_to_level(verbosity: int) -> int:
    """Map ``-q``/-``v`` counts to a logging level.

    ``-1`` (quiet) → ERROR, ``0`` → WARNING, ``1`` → INFO, ``2+`` → DEBUG.
    """
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0,
    json_lines: bool = False,
    stream=None,
) -> logging.Handler:
    """Attach (or replace) the CLI handler on the ``repro`` logger.

    Returns the installed handler.  ``stream`` defaults to the *current*
    ``sys.stderr`` so captured streams (tests) and redirections work.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLineFormatter() if json_lines else HumanFormatter()
    )
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(verbosity_to_level(verbosity))
    return handler
