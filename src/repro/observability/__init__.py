"""Audit provenance and telemetry: traces, metrics, events, evidence.

The paper argues fairness verdicts are only *summary evidence* — a
human reviewer (or a court) must be able to interrogate how a verdict
was produced.  This package is the substrate for that interrogation:

* :mod:`~repro.observability.trace` — span-based tracing with
  parent/child nesting, cross-process merging, and an atomic JSON-lines
  sink (trace format v2);
* :mod:`~repro.observability.context` — the :class:`TraceContext`
  carried across HTTP, job-journal, and process-pool boundaries
  (W3C-``traceparent``-compatible) plus head sampling;
* :mod:`~repro.observability.metrics` — process-local labeled counters,
  gauges, timers, and bounded histograms, with cross-process delta
  merging;
* :mod:`~repro.observability.promfmt` — Prometheus text exposition
  rendering and the strict format checker behind ``GET /metrics``;
* :mod:`~repro.observability.events` — the ring-buffered alerting
  event bus (drift, job failures, retry exhaustion) behind
  ``GET /events`` and ``repro events tail``;
* :mod:`~repro.observability.provenance` — the
  :class:`ProvenanceRecord` attached to every audit report and
  compliance dossier (dataset sha256, code version, policy, per-stage
  timings and retry history);
* :mod:`~repro.observability.logcfg` — the CLI's logging setup
  (human or JSON-lines stderr);
* :mod:`~repro.observability.summarize` — per-stage timing/retry
  tables from trace files (``repro trace summarize``), tolerant of
  merged multi-process traces.

Everything defaults to *off*: instrumented hot paths run against a
cached null tracer, so the no-telemetry path costs <0.5% (guarded by
``benchmarks/bench_o2_telemetry.py``, extending ``bench_o1``).
"""

from repro.observability.context import (
    TraceContext,
    head_sample,
    new_span_id,
    new_trace_id,
)
from repro.observability.events import (
    Event,
    EventBus,
    get_event_bus,
    read_events,
    set_event_bus,
    use_event_bus,
)
from repro.observability.logcfg import configure_logging, verbosity_to_level
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.observability.promfmt import (
    PROM_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.provenance import ProvenanceRecord, dataset_fingerprint
from repro.observability.summarize import (
    StageSummary,
    render_summary_table,
    summarize_trace,
    summarize_trace_by_process,
)
from repro.observability.trace import (
    NULL_TRACER,
    TRACE_VERSION,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    use_tracer,
)

__all__ = [
    # tracing
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TRACE_VERSION",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_trace",
    # context propagation
    "TraceContext",
    "head_sample",
    "new_trace_id",
    "new_span_id",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    # exposition
    "PROM_CONTENT_TYPE",
    "render_prometheus",
    "parse_prometheus",
    # events
    "Event",
    "EventBus",
    "get_event_bus",
    "set_event_bus",
    "use_event_bus",
    "read_events",
    # provenance
    "ProvenanceRecord",
    "dataset_fingerprint",
    # logging
    "configure_logging",
    "verbosity_to_level",
    # summaries
    "StageSummary",
    "summarize_trace",
    "summarize_trace_by_process",
    "render_summary_table",
]
