"""Audit provenance and telemetry: traces, metrics, evidence trails.

The paper argues fairness verdicts are only *summary evidence* — a
human reviewer (or a court) must be able to interrogate how a verdict
was produced.  This package is the substrate for that interrogation:

* :mod:`~repro.observability.trace` — span-based tracing with
  parent/child nesting and an atomic JSON-lines sink;
* :mod:`~repro.observability.metrics` — process-local counters, timers,
  and p50/p95 histograms;
* :mod:`~repro.observability.provenance` — the
  :class:`ProvenanceRecord` attached to every audit report and
  compliance dossier (dataset sha256, code version, policy, per-stage
  timings and retry history);
* :mod:`~repro.observability.logcfg` — the CLI's logging setup
  (human or JSON-lines stderr);
* :mod:`~repro.observability.summarize` — per-stage timing/retry
  tables from trace files (``repro trace summarize``).

Everything defaults to *off*: instrumented hot paths run against a
cached null tracer, so the no-trace path costs <3% (guarded by
``benchmarks/bench_o1_observability_overhead.py``).
"""

from repro.observability.logcfg import configure_logging, verbosity_to_level
from repro.observability.metrics import (
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.observability.provenance import ProvenanceRecord, dataset_fingerprint
from repro.observability.summarize import (
    StageSummary,
    render_summary_table,
    summarize_trace,
)
from repro.observability.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    use_tracer,
)

__all__ = [
    # tracing
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_trace",
    # metrics
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    # provenance
    "ProvenanceRecord",
    "dataset_fingerprint",
    # logging
    "configure_logging",
    "verbosity_to_level",
    # summaries
    "StageSummary",
    "summarize_trace",
    "render_summary_table",
]
