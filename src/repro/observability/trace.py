"""Span-based tracing for audit runs.

A :class:`Tracer` records *spans* — named, timed units of work with
attributes, parent/child nesting, and point-in-time *events* (retries,
checkpoint writes, progress marks).  Spans time with
:func:`time.perf_counter` (monotonic) and carry offsets from the
tracer's epoch, so a trace file reconstructs the exact run timeline.

Since format v2 a trace is *distributed*: every span carries the
128-bit ``trace_id`` it belongs to, a random 64-bit ``span_id``, the
``parent_span_id`` that links it upward, and the ``process_id`` that
produced it.  A :class:`~repro.observability.context.TraceContext`
continues a trace across any boundary — HTTP header, job journal,
pickled into a process-pool worker — and :meth:`Tracer.absorb` folds
spans recorded in another process back into this tracer's file, so one
``trace_id`` reaches from ``POST /jobs`` to the deepest
``subgroups.score_chunk`` span.

The disabled path is a first-class concern: instrumented code runs with
the module-level :data:`NULL_TRACER` unless a caller installs a real one
(:func:`set_tracer` / :func:`use_tracer`), and a null span is one cached
no-op object — tracing must cost essentially nothing when off, because
the audit hot paths are instrumented unconditionally.

Traces persist as JSON lines (one object per line; first line is a
``trace_meta`` envelope) via the robustness layer's atomic writer, so a
killed run never leaves a half-written evidence file.  The reader
accepts both format versions (v1 lines are normalised to the v2 key
names) and has a lenient mode for merged or truncated files.  See
``docs/observability.md`` for the file format.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

from repro.exceptions import ValidationError
from repro.observability.context import TraceContext, new_span_id, new_trace_id
from repro.robustness.checkpoint import atomic_write_text

__all__ = [
    "TRACE_VERSION",
    "READABLE_TRACE_VERSIONS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_trace",
]

TRACE_VERSION = 2

#: every format version :func:`read_trace` understands; v1 span lines
#: (integer ids under ``id``/``parent``) are normalised on read.
READABLE_TRACE_VERSIONS = (1, 2)


class Span:
    """One timed unit of work inside a trace.

    Created by :meth:`Tracer.span`; not instantiated directly.  Inside
    the ``with`` block, :meth:`set` adds attributes and :meth:`event`
    records timestamped point events (a retry, a checkpoint write).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "process_id",
        "attrs", "events", "t_start", "elapsed", "status", "error",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: str | None, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.process_id = tracer.process_id
        self.attrs = attrs
        self.events: list[dict] = []
        self.t_start = 0.0
        self.elapsed = 0.0
        self.status = "ok"
        self.error = ""

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (attempt counts, sizes)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append({
            "name": name,
            "t": self._tracer._now(),
            "attrs": attrs,
        })

    def mark(self, status: str, error: str = "") -> "Span":
        """Set the span's final status explicitly (e.g. a *captured*
        stage failure, which never escapes as an exception)."""
        self.status = status
        if error:
            self.error = error
        return self

    def context(self) -> TraceContext:
        """The :class:`TraceContext` that continues the trace below here."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> dict:
        payload = {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_id,
            "process_id": self.process_id,
            "name": self.name,
            "t_start": round(self.t_start, 6),
            "elapsed": round(self.elapsed, 6),
            "status": self.status,
            "attrs": self.attrs,
        }
        if self.error:
            payload["error"] = self.error
        if self.events:
            payload["events"] = self.events
        return payload


class Tracer:
    """Collects spans for one run and writes them as JSON lines.

    Thread-safe: the span stack is thread-local (a worker thread started
    mid-span parents its spans to whatever that thread opened, to the
    context :meth:`bind` installed for that thread, or to the tracer's
    root), while the finished-span list is shared under a lock so the
    supervised runner's deadline threads are captured too.

    Parameters
    ----------
    run_id:
        Human-readable run label written into the ``trace_meta``
        envelope.
    context:
        Optional upstream :class:`TraceContext`.  When given, this
        tracer continues that trace: it adopts the caller's
        ``trace_id`` and parents its root spans to the caller's span —
        the process-pool-worker and service-job side of propagation.
    """

    enabled = True

    def __init__(self, run_id: str = "", context: TraceContext | None = None):
        self.run_id = run_id or f"run-{int(time.time())}"
        self.created = time.time()
        self.context = context
        self.trace_id = context.trace_id if context else new_trace_id()
        self.process_id = os.getpid()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._records: list[Span] = []
        self._foreign: list[dict] = []
        self._local = threading.local()

    # -- internals -----------------------------------------------------------

    def _now(self) -> float:
        """Seconds since this tracer's epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording -----------------------------------------------------------

    def bind(self, context: TraceContext | None) -> None:
        """Install a parent context for spans opened *by this thread*.

        The escape hatch for threads that cannot see the opener's span
        stack (stage-deadline worker threads): their root spans parent
        to ``context`` instead of the tracer's root, keeping the chain
        resolvable across the thread hop.
        """
        self._local.base = context

    @contextmanager
    def span(self, name: str, *, context: TraceContext | None = None, **attrs):
        """Open a span; nesting inside another span records it as a child.

        ``context`` explicitly parents the span to (and adopts the
        ``trace_id`` of) an upstream :class:`TraceContext` — used at
        propagation boundaries; everywhere else the innermost open span
        on this thread is the parent.

        An exception escaping the block marks the span ``status="error"``
        (with the exception repr) and re-raises — tracing never swallows
        the fault it is documenting.
        """
        stack = self._stack()
        parent = context or (
            stack[-1].context() if stack
            else getattr(self._local, "base", None) or self.context
        )
        span = Span(
            self, name,
            trace_id=parent.trace_id if parent else self.trace_id,
            span_id=new_span_id(),
            parent_id=parent.span_id if parent else None,
            attrs=dict(attrs),
        )
        stack.append(span)
        span.t_start = self._now()
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.elapsed = self._now() - span.t_start
            stack.pop()
            with self._lock:
                self._records.append(span)

    def event(self, name: str, **attrs) -> None:
        """A point event outside any span (recorded as a zero-length span)."""
        stack = self._stack()
        if stack:
            stack[-1].event(name, **attrs)
            return
        with self.span(name, **attrs):
            pass

    def current_context(self) -> TraceContext | None:
        """The context continuing the innermost open span on this thread.

        Falls back to the thread's bound context, then to the tracer's
        creation context; ``None`` when this tracer is a trace head with
        nothing open — callers then simply start a child trace rooted at
        the tracer itself.
        """
        stack = self._stack()
        if stack:
            return stack[-1].context()
        return getattr(self._local, "base", None) or self.context

    # -- cross-process merging -----------------------------------------------

    def absorb(self, lines: list[dict], *, clock_offset: float = 0.0) -> None:
        """Fold span lines recorded by another tracer into this trace.

        ``lines`` are v2-normalised line objects (from
        :func:`read_trace` or a child's ``to_lines``); non-span lines
        are ignored.  ``clock_offset`` shifts the child's ``t_start``
        offsets onto this tracer's timeline (pass ``child_created -
        parent_created``).  Ids are kept verbatim — random span ids make
        collisions negligible — so parent links minted from a
        :class:`TraceContext` resolve after the merge.
        """
        absorbed = []
        for line in lines:
            if line.get("kind") != "span":
                continue
            span = dict(line)
            span["t_start"] = round(
                float(span.get("t_start", 0.0)) + clock_offset, 6
            )
            absorbed.append(span)
        with self._lock:
            self._foreign.extend(absorbed)

    # -- reading / persistence -----------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans recorded in this process, in completion order."""
        with self._lock:
            return list(self._records)

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def to_lines(self, extra: list[dict] | None = None) -> list[dict]:
        """The trace as JSON-able line objects (meta first, then spans —
        native ones, then any absorbed from other processes)."""
        from repro import __version__

        lines: list[dict] = [{
            "kind": "trace_meta",
            "version": TRACE_VERSION,
            "run_id": self.run_id,
            "trace_id": self.trace_id,
            "process_id": self.process_id,
            "created": self.created,
            "repro_version": __version__,
        }]
        lines.extend(span.to_dict() for span in self.spans)
        with self._lock:
            lines.extend(dict(span) for span in self._foreign)
        lines.extend(extra or [])
        return lines

    def write(self, path, extra: list[dict] | None = None) -> None:
        """Atomically write the trace as JSON lines.

        ``extra`` appends additional line objects — the CLI uses it for
        the metrics snapshot and the provenance record, so one file holds
        the whole evidence trail.
        """
        text = "\n".join(
            json.dumps(line, sort_keys=True) for line in self.to_lines(extra)
        )
        atomic_write_text(path, text + "\n")


class _NullSpan:
    """Shared no-op span: the entire cost of tracing-while-disabled."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = None
    parent_id = None
    process_id = 0
    status = "ok"

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return None

    def mark(self, status, error=""):
        return self

    def context(self):
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; the default when tracing is off."""

    enabled = False
    run_id = ""
    trace_id = ""
    process_id = 0
    spans: list = []

    def span(self, name: str, *, context=None, **attrs):
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def find(self, name: str) -> list:
        return []

    def bind(self, context) -> None:
        return None

    def current_context(self) -> None:
        return None

    def absorb(self, lines, *, clock_offset: float = 0.0) -> None:
        return None


NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER
_current_lock = threading.Lock()


def get_tracer() -> Tracer | NullTracer:
    """The process-current tracer (the null tracer unless one is set)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer | None):
    """Install ``tracer`` as current; returns the previous one.

    ``None`` restores the null tracer.
    """
    global _current
    with _current_lock:
        previous = _current
        _current = NULL_TRACER if tracer is None else tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Scope a tracer: install for the block, restore the previous after."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def _normalize_line(line: dict) -> dict:
    """Rewrite a v1 span line to the v2 key names (idempotent on v2)."""
    if line.get("kind") != "span" or "span_id" in line:
        return line
    span = dict(line)
    if "id" in span:
        span["span_id"] = span.pop("id")
    if "parent" in span:
        span["parent_span_id"] = span.pop("parent")
    return span


def read_trace(path, *, strict: bool = True) -> list[dict]:
    """Parse a JSON-lines trace file written by :meth:`Tracer.write`.

    In strict mode (the default) the ``trace_meta`` envelope must be
    line one and carry a readable format version, and every line must
    be JSON — violations raise
    :class:`~repro.exceptions.ValidationError` with the line number,
    since a trace is evidence someone must debug.  v1 files are
    accepted and their span lines normalised to the v2 key names
    (``span_id`` / ``parent_span_id``).

    ``strict=False`` is the forensic mode for imperfect files — traces
    concatenated from several processes (duplicate ``trace_meta``
    lines), missing their envelope, or torn mid-line by a kill: bad
    lines are skipped, any envelope anywhere is kept in place, and
    whatever parses is returned.
    """
    from pathlib import Path

    lines: list[dict] = []
    for number, raw in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not raw.strip():
            continue
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError as exc:
            if strict:
                raise ValidationError(
                    f"malformed trace {path}: line {number} is not JSON "
                    f"({exc.msg})"
                ) from exc
            continue
        if not isinstance(parsed, dict):
            if strict:
                raise ValidationError(
                    f"malformed trace {path}: line {number} is not an object"
                )
            continue
        lines.append(_normalize_line(parsed))
    if strict:
        if not lines or lines[0].get("kind") != "trace_meta":
            raise ValidationError(
                f"malformed trace {path}: first line must be a trace_meta "
                "envelope"
            )
        if lines[0].get("version") not in READABLE_TRACE_VERSIONS:
            raise ValidationError(
                f"trace {path} has format version "
                f"{lines[0].get('version')!r}; this build reads "
                f"{READABLE_TRACE_VERSIONS}"
            )
    return lines
