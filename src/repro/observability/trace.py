"""Span-based tracing for audit runs.

A :class:`Tracer` records *spans* — named, timed units of work with
attributes, parent/child nesting, and point-in-time *events* (retries,
checkpoint writes, progress marks).  Spans time with
:func:`time.perf_counter` (monotonic) and carry offsets from the
tracer's epoch, so a trace file reconstructs the exact run timeline.

The disabled path is a first-class concern: instrumented code runs with
the module-level :data:`NULL_TRACER` unless a caller installs a real one
(:func:`set_tracer` / :func:`use_tracer`), and a null span is one cached
no-op object — tracing must cost essentially nothing when off, because
the audit hot paths are instrumented unconditionally.

Traces persist as JSON lines (one object per line; first line is a
``trace_meta`` envelope) via the robustness layer's atomic writer, so a
killed run never leaves a half-written evidence file.  See
``docs/observability.md`` for the file format.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager

from repro.exceptions import ValidationError
from repro.robustness.checkpoint import atomic_write_text

__all__ = [
    "TRACE_VERSION",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_trace",
]

TRACE_VERSION = 1


class Span:
    """One timed unit of work inside a trace.

    Created by :meth:`Tracer.span`; not instantiated directly.  Inside
    the ``with`` block, :meth:`set` adds attributes and :meth:`event`
    records timestamped point events (a retry, a checkpoint write).
    """

    __slots__ = (
        "name", "span_id", "parent_id", "attrs", "events",
        "t_start", "elapsed", "status", "error", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.events: list[dict] = []
        self.t_start = 0.0
        self.elapsed = 0.0
        self.status = "ok"
        self.error = ""

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (attempt counts, sizes)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append({
            "name": name,
            "t": self._tracer._now(),
            "attrs": attrs,
        })

    def mark(self, status: str, error: str = "") -> "Span":
        """Set the span's final status explicitly (e.g. a *captured*
        stage failure, which never escapes as an exception)."""
        self.status = status
        if error:
            self.error = error
        return self

    def to_dict(self) -> dict:
        payload = {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t_start": round(self.t_start, 6),
            "elapsed": round(self.elapsed, 6),
            "status": self.status,
            "attrs": self.attrs,
        }
        if self.error:
            payload["error"] = self.error
        if self.events:
            payload["events"] = self.events
        return payload


class Tracer:
    """Collects spans for one run and writes them as JSON lines.

    Thread-safe: the span stack is thread-local (a worker thread started
    mid-span parents its spans to whatever that thread opened, or to the
    root), while the finished-span list is shared under a lock so the
    supervised runner's deadline threads are captured too.
    """

    enabled = True

    def __init__(self, run_id: str = ""):
        self.run_id = run_id or f"run-{int(time.time())}"
        self.created = time.time()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 0
        self._records: list[Span] = []
        self._local = threading.local()

    # -- internals -----------------------------------------------------------

    def _now(self) -> float:
        """Seconds since this tracer's epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span; nesting inside another span records it as a child.

        An exception escaping the block marks the span ``status="error"``
        (with the exception repr) and re-raises — tracing never swallows
        the fault it is documenting.
        """
        stack = self._stack()
        with self._lock:
            span_id = self._next_id = self._next_id + 1
        parent_id = stack[-1].span_id if stack else None
        span = Span(self, name, span_id, parent_id, dict(attrs))
        stack.append(span)
        span.t_start = self._now()
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.elapsed = self._now() - span.t_start
            stack.pop()
            with self._lock:
                self._records.append(span)

    def event(self, name: str, **attrs) -> None:
        """A point event outside any span (recorded as a zero-length span)."""
        stack = self._stack()
        if stack:
            stack[-1].event(name, **attrs)
            return
        with self.span(name, **attrs):
            pass

    # -- reading / persistence -----------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._records)

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def to_lines(self, extra: list[dict] | None = None) -> list[dict]:
        """The trace as JSON-able line objects (meta first, then spans)."""
        from repro import __version__

        lines: list[dict] = [{
            "kind": "trace_meta",
            "version": TRACE_VERSION,
            "run_id": self.run_id,
            "created": self.created,
            "repro_version": __version__,
        }]
        lines.extend(span.to_dict() for span in self.spans)
        lines.extend(extra or [])
        return lines

    def write(self, path, extra: list[dict] | None = None) -> None:
        """Atomically write the trace as JSON lines.

        ``extra`` appends additional line objects — the CLI uses it for
        the metrics snapshot and the provenance record, so one file holds
        the whole evidence trail.
        """
        text = "\n".join(
            json.dumps(line, sort_keys=True) for line in self.to_lines(extra)
        )
        atomic_write_text(path, text + "\n")


class _NullSpan:
    """Shared no-op span: the entire cost of tracing-while-disabled."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    status = "ok"

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return None

    def mark(self, status, error=""):
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; the default when tracing is off."""

    enabled = False
    run_id = ""
    spans: list = []

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def find(self, name: str) -> list:
        return []


NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER
_current_lock = threading.Lock()


def get_tracer() -> Tracer | NullTracer:
    """The process-current tracer (the null tracer unless one is set)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer | None):
    """Install ``tracer`` as current; returns the previous one.

    ``None`` restores the null tracer.
    """
    global _current
    with _current_lock:
        previous = _current
        _current = NULL_TRACER if tracer is None else tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Scope a tracer: install for the block, restore the previous after."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def read_trace(path) -> list[dict]:
    """Parse a JSON-lines trace file written by :meth:`Tracer.write`.

    Validates the ``trace_meta`` envelope (it must be line one and carry
    a readable format version) and raises
    :class:`~repro.exceptions.ValidationError` on malformed input —
    with the line number, since a trace is evidence someone must debug.
    """
    from pathlib import Path

    lines: list[dict] = []
    for number, raw in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not raw.strip():
            continue
        try:
            lines.append(json.loads(raw))
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"malformed trace {path}: line {number} is not JSON "
                f"({exc.msg})"
            ) from exc
    if not lines or lines[0].get("kind") != "trace_meta":
        raise ValidationError(
            f"malformed trace {path}: first line must be a trace_meta "
            "envelope"
        )
    if lines[0].get("version") != TRACE_VERSION:
        raise ValidationError(
            f"trace {path} has format version {lines[0].get('version')!r}; "
            f"this build reads {TRACE_VERSION}"
        )
    return lines
