"""Prometheus text exposition: rendering and a strict format checker.

:func:`render_prometheus` turns a :class:`~repro.observability.metrics.
MetricsRegistry` into text-format 0.0.4 — the lingua franca every
standard scraper reads — so ``GET /metrics`` stops being a bespoke JSON
shape.  Internal dotted metric names (``service.jobs_succeeded``) are
sanitised into the ``repro_`` namespace (``repro_service_jobs_succeeded``),
counters gain the conventional ``_total`` suffix, and histograms emit
the full cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` family.

:func:`parse_prometheus` is the matching *strict* checker used by the
test suite and the CI curl smoke: it validates metric-name and label
grammar, requires a ``# TYPE`` before any sample of a family, enforces
counter ``_total`` naming, and checks histogram invariants (cumulative
non-decreasing buckets, a ``+Inf`` bucket equal to ``_count``).
Violations raise :class:`~repro.exceptions.ValidationError` with the
offending line, so a formatting regression fails loudly rather than
silently breaking scrapers.
"""

from __future__ import annotations

import math
import re

from repro.exceptions import ValidationError
from repro.observability.metrics import MetricsRegistry

__all__ = ["PROM_CONTENT_TYPE", "render_prometheus", "parse_prometheus"]

#: the content type scrapers expect from a text-format endpoint.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAMESPACE = "repro_"
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _sanitize(name: str) -> str:
    """Map an internal dotted metric name into the exposition namespace."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return _NAMESPACE + cleaned


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r'\"')
        .replace("\n", r"\n")
    )


def _fmt_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    merged.update(extra or {})
    if not merged:
        return ""
    inner = ",".join(
        f'{re.sub(r"[^a-zA-Z0-9_]", "_", str(k))}="{_escape_label(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format 0.0.4.

    One ``# TYPE`` line precedes each metric family; label sets of the
    same family render under one declaration.  The output always ends
    with a newline (scrapers require it).
    """
    collected = registry.collect()
    lines: list[str] = []

    grouped: dict[str, list] = {}
    for name, labels, value in collected["counters"]:
        grouped.setdefault(name, []).append((labels, value))
    for name in sorted(grouped):
        exposed = _sanitize(name)
        if not exposed.endswith("_total"):
            exposed += "_total"
        lines.append(f"# HELP {exposed} repro counter {name}")
        lines.append(f"# TYPE {exposed} counter")
        for labels, value in grouped[name]:
            lines.append(
                f"{exposed}{_fmt_labels(labels)} {_fmt_value(value)}"
            )

    grouped = {}
    for name, labels, value in collected["gauges"]:
        grouped.setdefault(name, []).append((labels, value))
    for name in sorted(grouped):
        exposed = _sanitize(name)
        lines.append(f"# HELP {exposed} repro gauge {name}")
        lines.append(f"# TYPE {exposed} gauge")
        for labels, value in grouped[name]:
            lines.append(
                f"{exposed}{_fmt_labels(labels)} {_fmt_value(value)}"
            )

    grouped = {}
    for name, labels, state in collected["histograms"]:
        grouped.setdefault(name, []).append((labels, state))
    for name in sorted(grouped):
        exposed = _sanitize(name)
        lines.append(f"# HELP {exposed} repro histogram {name}")
        lines.append(f"# TYPE {exposed} histogram")
        for labels, state in grouped[name]:
            cumulative = 0
            for bound, bucket in zip(
                state["bounds"], state["bucket_counts"]
            ):
                cumulative += bucket
                lines.append(
                    f"{exposed}_bucket"
                    f"{_fmt_labels(labels, {'le': _fmt_value(bound)})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{exposed}_bucket{_fmt_labels(labels, {'le': '+Inf'})} "
                f"{state['count']}"
            )
            lines.append(
                f"{exposed}_sum{_fmt_labels(labels)} "
                f"{_fmt_value(state['total'])}"
            )
            lines.append(
                f"{exposed}_count{_fmt_labels(labels)} {state['count']}"
            )

    return "\n".join(lines) + "\n" if lines else "\n"


def _parse_value(token: str, line_no: int) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise ValidationError(
            f"prometheus text line {line_no}: {token!r} is not a valid "
            "sample value"
        ) from None


def _parse_labels(raw: str | None, line_no: int) -> dict:
    if not raw:
        return {}
    labels: dict[str, str] = {}
    rest = raw
    while rest:
        match = _LABEL_PAIR_RE.match(rest)
        if match is None:
            raise ValidationError(
                f"prometheus text line {line_no}: malformed label "
                f"segment {rest!r}"
            )
        name = match["name"]
        if name in labels:
            raise ValidationError(
                f"prometheus text line {line_no}: duplicate label "
                f"{name!r}"
            )
        labels[name] = (
            match["value"]
            .replace(r"\n", "\n")
            .replace(r"\"", '"')
            .replace(r"\\", "\\")
        )
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValidationError(
                f"prometheus text line {line_no}: expected ',' between "
                f"labels, got {rest!r}"
            )
    return labels


def _family_of(name: str, types: dict) -> str | None:
    """The declared family a sample name belongs to, if any."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in types:
                return base
    return None


def parse_prometheus(text: str) -> dict:
    """Strictly parse/validate Prometheus text exposition format.

    Returns ``{family_name: {"type": ..., "samples": [(name, labels,
    value), ...]}}``.  Raises
    :class:`~repro.exceptions.ValidationError` on any grammar or
    structural violation: samples without a preceding ``# TYPE``,
    re-declared families, counters not named ``*_total``, histogram
    buckets that are non-cumulative or whose ``+Inf`` bucket disagrees
    with ``_count``.
    """
    types: dict[str, str] = {}
    families: dict[str, dict] = {}
    seen_samples: dict[str, bool] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                continue  # free-form comments are legal
            if parts[1] == "HELP":
                continue
            if len(parts) < 4:
                raise ValidationError(
                    f"prometheus text line {line_no}: malformed TYPE line"
                )
            name, kind = parts[2], parts[3].strip()
            if not _NAME_RE.match(name):
                raise ValidationError(
                    f"prometheus text line {line_no}: invalid metric name "
                    f"{name!r}"
                )
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValidationError(
                    f"prometheus text line {line_no}: unknown metric type "
                    f"{kind!r}"
                )
            if name in types:
                raise ValidationError(
                    f"prometheus text line {line_no}: duplicate TYPE for "
                    f"{name!r}"
                )
            if name in seen_samples:
                raise ValidationError(
                    f"prometheus text line {line_no}: TYPE for {name!r} "
                    "appears after its samples"
                )
            types[name] = kind
            families[name] = {"type": kind, "samples": []}
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValidationError(
                f"prometheus text line {line_no}: not a valid sample line: "
                f"{line!r}"
            )
        name = match["name"]
        labels = _parse_labels(match["labels"], line_no)
        value = _parse_value(match["value"], line_no)
        family = _family_of(name, types)
        if family is None:
            raise ValidationError(
                f"prometheus text line {line_no}: sample {name!r} has no "
                "preceding # TYPE declaration"
            )
        kind = types[family]
        if kind == "counter" and not name.endswith("_total"):
            raise ValidationError(
                f"prometheus text line {line_no}: counter sample {name!r} "
                "must end with _total"
            )
        if kind == "histogram" and name == family:
            raise ValidationError(
                f"prometheus text line {line_no}: histogram {family!r} must "
                "expose _bucket/_sum/_count samples, not a bare value"
            )
        if name.endswith("_bucket") and kind == "histogram" \
                and "le" not in labels:
            raise ValidationError(
                f"prometheus text line {line_no}: histogram bucket sample "
                "is missing its 'le' label"
            )
        for label_name in labels:
            if not _LABEL_NAME_RE.match(label_name):
                raise ValidationError(
                    f"prometheus text line {line_no}: invalid label name "
                    f"{label_name!r}"
                )
        seen_samples[family] = True
        families[family]["samples"].append((name, labels, value))

    for family, info in families.items():
        if info["type"] != "histogram":
            continue
        _check_histogram(family, info["samples"])
    return families


def _group_key(labels: dict) -> tuple:
    return tuple(sorted(
        (k, v) for k, v in labels.items() if k != "le"
    ))


def _check_histogram(family: str, samples: list) -> None:
    """Histogram invariants per label set: cumulative buckets, +Inf==count."""
    buckets: dict[tuple, list] = {}
    counts: dict[tuple, float] = {}
    sums: dict[tuple, float] = {}
    for name, labels, value in samples:
        key = _group_key(labels)
        if name == f"{family}_bucket":
            buckets.setdefault(key, []).append(
                (_parse_value(labels["le"], 0), value)
            )
        elif name == f"{family}_count":
            counts[key] = value
        elif name == f"{family}_sum":
            sums[key] = value
    for key, series in buckets.items():
        ordered = sorted(series, key=lambda item: item[0])
        previous = -math.inf
        cumulative = -1.0
        for bound, value in ordered:
            if bound <= previous:
                raise ValidationError(
                    f"histogram {family!r}: duplicate or unordered bucket "
                    f"bound {bound!r}"
                )
            if value < cumulative:
                raise ValidationError(
                    f"histogram {family!r}: bucket counts are not "
                    "cumulative"
                )
            previous, cumulative = bound, value
        if not ordered or ordered[-1][0] != math.inf:
            raise ValidationError(
                f"histogram {family!r}: missing the +Inf bucket"
            )
        if key not in counts or key not in sums:
            raise ValidationError(
                f"histogram {family!r}: missing _sum or _count sample"
            )
        if ordered[-1][1] != counts[key]:
            raise ValidationError(
                f"histogram {family!r}: +Inf bucket ({ordered[-1][1]}) "
                f"disagrees with _count ({counts[key]})"
            )
