"""Alerting event bus: ring-buffered pub/sub with a JSON-lines sink.

The routing substrate for the monitoring fleet: producers —
:class:`~repro.streaming.monitor.FairnessMonitor` drift detections,
:class:`~repro.service.engine.JobEngine` job failures and admission
rejections, :class:`~repro.robustness.runner.StageRunner` retry
exhaustion — call :meth:`EventBus.publish` with a dotted event kind
(``monitor.drift``, ``job.failed``, ``stage.retry_exhausted``) and a
JSON-able payload.  Consumers read three ways:

* :meth:`EventBus.since` — cursor-style polling over the in-memory ring
  (what ``GET /events?since=`` serves); the ring is bounded, so a slow
  consumer loses *old* events, never blocks a producer;
* subscriber callbacks — in-process alert routing, exceptions swallowed
  (an alert hook must never take down the audited path);
* a JSON-lines sink file — the durable feed ``repro events tail`` reads.

Every event carries a monotonically increasing ``seq`` (the polling
cursor), a wall-clock ``ts``, its ``kind``, and the payload.  A
module-level default bus (:func:`get_event_bus`) serves instrumented
code; tests scope their own with :func:`use_event_bus`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path

from repro.exceptions import ValidationError

__all__ = [
    "Event",
    "EventBus",
    "get_event_bus",
    "set_event_bus",
    "use_event_bus",
    "read_events",
]

#: default ring capacity — enough for a burst of drift events on every
#: stream of a fleet without unbounded growth.
DEFAULT_CAPACITY = 1024


class Event:
    """One published event: (seq, ts, kind, payload)."""

    __slots__ = ("seq", "ts", "kind", "payload")

    def __init__(self, seq: int, ts: float, kind: str, payload: dict):
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.payload = payload

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": round(self.ts, 6),
            "kind": self.kind,
            "payload": self.payload,
        }


class EventBus:
    """Bounded in-memory event log with optional durable sink.

    Thread-safe; publishing is O(1) and never blocks on consumers.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events are evicted first.
    sink:
        Optional path; every event is appended as one JSON line (and
        flushed, so ``tail -f`` semantics work) — the feed for
        ``repro events tail`` and external alert routers.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sink=None):
        if capacity < 1:
            raise ValidationError(
                f"event bus capacity must be >= 1, got {capacity}"
            )
        self._lock = threading.Lock()
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._subscribers: list = []
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_file = None
        if self._sink_path is not None:
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink_file = open(self._sink_path, "a", encoding="utf-8")

    @property
    def capacity(self) -> int:
        return self._ring.maxlen

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 when none published)."""
        return self._seq

    def publish(self, kind: str, **payload) -> Event:
        """Record an event; returns it (its ``seq`` is the new cursor)."""
        with self._lock:
            self._seq += 1
            event = Event(self._seq, time.time(), kind, payload)
            self._ring.append(event)
            subscribers = list(self._subscribers)
            if self._sink_file is not None:
                try:
                    self._sink_file.write(
                        json.dumps(event.to_dict(), sort_keys=True) + "\n"
                    )
                    self._sink_file.flush()
                except OSError:
                    pass  # a full disk must not fail the audited path
        for callback in subscribers:
            try:
                callback(event)
            except Exception:
                pass  # alert hooks never take down the publisher
        return event

    def subscribe(self, callback) -> None:
        """Register ``callback(event)`` for every future publish."""
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    def since(self, seq: int = 0, *, kind: str | None = None,
              stream: str | None = None,
              limit: int | None = None) -> list[Event]:
        """Events with ``seq`` strictly greater than the cursor.

        ``kind`` filters by exact kind or dotted prefix (``"job."``
        matches ``job.failed`` and ``job.rejected``); ``stream`` keeps
        only events whose payload carries that ``stream`` label (how a
        fleet's merged ``monitor.drift`` feed is split per stream);
        ``limit`` caps the result from the *oldest* end so a poller
        never skips events.
        """
        with self._lock:
            events = [e for e in self._ring if e.seq > seq]
        if kind:
            prefix = kind if kind.endswith(".") else kind + "."
            events = [
                e for e in events
                if e.kind == kind or e.kind.startswith(prefix)
            ]
        if stream is not None:
            events = [
                e for e in events if e.payload.get("stream") == stream
            ]
        if limit is not None and limit >= 0:
            events = events[:limit]
        return events

    def close(self) -> None:
        """Close the sink file (idempotent); the ring stays readable."""
        with self._lock:
            if self._sink_file is not None:
                try:
                    self._sink_file.close()
                except OSError:
                    pass
                self._sink_file = None


_default = EventBus()
_default_lock = threading.Lock()


def get_event_bus() -> EventBus:
    """The process-current bus used by instrumented publishers."""
    return _default


def set_event_bus(bus: EventBus | None) -> EventBus:
    """Install ``bus`` as current; returns the previous one.

    ``None`` installs a fresh default-capacity bus with no sink.
    """
    global _default
    with _default_lock:
        previous = _default
        _default = bus if bus is not None else EventBus()
    return previous


@contextmanager
def use_event_bus(bus: EventBus | None = None):
    """Scope a bus: install for the block, restore the previous after."""
    bus = bus if bus is not None else EventBus()
    previous = set_event_bus(bus)
    try:
        yield bus
    finally:
        set_event_bus(previous)


def read_events(path, *, since: int = 0, kind: str | None = None,
                stream: str | None = None) -> list[dict]:
    """Parse a JSON-lines event sink file (tolerantly).

    Torn trailing lines — the sink is an append-only feed, not an
    atomic artifact — are skipped, matching the forgiving posture of
    every forensic reader in this package.
    """
    events: list[dict] = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        if not raw.strip():
            continue
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if not isinstance(parsed, dict) or "seq" not in parsed:
            continue
        if parsed.get("seq", 0) <= since:
            continue
        event_kind = str(parsed.get("kind", ""))
        if kind:
            prefix = kind if kind.endswith(".") else kind + "."
            if not (
                event_kind == kind or event_kind.startswith(prefix)
            ):
                continue
        if stream is not None:
            payload = parsed.get("payload")
            if (
                not isinstance(payload, dict)
                or payload.get("stream") != stream
            ):
                continue
        events.append(parsed)
    return events
