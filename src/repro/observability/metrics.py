"""Process-local metrics: counters, timers, and latency histograms.

A :class:`MetricsRegistry` is the numeric side of the telemetry layer:
counters for throughput ("subgroups evaluated", "stages retried"),
histograms for latency distributions (p50/p95/max snapshots), and a
timer context manager that feeds a histogram.  Everything is in-process
and thread-safe; :meth:`MetricsRegistry.snapshot` renders the current
state as one plain JSON-able dict for trace files and dashboards.

A module-level default registry (:func:`get_metrics`) serves the
instrumented hot paths; tests swap it with :func:`use_metrics` to assert
on exactly what one run recorded.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """A sample collection with percentile snapshots.

    Stores raw observations (audit runs have bounded stage counts, so no
    sketching is needed); :meth:`snapshot` reports count, total, mean,
    p50, p95, and max.
    """

    __slots__ = ("name", "_samples", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        """Linear-interpolation percentile over a sorted sample."""
        if not ordered:
            return 0.0
        position = (len(ordered) - 1) * q
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    def snapshot(self) -> dict:
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}
        total = sum(ordered)
        return {
            "count": len(ordered),
            "total": round(total, 6),
            "mean": round(total / len(ordered), 6),
            "p50": round(self._percentile(ordered, 0.50), 6),
            "p95": round(self._percentile(ordered, 0.95), 6),
            "max": round(ordered[-1], 6),
        }


class MetricsRegistry:
    """Named counters and histograms for one process (or one test)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
        return histogram

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        self.histogram(name).observe(value)

    @contextmanager
    def timer(self, name: str):
        """Time the block and feed the elapsed seconds to a histogram."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def snapshot(self) -> dict:
        """All metrics as one JSON-able dict, names sorted."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "histograms": {
                name: histograms[name].snapshot()
                for name in sorted(histograms)
            },
        }

    def reset(self) -> None:
        """Drop all recorded metrics (tests and long-lived processes)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


_default = MetricsRegistry()
_default_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-current registry used by the instrumented hot paths."""
    return _default


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as current; returns the previous one.

    ``None`` installs a fresh empty registry.
    """
    global _default
    with _default_lock:
        previous = _default
        _default = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | None = None):
    """Scope a registry: install for the block, restore the previous after."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
