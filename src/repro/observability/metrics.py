"""Process-local metrics: counters, gauges, timers, and histograms.

A :class:`MetricsRegistry` is the numeric side of the telemetry layer:
counters for throughput ("subgroups evaluated", "stages retried"),
gauges for current levels (queue depth), histograms for latency
distributions.  Since v2 every instrument accepts *labels* (keyword
dimensions — ``registry.counter("service.jobs", kind="subgroups")``),
histograms are **bounded**: a fixed bucket layout for Prometheus
exposition plus a fixed-size reservoir (Vitter's Algorithm R) for
percentile snapshots, so a histogram on a long-lived service process
holds a constant amount of memory no matter how many samples it sees.

Everything is in-process and thread-safe.  Two serial forms exist:

* :meth:`MetricsRegistry.snapshot` — the current state as one plain
  JSON-able dict, for trace files and the JSON ``/metrics`` view;
* :meth:`MetricsRegistry.delta` / :meth:`MetricsRegistry.merge_delta` —
  the cross-process form: a pool worker records into a fresh registry,
  ships ``delta()`` back in its spill file, and the parent folds it in
  with ``merge_delta`` so scan telemetry from worker processes is no
  longer silently dropped.  ``merge_delta`` validates shape strictly
  (:class:`~repro.exceptions.ValidationError`) — a torn spill file from
  a killed worker must never corrupt the parent's counters.

A module-level default registry (:func:`get_metrics`) serves the
instrumented hot paths; tests swap it with :func:`use_metrics` to assert
on exactly what one run recorded.
"""

from __future__ import annotations

import math
import random
import threading
import time
import zlib
from contextlib import contextmanager

from repro.exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "RESERVOIR_SIZE",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]

#: default histogram bucket upper bounds, in seconds — tuned for audit
#: stage latencies (sub-millisecond scoring calls up to multi-second
#: full scans).  ``+Inf`` is implicit as the final bucket.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: reservoir capacity per histogram.  Below this count percentile
#: snapshots are *exact* (every sample retained); above it they are
#: estimates over a uniform random sample of everything observed.
RESERVOIR_SIZE = 1024


def _label_key(labels: dict) -> tuple:
    """Canonical hashable identity of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _flat_name(name: str, labels: tuple) -> str:
    """Flat display key: ``name`` or ``name{a="b",c="d"}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing numeric metric."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A metric that can go up and down (queue depth, active workers)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A bounded sample distribution: fixed buckets + percentile reservoir.

    Memory is constant: ``len(buckets)+1`` integer bucket counts for the
    Prometheus view and at most :data:`RESERVOIR_SIZE` retained samples
    (Algorithm R, so the reservoir is a uniform sample of the full
    stream) for p50/p95 snapshots.  The reservoir RNG is seeded from the
    histogram's name, keeping snapshots reproducible in tests.
    """

    __slots__ = (
        "name", "labels", "bounds", "_bucket_counts", "_reservoir",
        "_count", "_total", "_max", "_rng", "_lock",
    )

    def __init__(self, name: str, labels: tuple = (),
                 buckets: tuple | None = None):
        self.name = name
        self.labels = labels
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValidationError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last is +Inf
        self._reservoir: list[float] = []
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._rng = random.Random(zlib.crc32(name.encode()))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    break
            else:
                self._bucket_counts[-1] += 1
            if len(self._reservoir) < RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < RESERVOIR_SIZE:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        """Linear-interpolation percentile over a sorted sample."""
        if not ordered:
            return 0.0
        position = (len(ordered) - 1) * q
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    def state(self) -> dict:
        """The raw mergeable state (bounds, bucket counts, reservoir)."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "bucket_counts": list(self._bucket_counts),
                "count": self._count,
                "total": self._total,
                "max": self._max,
                "reservoir": list(self._reservoir),
            }

    def merge(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Bucket bounds must match exactly; reservoir samples are
        re-sampled through Algorithm R so the merged reservoir stays an
        (approximately) uniform sample of the combined stream.
        """
        bounds = state.get("bounds")
        if list(bounds or ()) != list(self.bounds):
            raise ValidationError(
                f"histogram {self.name!r}: cannot merge mismatched bucket "
                f"bounds {bounds!r} into {list(self.bounds)!r}"
            )
        counts = state.get("bucket_counts")
        if (
            not isinstance(counts, list)
            or len(counts) != len(self._bucket_counts)
            or not all(isinstance(c, int) and c >= 0 for c in counts)
        ):
            raise ValidationError(
                f"histogram {self.name!r}: malformed bucket counts in delta"
            )
        reservoir = state.get("reservoir", [])
        if not isinstance(reservoir, list) or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in reservoir
        ):
            raise ValidationError(
                f"histogram {self.name!r}: malformed reservoir in delta"
            )
        count = state.get("count")
        total = state.get("total")
        peak = state.get("max")
        if (
            not isinstance(count, int) or count < 0
            or not isinstance(total, (int, float)) or isinstance(total, bool)
            or not isinstance(peak, (int, float)) or isinstance(peak, bool)
        ):
            raise ValidationError(
                f"histogram {self.name!r}: malformed summary fields in delta"
            )
        with self._lock:
            for index, add in enumerate(counts):
                self._bucket_counts[index] += add
            self._count += count
            self._total += float(total)
            if float(peak) > self._max:
                self._max = float(peak)
            for value in reservoir:
                if len(self._reservoir) < RESERVOIR_SIZE:
                    self._reservoir.append(float(value))
                else:
                    slot = self._rng.randrange(self._count)
                    if slot < RESERVOIR_SIZE:
                        self._reservoir[slot] = float(value)

    def snapshot(self) -> dict:
        with self._lock:
            ordered = sorted(self._reservoir)
            count, total, peak = self._count, self._total, self._max
            buckets = {
                str(bound): cumulative
                for bound, cumulative in zip(
                    self.bounds,
                    _cumulate(self._bucket_counts[:-1]),
                )
            }
        if not count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0, "buckets": buckets}
        return {
            "count": count,
            "total": round(total, 6),
            "mean": round(total / count, 6),
            "p50": round(self._percentile(ordered, 0.50), 6),
            "p95": round(self._percentile(ordered, 0.95), 6),
            "max": round(peak, 6),
            "buckets": buckets,
        }


def _cumulate(counts: list[int]) -> list[int]:
    running, out = 0, []
    for count in counts:
        running += count
        out.append(running)
    return out


class MetricsRegistry:
    """Named, labeled counters/gauges/histograms for one process.

    The label maps are plain dicts guarded by one registry lock, so
    concurrent first-touch of the same ``(name, labels)`` pair from
    service worker threads always converges on one instrument.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter(name, key[1])
        return counter

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge(name, key[1])
        return gauge

    def histogram(self, name: str, *, buckets: tuple | None = None,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(
                    name, key[1], buckets=buckets
                )
        return histogram

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample into the named histogram."""
        self.histogram(name, **labels).observe(value)

    @contextmanager
    def timer(self, name: str, **labels):
        """Time the block and feed the elapsed seconds to a histogram."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start, **labels)

    def collect(self) -> dict:
        """Every instrument with its structured identity, for exposition.

        Returns ``{"counters": [...], "gauges": [...], "histograms":
        [...]}`` where each entry is ``(name, labels_dict, payload)`` —
        the value for counters/gauges, the :meth:`Histogram.state` plus
        snapshot for histograms.  Families are sorted by (name, labels).
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": [
                (name, dict(labels), c.value)
                for (name, labels), c in counters
            ],
            "gauges": [
                (name, dict(labels), g.value)
                for (name, labels), g in gauges
            ],
            "histograms": [
                (name, dict(labels), h.state())
                for (name, labels), h in histograms
            ],
        }

    def snapshot(self) -> dict:
        """All metrics as one JSON-able dict, flat keys sorted.

        Unlabeled instruments keep their plain name as the key, so the
        pre-v2 snapshot shape is a strict subset of this one.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        payload = {
            "counters": {
                _flat_name(*key): counters[key].value
                for key in sorted(counters)
            },
            "histograms": {
                _flat_name(*key): histograms[key].snapshot()
                for key in sorted(histograms)
            },
        }
        if gauges:
            payload["gauges"] = {
                _flat_name(*key): gauges[key].value
                for key in sorted(gauges)
            }
        return payload

    # -- cross-process deltas ------------------------------------------------

    def delta(self) -> dict:
        """This registry's full contents as a mergeable JSON-able delta.

        Pool workers record into a *fresh* registry, so "everything" is
        exactly "what this worker contributed"; the parent folds it in
        with :meth:`merge_delta`.
        """
        collected = self.collect()
        return {
            "counters": [
                [name, labels, value]
                for name, labels, value in collected["counters"]
            ],
            "gauges": [
                [name, labels, value]
                for name, labels, value in collected["gauges"]
            ],
            "histograms": [
                [name, labels, state]
                for name, labels, state in collected["histograms"]
            ],
        }

    def merge_delta(self, delta: dict) -> None:
        """Fold a worker's :meth:`delta` into this registry.

        Validation is all-or-nothing per family entry: any malformed
        entry raises :class:`~repro.exceptions.ValidationError` *before*
        anything from the delta is applied, so a spill file torn by a
        killed worker can never half-corrupt the parent's counters.
        """
        if not isinstance(delta, dict):
            raise ValidationError(
                f"metrics delta must be a mapping, got {type(delta).__name__}"
            )
        entries = []
        for family in ("counters", "gauges", "histograms"):
            for entry in delta.get(family, ()):
                if (
                    not isinstance(entry, (list, tuple))
                    or len(entry) != 3
                    or not isinstance(entry[0], str)
                    or not isinstance(entry[1], dict)
                ):
                    raise ValidationError(
                        f"malformed metrics delta entry in {family!r}: "
                        f"{entry!r}"
                    )
                name, labels, payload = entry
                if family == "histograms":
                    if not isinstance(payload, dict):
                        raise ValidationError(
                            f"malformed histogram state for {name!r}"
                        )
                elif (
                    not isinstance(payload, (int, float))
                    or isinstance(payload, bool)
                ):
                    raise ValidationError(
                        f"malformed metrics delta value for {name!r}: "
                        f"{payload!r}"
                    )
                entries.append((family, name, labels, payload))
        # dry-run histogram validation against a scratch instrument so a
        # bad state rejects before any counter below it was applied
        for family, name, labels, payload in entries:
            if family == "histograms":
                bounds = payload.get("bounds")
                if not isinstance(bounds, list) or not bounds or not all(
                    isinstance(b, (int, float)) and not isinstance(b, bool)
                    for b in bounds
                ):
                    raise ValidationError(
                        f"histogram {name!r}: malformed bucket bounds in delta"
                    )
                Histogram(name, buckets=tuple(bounds)).merge(payload)
                with self._lock:
                    existing = self._histograms.get(
                        (name, _label_key(labels))
                    )
                if existing is not None and list(existing.bounds) != [
                    float(b) for b in bounds
                ]:
                    raise ValidationError(
                        f"histogram {name!r}: delta bucket bounds do not "
                        f"match the registry's"
                    )
        for family, name, labels, payload in entries:
            if family == "counters":
                self.counter(name, **labels).inc(payload)
            elif family == "gauges":
                self.gauge(name, **labels).inc(payload)
            else:
                bounds = tuple(payload["bounds"])
                self.histogram(name, buckets=bounds, **labels).merge(payload)

    def reset(self) -> None:
        """Drop all recorded metrics (tests and long-lived processes)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_default = MetricsRegistry()
_default_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-current registry used by the instrumented hot paths."""
    return _default


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as current; returns the previous one.

    ``None`` installs a fresh empty registry.
    """
    global _default
    with _default_lock:
        previous = _default
        _default = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | None = None):
    """Scope a registry: install for the block, restore the previous after."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
