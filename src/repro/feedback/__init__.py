"""Feedback-loop simulation (paper Section IV.D)."""

from repro.feedback.simulator import (
    FeedbackHistory,
    FeedbackLoopSimulator,
    RoundRecord,
)

__all__ = ["FeedbackLoopSimulator", "FeedbackHistory", "RoundRecord"]
