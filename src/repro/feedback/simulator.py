"""Feedback-loop simulation (paper Section IV.D).

The paper describes the self-reinforcing hiring loop: a model trained on
biased data makes biased recommendations; those recommendations re-enter
the training data; and rejected groups are discouraged from applying,
shrinking their future representation.  :class:`FeedbackLoopSimulator`
implements that loop round by round:

1. train the model on the accumulated training data;
2. draw a fresh applicant cohort (whose group mix reflects accumulated
   discouragement);
3. score the cohort, record fairness metrics;
4. append the cohort *with the model's own decisions as labels* to the
   training data (the self-labelling mechanism);
5. update each group's application propensity from its acceptance rate.

An optional intervention hook transforms each round's decisions before
they are recorded and appended — the paper's "if no fairness-correcting
action is taken" counterfactual is the hook left empty.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro._validation import (
    check_in_range,
    check_positive_int,
    check_random_state,
)
from repro.core.metrics import demographic_parity
from repro.data.dataset import TabularDataset
from repro.data.generators import make_hiring
from repro.exceptions import ValidationError
from repro.models.base import Classifier
from repro.models.logistic import LogisticRegression
from repro.models.preprocessing import Standardizer

__all__ = ["RoundRecord", "FeedbackHistory", "FeedbackLoopSimulator"]


@dataclass(frozen=True)
class RoundRecord:
    """Metrics captured at the end of one simulation round."""

    round_index: int
    dp_gap: float
    hire_rates: dict
    application_shares: dict
    training_size: int


@dataclass
class FeedbackHistory:
    """Full trajectory of a feedback-loop simulation."""

    records: list = field(default_factory=list)

    def dp_gaps(self) -> list[float]:
        return [r.dp_gap for r in self.records]

    def application_share(self, group) -> list[float]:
        return [r.application_shares.get(group, 0.0) for r in self.records]

    def hire_rate(self, group) -> list[float]:
        return [r.hire_rates.get(group, float("nan")) for r in self.records]

    @property
    def amplification(self) -> float:
        """Final DP gap minus initial DP gap (positive = loop amplified bias)."""
        if len(self.records) < 2:
            return 0.0
        return self.records[-1].dp_gap - self.records[0].dp_gap


class FeedbackLoopSimulator:
    """Multi-round retraining loop over a hiring market.

    Parameters
    ----------
    initial_data:
        Seed training dataset (typically biased, via
        :func:`repro.data.generators.make_hiring` with ``direct_bias``).
    model_factory:
        Zero-argument callable producing a fresh classifier each round.
    cohort_size:
        Applicants drawn per round.
    discouragement:
        In [0, 1]: how strongly a group's application propensity tracks
        its acceptance-rate ratio.  0 disables the discouragement channel;
        1 means a group accepted at half the top group's rate applies at
        half its base rate next round.
    intervention:
        Optional ``f(decisions, cohort) -> decisions`` applied each round
        before decisions are recorded and appended (a mitigation hook).
    proxy_strength:
        Proxy strength passed to the cohort generator, so self-labelling
        can transmit bias even without the protected attribute as a
        feature.
    """

    def __init__(
        self,
        initial_data: TabularDataset | None = None,
        model_factory: Callable[[], Classifier] | None = None,
        cohort_size: int = 500,
        discouragement: float = 0.0,
        intervention: Callable[[np.ndarray, TabularDataset], np.ndarray] | None = None,
        proxy_strength: float = 0.8,
        random_state: int | np.random.Generator | None = None,
    ):
        self._rng = check_random_state(random_state)
        if initial_data is None:
            initial_data = make_hiring(
                n=1500,
                direct_bias=2.0,
                proxy_strength=proxy_strength,
                random_state=self._rng,
            )
        if initial_data.schema.label_name is None:
            raise ValidationError("initial_data must carry labels")
        self.initial_data = initial_data
        self.model_factory = model_factory or (
            lambda: LogisticRegression(max_iter=600)
        )
        self.cohort_size = check_positive_int(cohort_size, "cohort_size")
        self.discouragement = check_in_range(
            discouragement, "discouragement", 0.0, 1.0
        )
        self.intervention = intervention
        self.proxy_strength = proxy_strength

    # -- one round ------------------------------------------------------------

    def _draw_cohort(self, female_share: float) -> TabularDataset:
        return make_hiring(
            n=self.cohort_size,
            female_fraction=female_share,
            direct_bias=0.0,  # fresh applicants are unbiased; bias lives in the model
            proxy_strength=self.proxy_strength,
            random_state=self._rng,
        )

    def run(self, n_rounds: int = 10) -> FeedbackHistory:
        """Simulate ``n_rounds`` of the retrain/decide/append loop."""
        check_positive_int(n_rounds, "n_rounds")
        history = FeedbackHistory()
        training = self.initial_data
        base_female_share = float(
            np.mean(self.initial_data.column("sex") == "female")
        )
        female_share = base_female_share

        for round_index in range(n_rounds):
            scaler = Standardizer()
            X_train = scaler.fit_transform(training.feature_matrix())
            model = self.model_factory()
            model.fit(X_train, training.labels())

            cohort = self._draw_cohort(female_share)
            decisions = model.predict(scaler.transform(cohort.feature_matrix()))
            if self.intervention is not None:
                decisions = np.asarray(
                    self.intervention(decisions, cohort)
                ).astype(int)

            sex = cohort.column("sex")
            dp = demographic_parity(decisions, sex)
            shares = {
                "female": float(np.mean(sex == "female")),
                "male": float(np.mean(sex == "male")),
            }
            history.records.append(
                RoundRecord(
                    round_index=round_index,
                    dp_gap=dp.gap,
                    hire_rates=dp.rates(),
                    application_shares=shares,
                    training_size=training.n_rows,
                )
            )

            # Self-labelling: the model's decisions become training labels.
            label_name = cohort.schema.label_name
            relabeled = cohort.with_column(
                cohort.schema[label_name], decisions
            )
            training = training.concat(relabeled)

            # Discouragement: the female application share drifts toward
            # its acceptance-rate ratio against the best-treated group.
            if self.discouragement > 0:
                rates = dp.rates()
                top = max(rates.values())
                ratio = rates.get("female", 0.0) / top if top > 0 else 1.0
                target = base_female_share * ratio
                female_share = (
                    (1 - self.discouragement) * female_share
                    + self.discouragement * target
                )
                female_share = float(np.clip(female_share, 0.02, 0.98))
        return history
