"""Shared argument-validation helpers.

These helpers centralise the defensive checks performed at public API
boundaries so that error messages are uniform across the library.  They
raise :class:`repro.exceptions.ValidationError` on failure and return the
(possibly converted) value on success, which lets callers write::

    y = check_binary_array(y, "y_true")
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "check_array_1d",
    "check_binary_array",
    "check_matrix_2d",
    "check_same_length",
    "check_probability",
    "check_positive_int",
    "check_nonnegative",
    "check_in_range",
    "check_random_state",
    "check_membership",
    "check_nonempty",
]


def check_array_1d(values: object, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D numpy array.

    Raises :class:`ValidationError` when the input is scalar, empty of
    shape information, or has more than one dimension.
    """
    arr = np.asarray(values)
    if arr.ndim == 0:
        raise ValidationError(f"{name} must be 1-dimensional, got a scalar")
    if arr.ndim != 1:
        raise ValidationError(
            f"{name} must be 1-dimensional, got shape {arr.shape}"
        )
    return arr


def check_binary_array(values: object, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D integer array containing only 0 and 1."""
    arr = check_array_1d(values, name)
    if arr.dtype == bool:
        return arr.astype(np.int64)
    try:
        # Already-canonical arrays pass through unchanged so repeated
        # validation of the same column stays identity-stable (the kernel
        # caches by array id) and copy-free.
        as_int = arr if arr.dtype == np.int64 else arr.astype(np.int64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"{name} must contain binary (0/1) values, got dtype {arr.dtype}"
        ) from exc
    if arr.dtype.kind == "f" and not np.allclose(arr, as_int):
        raise ValidationError(f"{name} contains non-integer float values")
    if len(as_int) and (
        (as_int != 0) & (as_int != 1)
    ).any():
        bad = set(np.unique(as_int).tolist()) - {0, 1}
        raise ValidationError(
            f"{name} must contain only 0/1 values, found {sorted(bad)}"
        )
    return as_int


def check_matrix_2d(values: object, name: str) -> np.ndarray:
    """Coerce ``values`` to a 2-D float numpy array."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} must be 2-dimensional, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_same_length(*named_arrays: tuple[str, Sequence]) -> None:
    """Raise unless all (name, array) pairs share the same length."""
    lengths = {name: len(arr) for name, arr in named_arrays}
    if len(set(lengths.values())) > 1:
        detail = ", ".join(f"{k}={v}" for k, v in lengths.items())
        raise ValidationError(f"length mismatch: {detail}")


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive_int(value: object, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is a non-negative number."""
    value = float(value)
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(
    value: float, name: str, low: float, high: float
) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    value = float(value)
    if not low <= value <= high:
        raise ValidationError(
            f"{name} must be in [{low}, {high}], got {value}"
        )
    return value


def check_random_state(
    seed: int | np.random.Generator | None,
) -> np.random.Generator:
    """Normalise a seed or generator into a :class:`numpy.random.Generator`."""
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"random_state must be None, an int, or a Generator, got {seed!r}"
    )


def check_membership(value: object, name: str, allowed: Iterable) -> object:
    """Validate that ``value`` is one of ``allowed``."""
    allowed = list(allowed)
    if value not in allowed:
        raise ValidationError(
            f"{name} must be one of {allowed}, got {value!r}"
        )
    return value


def check_nonempty(values: Sequence, name: str) -> Sequence:
    """Validate that a sequence is non-empty."""
    if len(values) == 0:
        raise ValidationError(f"{name} must not be empty")
    return values
