"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while still letting programming errors
(``TypeError`` from misuse of numpy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "SchemaError",
    "DatasetError",
    "NotFittedError",
    "ConvergenceError",
    "CausalModelError",
    "MetricError",
    "InsufficientDataError",
    "AuditError",
    "LegalCatalogError",
    "MitigationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or value)."""


class SchemaError(ReproError):
    """A dataset schema is inconsistent or a column reference is invalid."""


class DatasetError(ReproError):
    """A dataset operation failed (bad slice, mismatched lengths, ...)."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed to converge within its budget."""


class CausalModelError(ReproError):
    """A structural causal model is malformed or a query is unanswerable."""


class MetricError(ReproError):
    """A fairness metric could not be computed on the given inputs."""


class InsufficientDataError(MetricError):
    """A (sub)group is empty or too small for the requested computation."""

    def __init__(self, message: str, group: object = None, count: int = 0):
        super().__init__(message)
        self.group = group
        self.count = count


class AuditError(ReproError):
    """A fairness audit could not be assembled or executed."""


class LegalCatalogError(ReproError):
    """A legal statute, doctrine, or attribute lookup failed."""


class MitigationError(ReproError):
    """A bias-mitigation procedure failed or was misconfigured."""
