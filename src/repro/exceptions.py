"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while still letting programming errors
(``TypeError`` from misuse of numpy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "SchemaError",
    "DatasetError",
    "NotFittedError",
    "ConvergenceError",
    "CausalModelError",
    "MetricError",
    "InsufficientDataError",
    "AuditError",
    "LegalCatalogError",
    "MitigationError",
    "RobustnessError",
    "StageTimeoutError",
    "RetryExhaustedError",
    "CheckpointError",
    "DegradedRunError",
    "ServiceError",
    "AdmissionError",
    "EngineClosedError",
    "JobCancelledError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or value)."""


class SchemaError(ReproError):
    """A dataset schema is inconsistent or a column reference is invalid."""


class DatasetError(ReproError):
    """A dataset operation failed (bad slice, mismatched lengths, ...)."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed to converge within its budget."""


class CausalModelError(ReproError):
    """A structural causal model is malformed or a query is unanswerable."""


class MetricError(ReproError):
    """A fairness metric could not be computed on the given inputs."""


class InsufficientDataError(MetricError):
    """A (sub)group is empty or too small for the requested computation."""

    def __init__(self, message: str, group: object = None, count: int = 0):
        super().__init__(message)
        self.group = group
        self.count = count


class AuditError(ReproError):
    """A fairness audit could not be assembled or executed."""


class LegalCatalogError(ReproError):
    """A legal statute, doctrine, or attribute lookup failed."""


class MitigationError(ReproError):
    """A bias-mitigation procedure failed or was misconfigured."""


class RobustnessError(ReproError):
    """Base class for failures of the resilient execution engine itself."""


class StageTimeoutError(RobustnessError):
    """A supervised stage exceeded its wall-clock deadline.

    The stage's worker may still be running (Python threads cannot be
    killed); the engine abandons it and records the timeout.
    """

    def __init__(self, message: str, stage: str = "", deadline: float = 0.0):
        super().__init__(message)
        self.stage = stage
        self.deadline = deadline


class RetryExhaustedError(RobustnessError):
    """A transient failure persisted through every allowed retry.

    ``last_error`` holds the final underlying exception; ``attempts`` the
    total number of tries (initial call + retries).
    """

    def __init__(
        self,
        message: str,
        stage: str = "",
        attempts: int = 0,
        last_error: BaseException | None = None,
    ):
        super().__init__(message)
        self.stage = stage
        self.attempts = attempts
        self.last_error = last_error


class CheckpointError(RobustnessError):
    """A checkpoint file is missing, corrupt, or from a different run."""

    def __init__(self, message: str, path: object = None):
        super().__init__(message)
        self.path = path


class DegradedRunError(RobustnessError):
    """A run exceeded its failure budget (or failed under fail-closed).

    Raised when an :class:`~repro.robustness.ExecutionPolicy` says partial
    results must not be silently returned — the fail-closed semantics a
    legally-binding audit may require.
    """

    def __init__(self, message: str, outcomes: list | None = None):
        super().__init__(message)
        self.outcomes = list(outcomes or [])


class ServiceError(ReproError):
    """Base class for failures of the fault-tolerant audit service."""


class AdmissionError(ServiceError):
    """The engine's queue is saturated and the submission was rejected.

    Carries a structured ``retry_after`` hint (seconds) so callers — the
    HTTP layer maps this to ``429`` plus a ``Retry-After`` header — can
    back off instead of hammering a full queue.  Rejection is admission
    control working, not the engine failing: running jobs are unaffected.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 1.0,
        active: int = 0,
        queue_limit: int = 0,
    ):
        super().__init__(message)
        self.retry_after = retry_after
        self.active = active
        self.queue_limit = queue_limit

    def to_dict(self) -> dict:
        return {
            "error": "queue saturated",
            "detail": str(self),
            "retry_after": self.retry_after,
            "active": self.active,
            "queue_limit": self.queue_limit,
        }


class EngineClosedError(ServiceError):
    """A submission arrived after the engine began shutting down."""


class JobCancelledError(ServiceError):
    """A job observed its cancellation flag and stopped cooperatively."""
