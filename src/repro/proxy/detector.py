"""Proxy-discrimination detection (paper Section IV.B).

A feature is a *proxy* for a protected attribute when it is associated
with the attribute strongly enough for a model to reconstruct the
attribute — and hence its biases — after the attribute itself is removed.
:class:`ProxyDetector` scores every feature of a dataset on two axes:

* **association** — the appropriate statistical association measure for
  the feature/attribute kind combination (:mod:`repro.proxy.associations`);
* **reconstruction power** — the balanced accuracy with which an adversary
  model predicts the protected attribute from that feature alone (0.5 =
  chance = no proxy; 1.0 = perfect redundant encoding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_probability, check_random_state
from repro.data.dataset import TabularDataset
from repro.data.schema import ColumnKind, ColumnRole
from repro.exceptions import DatasetError
from repro.models.logistic import LogisticRegression
from repro.models.metrics import balanced_accuracy
from repro.models.preprocessing import OneHotEncoder, Standardizer
from repro.proxy.associations import (
    cramers_v,
    mutual_information,
    point_biserial,
)

__all__ = ["ProxyScore", "ProxyReport", "ProxyDetector"]


@dataclass(frozen=True)
class ProxyScore:
    """Proxy evidence for one feature."""

    feature: str
    association: float
    association_measure: str
    mutual_information: float
    reconstruction_power: float

    @property
    def combined(self) -> float:
        """Headline score: max of association and scaled reconstruction.

        Reconstruction power is rescaled from [0.5, 1] onto [0, 1] so the
        two axes share a scale.
        """
        rescaled = max(0.0, (self.reconstruction_power - 0.5) * 2.0)
        return max(self.association, rescaled)


@dataclass(frozen=True)
class ProxyReport:
    """Ranked proxy evidence for all features of a dataset."""

    attribute: str
    scores: tuple
    full_model_power: float
    threshold: float

    def ranked(self) -> list[ProxyScore]:
        """Scores sorted by combined proxy strength, strongest first."""
        return sorted(self.scores, key=lambda s: -s.combined)

    def proxies(self) -> list[ProxyScore]:
        """Features whose combined score exceeds the report threshold."""
        return [s for s in self.ranked() if s.combined >= self.threshold]

    @property
    def attribute_is_reconstructible(self) -> bool:
        """Can the attribute be predicted from all features jointly?

        True when the full-feature adversary beats chance by the report
        threshold — the precondition for proxy discrimination even when no
        single feature is a strong proxy on its own.
        """
        return (self.full_model_power - 0.5) * 2.0 >= self.threshold


class ProxyDetector:
    """Score every feature of a dataset as a potential proxy.

    Parameters
    ----------
    threshold:
        Combined score at or above which a feature is flagged (default
        0.3 — a moderate association).
    random_state:
        Seed for the adversary train/test split.
    """

    def __init__(
        self,
        threshold: float = 0.3,
        test_fraction: float = 0.3,
        random_state: int | np.random.Generator | None = None,
    ):
        self.threshold = check_probability(threshold, "threshold")
        self.test_fraction = check_probability(test_fraction, "test_fraction")
        self._rng = check_random_state(random_state)

    # -- adversary ------------------------------------------------------------

    def _reconstruction_power(
        self, features: np.ndarray, membership: np.ndarray
    ) -> float:
        """Balanced accuracy of an adversary predicting group membership."""
        n = len(membership)
        if len(np.unique(membership)) < 2 or n < 20:
            return 0.5
        order = self._rng.permutation(n)
        n_test = max(1, int(round(self.test_fraction * n)))
        test_idx, train_idx = order[:n_test], order[n_test:]
        if len(np.unique(membership[train_idx])) < 2:
            return 0.5
        scaler = Standardizer()
        X_train = scaler.fit_transform(features[train_idx])
        X_test = scaler.transform(features[test_idx])
        adversary = LogisticRegression(max_iter=500)
        adversary.fit(X_train, membership[train_idx])
        predicted = adversary.predict(X_test)
        if len(np.unique(membership[test_idx])) < 2:
            return 0.5
        score = balanced_accuracy(membership[test_idx], predicted)
        if np.isnan(score):
            return 0.5
        return float(max(score, 1.0 - score))

    def _feature_block(
        self, dataset: TabularDataset, feature: str
    ) -> np.ndarray:
        column = dataset.schema[feature]
        values = dataset.column(feature)
        if column.kind == ColumnKind.CATEGORICAL:
            return OneHotEncoder().fit_transform(values)
        return values.astype(float).reshape(-1, 1)

    # -- the scan ---------------------------------------------------------------

    def scan(self, dataset: TabularDataset, attribute: str) -> ProxyReport:
        """Score every feature column against one protected attribute."""
        column = dataset.schema[attribute]
        if column.role != ColumnRole.PROTECTED:
            raise DatasetError(f"column {attribute!r} is not protected")
        groups = dataset.column(attribute)
        categories = list(np.unique(groups))
        if len(categories) != 2:
            raise DatasetError(
                "ProxyDetector requires a binary protected attribute; "
                f"{attribute!r} has values {categories}"
            )
        membership = (groups == categories[1]).astype(int)

        scores = []
        for feature_col in dataset.schema.by_role(ColumnRole.FEATURE):
            feature = feature_col.name
            values = dataset.column(feature)
            if feature_col.kind == ColumnKind.NUMERIC:
                association = point_biserial(values.astype(float), membership)
                measure = "point_biserial"
                mi = mutual_information(values.astype(float), membership)
            elif len(categories) == 2 and feature_col.kind == ColumnKind.BINARY:
                association = cramers_v(values, membership)
                measure = "cramers_v"
                mi = mutual_information(values, membership)
            else:
                association = cramers_v(values, groups)
                measure = "cramers_v"
                mi = mutual_information(values, groups)
            power = self._reconstruction_power(
                self._feature_block(dataset, feature), membership
            )
            scores.append(
                ProxyScore(
                    feature=feature,
                    association=float(association),
                    association_measure=measure,
                    mutual_information=float(mi),
                    reconstruction_power=float(power),
                )
            )

        full_power = self._reconstruction_power(
            dataset.feature_matrix(), membership
        )
        return ProxyReport(
            attribute=attribute,
            scores=tuple(scores),
            full_model_power=float(full_power),
            threshold=self.threshold,
        )
