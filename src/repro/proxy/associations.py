"""Association measures between features and protected attributes.

Proxy discrimination (paper Section IV.B) works through features that are
*statistically associated* with a protected attribute.  These measures
quantify that association for every feature/attribute kind combination:

* :func:`cramers_v` — categorical ↔ categorical (bias-corrected);
* :func:`point_biserial` — numeric ↔ binary group;
* :func:`mutual_information` — any ↔ any, after discretising numerics;
* :func:`correlation_ratio` — numeric ↔ multi-category group (η).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sp_stats

from repro._validation import check_array_1d, check_positive_int, check_same_length
from repro.exceptions import ValidationError

__all__ = [
    "cramers_v",
    "point_biserial",
    "mutual_information",
    "correlation_ratio",
    "discretize",
]


def _contingency(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    x_values = np.unique(x)
    y_values = np.unique(y)
    table = np.zeros((len(x_values), len(y_values)))
    for i, xv in enumerate(x_values):
        for j, yv in enumerate(y_values):
            table[i, j] = np.sum((x == xv) & (y == yv))
    return table


def cramers_v(x, y) -> float:
    """Bias-corrected Cramér's V between two categorical arrays, in [0, 1]."""
    x = check_array_1d(x, "x")
    y = check_array_1d(y, "y")
    check_same_length(("x", x), ("y", y))
    if len(x) == 0:
        raise ValidationError("inputs must be non-empty")
    table = _contingency(x, y)
    n = table.sum()
    r, k = table.shape
    if r < 2 or k < 2:
        return 0.0
    chi2 = sp_stats.chi2_contingency(table, correction=False)[0]
    phi2 = chi2 / n
    # Bergsma's bias correction.
    phi2_corrected = max(0.0, phi2 - (k - 1) * (r - 1) / (n - 1))
    r_corrected = r - (r - 1) ** 2 / (n - 1)
    k_corrected = k - (k - 1) ** 2 / (n - 1)
    denom = min(r_corrected - 1, k_corrected - 1)
    if denom <= 0:
        return 0.0
    return float(np.sqrt(phi2_corrected / denom))


def point_biserial(values, membership) -> float:
    """|point-biserial correlation| between a numeric array and a binary group."""
    values = check_array_1d(values, "values").astype(float)
    membership = check_array_1d(membership, "membership")
    check_same_length(("values", values), ("membership", membership))
    membership = membership.astype(float)
    if len(np.unique(membership)) < 2:
        return 0.0
    if np.std(values) == 0:
        return 0.0
    r, __ = sp_stats.pointbiserialr(membership, values)
    return float(abs(r))


def discretize(values, n_bins: int = 10) -> np.ndarray:
    """Equal-frequency binning of a numeric array into integer codes."""
    values = check_array_1d(values, "values").astype(float)
    check_positive_int(n_bins, "n_bins")
    if len(values) == 0:
        raise ValidationError("values must be non-empty")
    quantiles = np.quantile(values, np.linspace(0, 1, n_bins + 1)[1:-1])
    return np.digitize(values, np.unique(quantiles))


def mutual_information(x, y, n_bins: int = 10, normalized: bool = True) -> float:
    """(Normalised) mutual information between two arrays.

    Numeric inputs are discretised into equal-frequency bins first.
    Normalisation divides by ``sqrt(H(x) H(y))``, giving a [0, 1] score
    comparable across features.
    """
    x = check_array_1d(x, "x")
    y = check_array_1d(y, "y")
    check_same_length(("x", x), ("y", y))
    if len(x) == 0:
        raise ValidationError("inputs must be non-empty")
    if x.dtype.kind == "f":
        x = discretize(x, n_bins)
    if y.dtype.kind == "f":
        y = discretize(y, n_bins)
    table = _contingency(x, y)
    n = table.sum()
    joint = table / n
    px = joint.sum(axis=1)
    py = joint.sum(axis=0)
    mi = 0.0
    for i in range(joint.shape[0]):
        for j in range(joint.shape[1]):
            if joint[i, j] > 0:
                mi += joint[i, j] * np.log(joint[i, j] / (px[i] * py[j]))
    if not normalized:
        return float(mi)
    hx = -np.sum(px[px > 0] * np.log(px[px > 0]))
    hy = -np.sum(py[py > 0] * np.log(py[py > 0]))
    if hx <= 0 or hy <= 0:
        return 0.0
    return float(mi / np.sqrt(hx * hy))


def correlation_ratio(values, groups) -> float:
    """Correlation ratio η between a numeric array and a categorical one.

    η² is the fraction of the numeric variance explained by group
    membership; η generalises point-biserial beyond two groups.
    """
    values = check_array_1d(values, "values").astype(float)
    groups = check_array_1d(groups, "groups")
    check_same_length(("values", values), ("groups", groups))
    if len(values) == 0:
        raise ValidationError("inputs must be non-empty")
    overall_var = np.var(values)
    if overall_var == 0:
        return 0.0
    grand_mean = values.mean()
    between = 0.0
    for group in np.unique(groups):
        member_values = values[groups == group]
        between += len(member_values) * (member_values.mean() - grand_mean) ** 2
    between /= len(values)
    return float(np.sqrt(between / overall_var))
