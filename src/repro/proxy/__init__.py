"""Proxy-discrimination detection (paper Section IV.B)."""

from repro.proxy.associations import (
    correlation_ratio,
    cramers_v,
    discretize,
    mutual_information,
    point_biserial,
)
from repro.proxy.association_harm import (
    AssociationHarmReport,
    association_harm,
)
from repro.proxy.detector import ProxyDetector, ProxyReport, ProxyScore
from repro.proxy.unawareness import (
    UnawarenessReport,
    fairness_through_unawareness,
)

__all__ = [
    "cramers_v",
    "point_biserial",
    "mutual_information",
    "correlation_ratio",
    "discretize",
    "ProxyDetector",
    "ProxyReport",
    "ProxyScore",
    "UnawarenessReport",
    "fairness_through_unawareness",
    "AssociationHarmReport",
    "association_harm",
]
