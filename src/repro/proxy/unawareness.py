"""Fairness through unawareness, demonstrated to fail (paper Section IV.B).

The paper: *"Due to the commonly encountered misunderstanding that, upon
sensitive attributes are excluded from an AI model's training, fairness
is ensured (also called fairness by unawareness), bias can be perpetuated
via proxy discrimination."*

:func:`fairness_through_unawareness` runs the experiment end to end:
train one model that *sees* the protected attribute and one that does
not, then compare their demographic-parity gaps on held-out data.  When
the training labels are biased and proxies exist, the unaware model's gap
barely moves — the Section IV.B claim, reproduced by experiment C2.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro._validation import check_probability, check_random_state
from repro.core.metrics import demographic_parity
from repro.data.dataset import TabularDataset
from repro.data.schema import ColumnRole
from repro.exceptions import DatasetError
from repro.models.base import Classifier
from repro.models.logistic import LogisticRegression
from repro.models.metrics import accuracy
from repro.models.preprocessing import Standardizer

__all__ = ["UnawarenessReport", "fairness_through_unawareness"]


@dataclass(frozen=True)
class UnawarenessReport:
    """Side-by-side comparison of an aware and an unaware model."""

    attribute: str
    gap_aware: float
    gap_unaware: float
    accuracy_aware: float
    accuracy_unaware: float

    @property
    def gap_reduction(self) -> float:
        """Absolute gap removed by dropping the attribute (can be ≈ 0)."""
        return self.gap_aware - self.gap_unaware

    def unawareness_sufficient(self, tolerance: float = 0.05) -> bool:
        """Did removal actually achieve parity (gap within tolerance)?"""
        return self.gap_unaware <= tolerance

    def conclusion(self) -> str:
        """Plain-language verdict in the paper's terms."""
        if self.gap_unaware <= 0.05:
            return (
                f"Removing {self.attribute!r} brought the selection-rate gap "
                f"to {self.gap_unaware:.3f}; no strong proxies appear to "
                "remain."
            )
        retained = (
            self.gap_unaware / self.gap_aware if self.gap_aware > 0 else 1.0
        )
        return (
            f"Fairness through unawareness FAILS here: removing "
            f"{self.attribute!r} leaves a {self.gap_unaware:.3f} selection-"
            f"rate gap ({retained:.0%} of the aware model's "
            f"{self.gap_aware:.3f}); proxies carry the bias (paper IV.B)."
        )


def _fit_and_gap(
    train: TabularDataset,
    test: TabularDataset,
    attribute: str,
    model_factory: Callable[[], Classifier],
) -> tuple[float, float]:
    scaler = Standardizer()
    X_train = scaler.fit_transform(train.feature_matrix())
    X_test = scaler.transform(test.feature_matrix())
    model = model_factory()
    model.fit(X_train, train.labels())
    predictions = model.predict(X_test)
    gap = demographic_parity(predictions, test.column(attribute)).gap
    return gap, accuracy(test.labels(), predictions)


def fairness_through_unawareness(
    dataset: TabularDataset,
    attribute: str,
    model_factory: Callable[[], Classifier] | None = None,
    test_fraction: float = 0.3,
    random_state: int | np.random.Generator | None = None,
) -> UnawarenessReport:
    """Compare an attribute-aware model against an unaware one.

    The *aware* model receives the protected attribute as a feature; the
    *unaware* model trains on the dataset as-is (protected columns are
    never features).  Both are evaluated on the same held-out split.
    """
    if dataset.schema[attribute].role != ColumnRole.PROTECTED:
        raise DatasetError(f"column {attribute!r} is not protected")
    if dataset.schema.label_name is None:
        raise DatasetError("dataset needs labels to train on")
    check_probability(test_fraction, "test_fraction")
    rng = check_random_state(random_state)
    if model_factory is None:
        model_factory = lambda: LogisticRegression(max_iter=800)

    train, test = dataset.split(
        test_fraction=test_fraction, random_state=rng, stratify_by=attribute
    )

    aware_train = train.with_role(attribute, ColumnRole.FEATURE)
    aware_test = test.with_role(attribute, ColumnRole.FEATURE)
    gap_aware, acc_aware = _fit_and_gap(
        aware_train, aware_test, attribute, model_factory
    )
    gap_unaware, acc_unaware = _fit_and_gap(
        train, test, attribute, model_factory
    )
    return UnawarenessReport(
        attribute=attribute,
        gap_aware=float(gap_aware),
        gap_unaware=float(gap_unaware),
        accuracy_aware=float(acc_aware),
        accuracy_unaware=float(acc_unaware),
    )
