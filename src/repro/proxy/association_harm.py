"""Discrimination by association (paper Section IV.B).

The paper: *"individuals ... mistakenly categorized as part of a
protected group ... consequently experience the same type of
discrimination. In our example, the training data, and the derived ML
model are biased towards female individuals and, by correlation, also
towards individuals that have attended the specific universities, even
if they are males."*

:func:`association_harm` measures exactly that spill-over: among
individuals *outside* the disadvantaged group, compare the outcome rate
of those who share the disadvantaged group's typical proxy value against
those who do not.  A gap there is harm transmitted purely by
association — its victims have no protected-group membership to point
to, which is why the doctrine matters legally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_binary_array
from repro.data.dataset import TabularDataset
from repro.data.schema import ColumnRole
from repro.exceptions import DatasetError, InsufficientDataError
from repro.stats.tests import TestResult, two_proportion_z_test

__all__ = ["AssociationHarmReport", "association_harm"]


@dataclass(frozen=True)
class AssociationHarmReport:
    """Spill-over discrimination evidence for one proxy column.

    All rates are computed among NON-members of the disadvantaged group.
    """

    attribute: str
    disadvantaged_group: object
    proxy: str
    associated_value: object
    rate_associated: float
    rate_not_associated: float
    n_associated: int
    n_not_associated: int
    significance: TestResult

    @property
    def harm(self) -> float:
        """Outcome-rate shortfall of associated non-members (positive =
        harmed by association)."""
        return self.rate_not_associated - self.rate_associated

    def is_harmful(self, tolerance: float = 0.05, alpha: float = 0.05) -> bool:
        """Harm exceeds tolerance and is statistically significant."""
        return self.harm > tolerance and self.significance.p_value < alpha

    def summary(self) -> str:
        if self.harm <= 0:
            return (
                f"No association harm detected: non-{self.disadvantaged_group}"
                f" individuals with {self.proxy}={self.associated_value!r} "
                f"fare no worse ({self.rate_associated:.3f} vs "
                f"{self.rate_not_associated:.3f})."
            )
        return (
            f"Discrimination by association (paper IV.B): individuals who "
            f"are NOT {self.disadvantaged_group!r} but share "
            f"{self.proxy}={self.associated_value!r} receive the positive "
            f"outcome at {self.rate_associated:.3f} vs "
            f"{self.rate_not_associated:.3f} for other non-members "
            f"(harm {self.harm:+.3f}, p={self.significance.p_value:.4f})."
        )


def association_harm(
    dataset: TabularDataset,
    attribute: str,
    proxy: str,
    outcomes,
    disadvantaged_group=None,
) -> AssociationHarmReport:
    """Measure outcome spill-over onto proxy-sharing non-members.

    Parameters
    ----------
    dataset:
        Carries the protected ``attribute`` and the ``proxy`` column.
    outcomes:
        Binary outcomes to audit (typically model predictions).
    disadvantaged_group:
        The group whose typical proxy value transmits the harm; defaults
        to the group with the lower outcome rate.

    Notes
    -----
    The *associated value* is the proxy value over-represented among the
    disadvantaged group (highest group share).  The comparison is then
    entirely within non-members: associated vs not.
    """
    column = dataset.schema[attribute]
    if column.role != ColumnRole.PROTECTED:
        raise DatasetError(f"column {attribute!r} is not protected")
    if proxy not in dataset.schema:
        raise DatasetError(f"unknown proxy column {proxy!r}")
    if not dataset.schema[proxy].is_discrete:
        raise DatasetError(f"proxy column {proxy!r} must be discrete")
    outcomes = check_binary_array(outcomes, "outcomes")
    if len(outcomes) != dataset.n_rows:
        raise DatasetError("outcomes length does not match dataset")

    groups = dataset.column(attribute)
    proxies = dataset.column(proxy)

    if disadvantaged_group is None:
        # One bincount pass over group codes replaces the per-group
        # masking loop; argmin keeps the same first-wins tie behaviour
        # as min() over the rate dict in np.unique order.
        group_values, group_codes = np.unique(groups, return_inverse=True)
        group_n = np.bincount(group_codes, minlength=len(group_values))
        group_pos = np.bincount(
            group_codes, weights=outcomes, minlength=len(group_values)
        )
        disadvantaged_group = group_values[np.argmin(group_pos / group_n)]
    members = groups == disadvantaged_group
    if not members.any():
        raise DatasetError(
            f"group {disadvantaged_group!r} absent from {attribute!r}"
        )

    # proxy value most over-represented among the disadvantaged group:
    # member share per proxy value from one bincount pass.
    proxy_values, proxy_codes = np.unique(proxies, return_inverse=True)
    holder_n = np.bincount(proxy_codes, minlength=len(proxy_values))
    holder_members = np.bincount(
        proxy_codes, weights=members, minlength=len(proxy_values)
    )
    associated_value = proxy_values[np.argmax(holder_members / holder_n)]

    non_members = ~members
    associated = non_members & (proxies == associated_value)
    not_associated = non_members & (proxies != associated_value)
    if not associated.any() or not not_associated.any():
        raise InsufficientDataError(
            "association-harm comparison needs non-members on both sides "
            f"of proxy value {associated_value!r}"
        )

    n_assoc = int(associated.sum())
    n_other = int(not_associated.sum())
    pos_assoc = int(outcomes[associated].sum())
    pos_other = int(outcomes[not_associated].sum())
    significance = two_proportion_z_test(
        pos_assoc, n_assoc, pos_other, n_other
    )
    def _native(value):
        return value.item() if isinstance(value, np.generic) else value

    return AssociationHarmReport(
        attribute=attribute,
        disadvantaged_group=_native(disadvantaged_group),
        proxy=proxy,
        associated_value=_native(associated_value),
        rate_associated=pos_assoc / n_assoc,
        rate_not_associated=pos_other / n_other,
        n_associated=n_assoc,
        n_not_associated=n_other,
        significance=significance,
    )
