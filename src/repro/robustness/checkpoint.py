"""Atomic JSON checkpoints for resumable long-running audits.

A checkpoint is a JSON file with a format version, a caller-supplied
*fingerprint* of the run configuration, and an opaque payload.  Writes
are atomic (write-to-temp then :func:`os.replace`), so a kill mid-write
leaves the previous checkpoint intact rather than a truncated file.
Loads verify both the JSON and the fingerprint and raise
:class:`~repro.exceptions.CheckpointError` — with path and byte offset
when the file is corrupt — instead of letting a raw ``json`` error
escape into an audit.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.exceptions import CheckpointError

__all__ = [
    "CHECKPOINT_VERSION",
    "atomic_write_text",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_VERSION = 1


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final rename
    never crosses a filesystem boundary.
    """
    path = Path(path)
    handle, temp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def save_checkpoint(path, payload: dict, fingerprint: str = "") -> None:
    """Atomically persist ``payload`` with its run fingerprint."""
    envelope = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "payload": payload,
    }
    try:
        text = json.dumps(envelope)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint payload is not JSON-serialisable: {exc}", path=path
        ) from exc
    atomic_write_text(path, text)


def load_checkpoint(path, fingerprint: str | None = None) -> dict:
    """Load and validate a checkpoint; return its payload.

    Raises :class:`~repro.exceptions.CheckpointError` when the file is
    missing, truncated/corrupt (message carries the byte offset), from an
    incompatible format version, or — when ``fingerprint`` is given —
    written by a run with different configuration.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise CheckpointError(
            f"no checkpoint at {path}", path=path
        ) from None
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}", path=path
        ) from exc
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupt checkpoint {path}: {exc.msg} at byte offset {exc.pos}",
            path=path,
        ) from exc
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise CheckpointError(
            f"corrupt checkpoint {path}: not a checkpoint envelope",
            path=path,
        )
    if envelope.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version "
            f"{envelope.get('version')!r}; this build reads "
            f"{CHECKPOINT_VERSION}",
            path=path,
        )
    if fingerprint is not None and envelope.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} was written by a different run "
            "configuration; refusing to resume from it",
            path=path,
        )
    return envelope["payload"]
