"""Resilient audit execution: supervision, checkpoints, fault injection.

The paper's deployment guidelines (Section V) ask for audits dependable
enough to carry legal weight.  This package is the execution layer that
delivers that: every stage of an audit or compliance run is supervised
under an :class:`ExecutionPolicy` (deadline, retries, failure budget,
fail-open vs fail-closed), long-running work checkpoints atomically and
resumes, and a deterministic :class:`FaultInjector` lets the chaos-test
suite keep every one of those guarantees honest.
"""

from repro.robustness.checkpoint import (
    atomic_write_text,
    load_checkpoint,
    save_checkpoint,
)
from repro.robustness.faults import Fault, FaultInjector
from repro.robustness.policy import TRANSIENT_ERRORS, ExecutionPolicy
from repro.robustness.runner import StageOutcome, StageRunner

__all__ = [
    "ExecutionPolicy",
    "TRANSIENT_ERRORS",
    "StageOutcome",
    "StageRunner",
    "Fault",
    "FaultInjector",
    "atomic_write_text",
    "save_checkpoint",
    "load_checkpoint",
]
