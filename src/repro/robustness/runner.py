"""Supervised stage execution: isolation, deadlines, retries, budgets.

A :class:`StageRunner` runs each unit of audit work as a *stage*: the
stage's exceptions are captured (with traceback) instead of propagating,
transient failures are retried with exponential backoff, a wall-clock
deadline cuts off hangs, and a run-wide failure budget decides when
"degraded" must become "aborted".  The runner's
:attr:`~StageRunner.degradations` list is the audit trail of everything
that went wrong — it feeds the ``degradations`` section of a
:class:`~repro.workflow.ComplianceDossier`.

Deadlines are enforced with a worker thread: Python cannot kill a stuck
thread, so a timed-out stage is *abandoned* (daemon thread) and reported
as a :class:`~repro.exceptions.StageTimeoutError`.  Stages should
therefore be side-effect-free or idempotent — which audit metric
evaluations are.
"""

from __future__ import annotations

import logging
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import (
    DegradedRunError,
    RetryExhaustedError,
    StageTimeoutError,
)
from repro.robustness.policy import ExecutionPolicy

__all__ = ["StageOutcome", "StageRunner"]

_LOG = logging.getLogger(__name__)


@dataclass
class StageOutcome:
    """What happened to one supervised stage.

    ``status`` is ``"ok"``, ``"error"`` (exception captured), or
    ``"timeout"`` (deadline exceeded; the worker was abandoned).

    ``attempt_log`` is the retry history: one record per *failed*
    attempt — exception type and message, elapsed seconds for that
    attempt, and the backoff chosen before the next one (``None`` on the
    final failure) — so traces and degradation reports can show exactly
    what was retried instead of a bare attempt count.
    """

    stage: str
    status: str
    value: object = None
    error: str = ""
    error_type: str = ""
    traceback: str = ""
    attempts: int = 1
    elapsed: float = 0.0
    attempt_log: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        """JSON-able summary (value omitted — it may not serialise)."""
        payload = {
            "stage": self.stage,
            "status": self.status,
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 6),
        }
        if self.attempt_log:
            payload["attempt_log"] = list(self.attempt_log)
        return payload


class StageRunner:
    """Run callables as supervised stages under an execution policy.

    Parameters
    ----------
    policy:
        The run-level :class:`ExecutionPolicy` (stage overrides apply
        per stage; ``fail_fast`` / ``max_failures`` always read from the
        run-level policy).
    faults:
        Optional :class:`~repro.robustness.faults.FaultInjector` whose
        scripted faults fire inside each stage — the chaos-testing hook.
    tracer:
        Optional :class:`~repro.observability.Tracer`; defaults to the
        process-current tracer (the null tracer unless one is
        installed), so instrumentation is free when tracing is off.
        Each stage becomes a span named after the stage, with retry
        events and attempt counts attached.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`;
        defaults to the process-current registry.  Records the
        ``stages.run`` / ``stages.failed`` / ``stages.retried``
        counters and the ``stage.elapsed`` latency histogram.
    """

    def __init__(
        self,
        policy: ExecutionPolicy | None = None,
        faults=None,
        tracer=None,
        metrics=None,
    ):
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.faults = faults
        self.tracer = tracer
        self.metrics = metrics
        self.outcomes: list[StageOutcome] = []
        self._failures = 0

    # -- accounting ----------------------------------------------------------

    @property
    def failures(self) -> int:
        """Number of non-ok stages so far."""
        return self._failures

    @property
    def degradations(self) -> list[dict]:
        """JSON-able records of every non-ok stage, in run order."""
        return [o.to_dict() for o in self.outcomes if not o.ok]

    # -- execution -----------------------------------------------------------

    def run(self, stage: str, fn: Callable, *args, **kwargs) -> StageOutcome:
        """Execute ``fn`` as the named stage and record the outcome.

        Never raises the stage's own exception; raises only
        :class:`~repro.exceptions.DegradedRunError` when the run-level
        policy's failure budget (or fail-closed semantics) says the run
        must stop.
        """
        from repro.observability.events import get_event_bus
        from repro.observability.metrics import get_metrics
        from repro.observability.trace import get_tracer

        tracer = self.tracer if self.tracer is not None else get_tracer()
        metrics = self.metrics if self.metrics is not None else get_metrics()
        policy = self.policy.for_stage(stage)
        call = self.faults.wrap(stage, fn) if self.faults is not None else fn
        attempt_log: list[dict] = []
        with tracer.span(stage) as span:
            start = time.perf_counter()
            attempts = 0
            while True:
                attempts += 1
                attempt_start = time.perf_counter()
                try:
                    value = self._call(
                        stage, call, args, kwargs, policy.deadline
                    )
                except StageTimeoutError as exc:
                    # Timeouts are terminal by default (the worker was
                    # abandoned), but a policy that explicitly lists
                    # StageTimeoutError as retryable — e.g. a service job
                    # policy treating hangs as transient — gets the same
                    # retry/backoff treatment as any transient fault.
                    if (
                        policy.is_retryable(exc)
                        and attempts <= policy.max_retries
                    ):
                        backoff = policy.backoff(attempts - 1)
                        self._log_attempt(
                            attempt_log, attempts, exc, attempt_start, backoff
                        )
                        span.event(
                            "retry", attempt=attempts,
                            error_type=type(exc).__name__, backoff=backoff,
                        )
                        _LOG.info(
                            "stage %s attempt %d timed out; retrying after "
                            "%.3fs backoff", stage, attempts, backoff,
                        )
                        metrics.counter("stages.retried").inc()
                        policy.sleep(backoff)
                        continue
                    self._log_attempt(
                        attempt_log, attempts, exc, attempt_start, None
                    )
                    outcome = StageOutcome(
                        stage, "timeout",
                        error=str(exc),
                        error_type=type(exc).__name__,
                        attempts=attempts,
                        elapsed=time.perf_counter() - start,
                        attempt_log=attempt_log,
                    )
                    break
                except Exception as exc:  # noqa: BLE001 — isolation is the point
                    if (
                        policy.is_retryable(exc)
                        and attempts <= policy.max_retries
                    ):
                        backoff = policy.backoff(attempts - 1)
                        self._log_attempt(
                            attempt_log, attempts, exc, attempt_start, backoff
                        )
                        span.event(
                            "retry", attempt=attempts,
                            error_type=type(exc).__name__, backoff=backoff,
                        )
                        _LOG.info(
                            "stage %s attempt %d failed (%s: %s); retrying "
                            "after %.3fs backoff",
                            stage, attempts, type(exc).__name__, exc, backoff,
                        )
                        metrics.counter("stages.retried").inc()
                        policy.sleep(backoff)
                        continue
                    self._log_attempt(
                        attempt_log, attempts, exc, attempt_start, None
                    )
                    if policy.is_retryable(exc) and policy.max_retries > 0:
                        exc = RetryExhaustedError(
                            f"stage {stage!r} still failing after {attempts} "
                            f"attempts: {exc}",
                            stage=stage, attempts=attempts, last_error=exc,
                        )
                        get_event_bus().publish(
                            "stage.retry_exhausted",
                            stage=stage,
                            attempts=attempts,
                            error=str(exc.last_error),
                            error_type=type(exc.last_error).__name__,
                        )
                    outcome = StageOutcome(
                        stage, "error",
                        error=str(exc),
                        error_type=type(exc).__name__,
                        traceback=traceback_module.format_exc(),
                        attempts=attempts,
                        elapsed=time.perf_counter() - start,
                        attempt_log=attempt_log,
                    )
                    break
                else:
                    outcome = StageOutcome(
                        stage, "ok", value=value, attempts=attempts,
                        elapsed=time.perf_counter() - start,
                        attempt_log=attempt_log,
                    )
                    break
            span.set(attempts=outcome.attempts)
            if not outcome.ok:
                span.mark(outcome.status, outcome.error)
                span.set(error_type=outcome.error_type)
        metrics.counter("stages.run").inc()
        metrics.observe("stage.elapsed", outcome.elapsed)
        self.outcomes.append(outcome)
        if not outcome.ok:
            metrics.counter("stages.failed").inc()
            _LOG.info(
                "stage %s degraded: %s after %d attempt(s) — %s",
                stage, outcome.status, outcome.attempts, outcome.error,
            )
            self._failures += 1
            self._enforce_budget(outcome)
        return outcome

    @staticmethod
    def _log_attempt(
        attempt_log: list, attempt: int, exc: BaseException,
        attempt_start: float, backoff: float | None,
    ) -> None:
        """Append one failed attempt to the outcome's retry history."""
        attempt_log.append({
            "attempt": attempt,
            "error_type": type(exc).__name__,
            "error": str(exc),
            "elapsed": round(time.perf_counter() - attempt_start, 6),
            "backoff": backoff,
        })

    def _call(self, stage, fn, args, kwargs, deadline):
        """One attempt, under the stage deadline (if any)."""
        if deadline is None:
            return fn(*args, **kwargs)
        from repro.observability.trace import get_tracer

        box: dict = {}
        done = threading.Event()
        # The deadline worker is a fresh thread: it cannot see this
        # thread's span stack, so spans it opens would detach from the
        # stage span.  Bind the stage's context into the worker so the
        # parent chain survives the thread hop.
        tracer = self.tracer if self.tracer is not None else get_tracer()
        context = (
            tracer.current_context()
            if getattr(tracer, "enabled", False)
            else None
        )

        def work():
            try:
                if context is not None:
                    tracer.bind(context)
                box["value"] = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 — relayed below
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(
            target=work, daemon=True, name=f"stage:{stage}"
        )
        worker.start()
        if not done.wait(deadline):
            raise StageTimeoutError(
                f"stage {stage!r} exceeded its {deadline:g}s deadline "
                "and was abandoned",
                stage=stage, deadline=deadline,
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _enforce_budget(self, outcome: StageOutcome) -> None:
        if self.policy.fail_fast:
            raise DegradedRunError(
                f"stage {outcome.stage!r} failed under fail-closed policy: "
                f"{outcome.error}",
                outcomes=self.degradations,
            )
        budget = self.policy.max_failures
        if budget is not None and self._failures > budget:
            raise DegradedRunError(
                f"failure budget exhausted: {self._failures} stages failed "
                f"(budget {budget}); last: {outcome.stage!r} — "
                f"{outcome.error}",
                outcomes=self.degradations,
            )
