"""Supervised stage execution: isolation, deadlines, retries, budgets.

A :class:`StageRunner` runs each unit of audit work as a *stage*: the
stage's exceptions are captured (with traceback) instead of propagating,
transient failures are retried with exponential backoff, a wall-clock
deadline cuts off hangs, and a run-wide failure budget decides when
"degraded" must become "aborted".  The runner's
:attr:`~StageRunner.degradations` list is the audit trail of everything
that went wrong — it feeds the ``degradations`` section of a
:class:`~repro.workflow.ComplianceDossier`.

Deadlines are enforced with a worker thread: Python cannot kill a stuck
thread, so a timed-out stage is *abandoned* (daemon thread) and reported
as a :class:`~repro.exceptions.StageTimeoutError`.  Stages should
therefore be side-effect-free or idempotent — which audit metric
evaluations are.
"""

from __future__ import annotations

import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import (
    DegradedRunError,
    RetryExhaustedError,
    StageTimeoutError,
)
from repro.robustness.policy import ExecutionPolicy

__all__ = ["StageOutcome", "StageRunner"]


@dataclass
class StageOutcome:
    """What happened to one supervised stage.

    ``status`` is ``"ok"``, ``"error"`` (exception captured), or
    ``"timeout"`` (deadline exceeded; the worker was abandoned).
    """

    stage: str
    status: str
    value: object = None
    error: str = ""
    error_type: str = ""
    traceback: str = ""
    attempts: int = 1
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        """JSON-able summary (value omitted — it may not serialise)."""
        return {
            "stage": self.stage,
            "status": self.status,
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 6),
        }


class StageRunner:
    """Run callables as supervised stages under an execution policy.

    Parameters
    ----------
    policy:
        The run-level :class:`ExecutionPolicy` (stage overrides apply
        per stage; ``fail_fast`` / ``max_failures`` always read from the
        run-level policy).
    faults:
        Optional :class:`~repro.robustness.faults.FaultInjector` whose
        scripted faults fire inside each stage — the chaos-testing hook.
    """

    def __init__(
        self,
        policy: ExecutionPolicy | None = None,
        faults=None,
    ):
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.faults = faults
        self.outcomes: list[StageOutcome] = []
        self._failures = 0

    # -- accounting ----------------------------------------------------------

    @property
    def failures(self) -> int:
        """Number of non-ok stages so far."""
        return self._failures

    @property
    def degradations(self) -> list[dict]:
        """JSON-able records of every non-ok stage, in run order."""
        return [o.to_dict() for o in self.outcomes if not o.ok]

    # -- execution -----------------------------------------------------------

    def run(self, stage: str, fn: Callable, *args, **kwargs) -> StageOutcome:
        """Execute ``fn`` as the named stage and record the outcome.

        Never raises the stage's own exception; raises only
        :class:`~repro.exceptions.DegradedRunError` when the run-level
        policy's failure budget (or fail-closed semantics) says the run
        must stop.
        """
        policy = self.policy.for_stage(stage)
        call = self.faults.wrap(stage, fn) if self.faults is not None else fn
        start = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                value = self._call(stage, call, args, kwargs, policy.deadline)
            except StageTimeoutError as exc:
                outcome = StageOutcome(
                    stage, "timeout",
                    error=str(exc),
                    error_type=type(exc).__name__,
                    attempts=attempts,
                    elapsed=time.perf_counter() - start,
                )
                break
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                if policy.is_retryable(exc) and attempts <= policy.max_retries:
                    policy.sleep(policy.backoff(attempts - 1))
                    continue
                if policy.is_retryable(exc) and policy.max_retries > 0:
                    exc = RetryExhaustedError(
                        f"stage {stage!r} still failing after {attempts} "
                        f"attempts: {exc}",
                        stage=stage, attempts=attempts, last_error=exc,
                    )
                outcome = StageOutcome(
                    stage, "error",
                    error=str(exc),
                    error_type=type(exc).__name__,
                    traceback=traceback_module.format_exc(),
                    attempts=attempts,
                    elapsed=time.perf_counter() - start,
                )
                break
            else:
                outcome = StageOutcome(
                    stage, "ok", value=value, attempts=attempts,
                    elapsed=time.perf_counter() - start,
                )
                break
        self.outcomes.append(outcome)
        if not outcome.ok:
            self._failures += 1
            self._enforce_budget(outcome)
        return outcome

    def _call(self, stage, fn, args, kwargs, deadline):
        """One attempt, under the stage deadline (if any)."""
        if deadline is None:
            return fn(*args, **kwargs)
        box: dict = {}
        done = threading.Event()

        def work():
            try:
                box["value"] = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 — relayed below
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(
            target=work, daemon=True, name=f"stage:{stage}"
        )
        worker.start()
        if not done.wait(deadline):
            raise StageTimeoutError(
                f"stage {stage!r} exceeded its {deadline:g}s deadline "
                "and was abandoned",
                stage=stage, deadline=deadline,
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _enforce_budget(self, outcome: StageOutcome) -> None:
        if self.policy.fail_fast:
            raise DegradedRunError(
                f"stage {outcome.stage!r} failed under fail-closed policy: "
                f"{outcome.error}",
                outcomes=self.degradations,
            )
        budget = self.policy.max_failures
        if budget is not None and self._failures > budget:
            raise DegradedRunError(
                f"failure budget exhausted: {self._failures} stages failed "
                f"(budget {budget}); last: {outcome.stage!r} — "
                f"{outcome.error}",
                outcomes=self.degradations,
            )
