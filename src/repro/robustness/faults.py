"""Deterministic fault injection for chaos-testing the execution engine.

A :class:`FaultInjector` is installed into a :class:`~repro.robustness.
runner.StageRunner` (or wrapped around any callable) and fires scripted
faults — exceptions, hangs, corrupted return values — at named stages.
Everything is counter-based and therefore fully deterministic: a fault
declared with ``times=2`` fires on exactly the first two calls of its
stage and never again, which is how the chaos suite asserts "transient
fault retried, then succeeds".

This module is shipped with the library (not buried in tests) so that
downstream deployments can chaos-test their own audit pipelines — the
guarantees only stay honest if they keep being exercised.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ValidationError

__all__ = ["Fault", "FaultInjector"]


@dataclass
class Fault:
    """One scripted fault bound to a stage name.

    ``kind`` is one of:

    * ``"error"`` — raise ``exception`` (a factory or an instance);
    * ``"hang"`` — block for ``hang_seconds`` (interruptible by the
      injector's :meth:`FaultInjector.release`), simulating a stuck
      stage so deadline enforcement can be exercised;
    * ``"corrupt"`` — pass the stage's return value through
      ``corruptor`` before the caller sees it.

    ``times`` bounds how many calls fire the fault (``None`` = every
    call).  ``after`` skips that many initial calls before the fault
    becomes active — "fail on the third subgroup", precisely.
    """

    stage: str
    kind: str = "error"
    exception: BaseException | Callable[[], BaseException] | None = None
    hang_seconds: float = 30.0
    corruptor: Callable | None = None
    times: int | None = 1
    after: int = 0
    calls: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)

    def __post_init__(self):
        if self.kind not in ("error", "hang", "corrupt"):
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; "
                "use 'error', 'hang', or 'corrupt'"
            )
        if self.kind == "error" and self.exception is None:
            raise ValidationError("error faults need an exception")
        if self.kind == "corrupt" and self.corruptor is None:
            raise ValidationError("corrupt faults need a corruptor")

    def should_fire(self) -> bool:
        if self.calls <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return True

    def make_exception(self) -> BaseException:
        exc = self.exception
        return exc() if callable(exc) else exc


class FaultInjector:
    """Registry of scripted faults, fired by stage name.

    Thread-safe; hangs wait on an internal event so a test teardown can
    :meth:`release` every pending hang instead of leaking sleeping
    threads.
    """

    def __init__(self):
        self._faults: list[Fault] = []
        self._lock = threading.Lock()
        self._release = threading.Event()

    # -- scripting -----------------------------------------------------------

    def inject_error(
        self, stage: str, exception, times: int | None = 1, after: int = 0
    ) -> Fault:
        """Raise ``exception`` on the next ``times`` calls of ``stage``."""
        return self._add(Fault(stage, "error", exception=exception,
                               times=times, after=after))

    def inject_hang(
        self,
        stage: str,
        seconds: float = 30.0,
        times: int | None = 1,
        after: int = 0,
    ) -> Fault:
        """Block ``stage`` for ``seconds`` (or until :meth:`release`)."""
        return self._add(Fault(stage, "hang", hang_seconds=seconds,
                               times=times, after=after))

    def inject_corruption(
        self, stage: str, corruptor, times: int | None = 1, after: int = 0
    ) -> Fault:
        """Mangle ``stage``'s return value through ``corruptor``."""
        return self._add(Fault(stage, "corrupt", corruptor=corruptor,
                               times=times, after=after))

    def _add(self, fault: Fault) -> Fault:
        with self._lock:
            self._faults.append(fault)
        return fault

    # -- firing --------------------------------------------------------------

    def _matching(self, stage: str) -> list[Fault]:
        # Snapshot under the lock: concurrent jobs share one injector, so
        # another thread may be scripting new faults while this one fires.
        prefix = stage.split(":", 1)[0]
        with self._lock:
            faults = list(self._faults)
        return [f for f in faults if f.stage in (stage, prefix)]

    def fire(self, stage: str) -> None:
        """Called at stage entry; raises or hangs per the script."""
        for fault in self._matching(stage):
            if fault.kind == "corrupt":
                continue
            with self._lock:
                fault.calls += 1
                fire = fault.should_fire()
                if fire:
                    fault.fired += 1
            if not fire:
                continue
            if fault.kind == "error":
                raise fault.make_exception()
            if fault.kind == "hang":
                self._release.wait(fault.hang_seconds)

    def transform(self, stage: str, value):
        """Called on stage success; corrupts the value per the script."""
        for fault in self._matching(stage):
            if fault.kind != "corrupt":
                continue
            with self._lock:
                fault.calls += 1
                fire = fault.should_fire()
                if fire:
                    fault.fired += 1
            if fire:
                value = fault.corruptor(value)
        return value

    def wrap(self, stage: str, fn: Callable) -> Callable:
        """A callable that fires this injector's faults around ``fn``."""

        def chaotic(*args, **kwargs):
            self.fire(stage)
            return self.transform(stage, fn(*args, **kwargs))

        return chaotic

    # -- bookkeeping ---------------------------------------------------------

    def release(self) -> None:
        """Unblock every pending and future hang (test teardown hook)."""
        self._release.set()

    def fired_count(self, stage: str | None = None) -> int:
        """Total faults fired, optionally restricted to one stage."""
        with self._lock:
            return sum(
                f.fired
                for f in self._faults
                if stage is None or f.stage == stage
            )
