"""Execution policies for supervised audit stages.

An :class:`ExecutionPolicy` declares how much failure a run tolerates
before it stops being evidence: per-stage wall-clock deadlines, retry
budgets for transient faults (a :class:`~repro.exceptions.ConvergenceError`
from a model fit or a resampling test is worth retrying; a
:class:`~repro.exceptions.SchemaError` is not), a run-wide failure
budget, and fail-open vs fail-closed semantics.

The paper's framing makes the stakes concrete: an audit destined for a
compliance dossier must either complete, or degrade *visibly* — a policy
is the machine-readable version of that requirement.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.exceptions import ConvergenceError, ValidationError

__all__ = ["ExecutionPolicy", "TRANSIENT_ERRORS"]

#: exception types retried by default — failures that can genuinely
#: succeed on a second attempt (iterative fits, resampling draws, I/O).
TRANSIENT_ERRORS: tuple = (ConvergenceError, OSError, TimeoutError)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How one stage (or a whole run) is supervised.

    Parameters
    ----------
    deadline:
        Per-stage wall-clock budget in seconds; ``None`` disables the
        deadline (and its worker-thread overhead) entirely.
    max_retries:
        Extra attempts granted to a stage that fails with one of
        ``retryable``.  ``0`` means a single attempt.
    backoff_base:
        Sleep before the first retry, in seconds; doubles (times
        ``backoff_factor``) on each subsequent retry, capped at
        ``backoff_cap``.
    retryable:
        Exception types considered transient.  Anything else fails the
        stage on first raise.
    backoff_jitter:
        Bounded decorrelation for concurrent retries.  ``0.0`` (the
        default) keeps the exact deterministic schedule; a fraction
        ``j`` in ``(0, 1]`` spreads each sleep uniformly over
        ``[d * (1 - j), d]`` where ``d`` is the deterministic duration —
        so N jobs retrying the same transient fault under one policy
        don't stampede the failing resource in lock-step.  The jittered
        sleep never exceeds the deterministic schedule (or the cap).
    rng:
        Injectable uniform ``[0, 1)`` source for the jitter (tests pin
        it to make jittered schedules reproducible).
    max_failures:
        Run-wide failure budget.  When more than this many stages fail,
        the supervising runner raises
        :class:`~repro.exceptions.DegradedRunError` instead of carrying
        on.  ``None`` disables the budget.
    fail_fast:
        Fail-closed semantics: the *first* stage failure aborts the run
        with :class:`~repro.exceptions.DegradedRunError`.  The default is
        fail-open — failures become recorded degradations and the run
        continues.
    sleep:
        Injectable sleep function (tests replace it to keep backoff
        instantaneous and deterministic).
    """

    deadline: float | None = None
    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.0
    rng: Callable[[], float] = field(default=random.random, repr=False)
    retryable: tuple = TRANSIENT_ERRORS
    max_failures: int | None = None
    fail_fast: bool = False
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    stage_overrides: Mapping[str, "ExecutionPolicy"] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self):
        if self.deadline is not None and self.deadline <= 0:
            raise ValidationError("deadline must be positive or None")
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.max_failures is not None and self.max_failures < 0:
            raise ValidationError("max_failures must be >= 0 or None")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValidationError(
                "backoff_base must be >= 0 and backoff_factor >= 1"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValidationError("backoff_jitter must be in [0, 1]")

    # -- derived -------------------------------------------------------------

    def for_stage(self, stage: str) -> "ExecutionPolicy":
        """Effective policy for a named stage.

        Overrides are matched on the stage name's prefix up to the first
        ``":"`` (``"audit:sex:equalized_odds"`` matches an ``"audit"``
        override) and then on the full name, most specific winning.
        """
        if not self.stage_overrides:
            return self
        prefix = stage.split(":", 1)[0]
        override = self.stage_overrides.get(stage) or self.stage_overrides.get(
            prefix
        )
        return self if override is None else override

    def backoff(self, retry_index: int) -> float:
        """Sleep duration before retry number ``retry_index`` (0-based).

        With ``backoff_jitter == 0`` this is the deterministic capped
        exponential schedule; otherwise each duration is drawn uniformly
        from ``[d * (1 - jitter), d]`` so concurrent retriers decorrelate
        without ever sleeping longer than the deterministic schedule.
        """
        duration = min(
            self.backoff_base * self.backoff_factor**retry_index,
            self.backoff_cap,
        )
        if self.backoff_jitter == 0.0:
            return duration
        low = duration * (1.0 - self.backoff_jitter)
        return low + (duration - low) * self.rng()

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, tuple(self.retryable))

    def with_overrides(self, **kwargs) -> "ExecutionPolicy":
        """A copy of this policy with fields replaced."""
        return replace(self, **kwargs)

    # -- presets -------------------------------------------------------------

    @classmethod
    def default(cls) -> "ExecutionPolicy":
        """Fail-open isolation, no deadline, no retries.

        The zero-overhead baseline: faults are isolated and reported but
        nothing is retried or timed.
        """
        return cls()

    @classmethod
    def resilient(
        cls, deadline: float | None = 30.0, max_retries: int = 2
    ) -> "ExecutionPolicy":
        """Retry transient faults, enforce a per-stage deadline."""
        return cls(deadline=deadline, max_retries=max_retries)

    @classmethod
    def strict(cls, deadline: float | None = None) -> "ExecutionPolicy":
        """Fail-closed: any stage failure aborts the whole run."""
        return cls(deadline=deadline, fail_fast=True)
