"""Concealment attack: hide a sensitive attribute from explainers.

Reproduces the qualitative result of Dimanov et al. (SafeAI@AAAI 2020),
cited by the paper's Section IV.E: retrain a classifier with an extra
penalty that drives the sensitive feature's contribution toward zero
while a fidelity term keeps the outputs (and hence accuracy *and bias*)
close to the original model's.  When proxies correlated with the
sensitive attribute exist, the retrained model routes its reliance
through them: explainers report the sensitive feature as unimportant,
yet the demographic-parity gap persists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    check_matrix_2d,
    check_nonnegative,
    check_positive_int,
)
from repro.exceptions import ValidationError
from repro.models.logistic import LogisticRegression, sigmoid

__all__ = ["ConcealedModel", "ConcealmentAttack"]


@dataclass(frozen=True)
class ConcealedModel:
    """The attack's output: the retrained model plus bookkeeping."""

    model: LogisticRegression
    original: LogisticRegression
    sensitive_indices: tuple
    fidelity: float  # agreement with the original model's predictions

    def sensitive_weight_share(self) -> float:
        """Share of |weight| mass on the sensitive columns after the attack."""
        weights = np.abs(self.model.coef_)
        total = weights.sum()
        if total == 0:
            return 0.0
        return float(weights[list(self.sensitive_indices)].sum() / total)


class ConcealmentAttack:
    """Adversarially retrain a logistic model to mask sensitive reliance.

    Parameters
    ----------
    suppression:
        Strength of the L2 penalty on the sensitive columns' weights.
        Large values force those weights to ≈ 0.
    distill:
        Weight of the fidelity term: the retrained model is fitted to the
        *original model's* probabilistic outputs (knowledge distillation),
        which is what preserves the biased behaviour.
    """

    def __init__(
        self,
        suppression: float = 50.0,
        distill: float = 1.0,
        learning_rate: float = 0.5,
        max_iter: int = 3000,
    ):
        self.suppression = check_nonnegative(suppression, "suppression")
        self.distill = check_nonnegative(distill, "distill")
        self.learning_rate = check_nonnegative(learning_rate, "learning_rate")
        self.max_iter = check_positive_int(max_iter, "max_iter")

    def run(
        self,
        original: LogisticRegression,
        X,
        sensitive_indices: list[int],
    ) -> ConcealedModel:
        """Execute the attack against a fitted model on training inputs X."""
        if not original.is_fitted:
            raise ValidationError("original model must be fitted")
        X = check_matrix_2d(X, "X")
        d = X.shape[1]
        if original.coef_ is None or len(original.coef_) != d:
            raise ValidationError(
                f"X has {d} columns but the model was fitted with "
                f"{len(original.coef_) if original.coef_ is not None else 0}"
            )
        sensitive_indices = sorted(set(int(i) for i in sensitive_indices))
        if not sensitive_indices:
            raise ValidationError("sensitive_indices must be non-empty")
        if min(sensitive_indices) < 0 or max(sensitive_indices) >= d:
            raise ValidationError(
                f"sensitive_indices must lie in [0, {d - 1}]"
            )

        targets = original.predict_proba(X)  # soft labels for distillation
        n = len(X)
        weights = original.coef_.copy()
        intercept = float(original.intercept_)
        mask = np.zeros(d)
        mask[sensitive_indices] = 1.0

        # The suppression penalty is applied as a proximal (implicit)
        # shrinkage step: w_s <- w_s / (1 + lr * suppression).  Unlike an
        # explicit gradient step this is stable for arbitrarily large
        # suppression strengths.
        shrink = 1.0 / (1.0 + self.learning_rate * self.suppression)
        for __ in range(self.max_iter):
            probs = sigmoid(X @ weights + intercept)
            error = self.distill * (probs - targets)
            grad_w = X.T @ error / n
            grad_b = float(error.sum() / n)
            previous = weights.copy()
            weights = weights - self.learning_rate * grad_w
            weights = np.where(mask > 0, weights * shrink, weights)
            intercept -= self.learning_rate * grad_b
            step = max(
                float(np.max(np.abs(weights - previous), initial=0.0)),
                abs(self.learning_rate * grad_b),
            )
            if step < 1e-8:
                break

        concealed = LogisticRegression()
        concealed.coef_ = weights
        concealed.intercept_ = intercept
        concealed._n_features = d
        concealed._fitted = True

        fidelity = float(
            np.mean(concealed.predict(X) == original.predict(X))
        )
        return ConcealedModel(
            model=concealed,
            original=original,
            sensitive_indices=tuple(sensitive_indices),
            fidelity=fidelity,
        )
