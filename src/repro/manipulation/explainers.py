"""Feature-importance explainers used as (foolable) fairness auditors.

Section IV.E of the paper cites Dimanov et al.: a model can be retrained
so that explainability methods report near-zero importance for the
sensitive attribute while its outputs remain biased.  These are the
explainers that get fooled; they are standard, correct implementations —
the attack exploits what they measure, not bugs.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro._validation import (
    check_binary_array,
    check_matrix_2d,
    check_positive_int,
    check_random_state,
    check_same_length,
)
from repro.exceptions import ValidationError
from repro.models.base import Classifier
from repro.models.logistic import LogisticRegression
from repro.models.metrics import accuracy

__all__ = [
    "coefficient_importance",
    "permutation_importance",
    "loco_importance",
    "normalize_importances",
]


def coefficient_importance(model: LogisticRegression) -> np.ndarray:
    """|weight| per feature of a fitted linear model (the simplest explainer)."""
    if not isinstance(model, LogisticRegression):
        raise ValidationError(
            "coefficient_importance requires a LogisticRegression"
        )
    model._check_fitted()
    return np.abs(model.coef_.copy())


def permutation_importance(
    model: Classifier,
    X,
    y,
    n_repeats: int = 5,
    random_state: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Mean accuracy drop when each feature column is shuffled."""
    X = check_matrix_2d(X, "X")
    y = check_binary_array(y, "y")
    check_same_length(("X", X), ("y", y))
    check_positive_int(n_repeats, "n_repeats")
    rng = check_random_state(random_state)

    baseline = accuracy(y, model.predict(X))
    importances = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        drops = np.empty(n_repeats)
        for r in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, j] = rng.permutation(shuffled[:, j])
            drops[r] = baseline - accuracy(y, model.predict(shuffled))
        importances[j] = drops.mean()
    return importances


def loco_importance(
    model_factory: Callable[[], Classifier],
    X_train,
    y_train,
    X_test,
    y_test,
) -> np.ndarray:
    """Leave-one-covariate-out: retrain without each feature, measure drop.

    The most expensive but least gameable of the three — still fooled by
    concealment when a proxy can replace the removed column.
    """
    X_train = check_matrix_2d(X_train, "X_train")
    X_test = check_matrix_2d(X_test, "X_test")
    y_train = check_binary_array(y_train, "y_train")
    y_test = check_binary_array(y_test, "y_test")

    base_model = model_factory()
    base_model.fit(X_train, y_train)
    baseline = accuracy(y_test, base_model.predict(X_test))

    importances = np.zeros(X_train.shape[1])
    for j in range(X_train.shape[1]):
        keep = [k for k in range(X_train.shape[1]) if k != j]
        reduced = model_factory()
        reduced.fit(X_train[:, keep], y_train)
        importances[j] = baseline - accuracy(
            y_test, reduced.predict(X_test[:, keep])
        )
    return importances


def normalize_importances(importances) -> np.ndarray:
    """Scale importances to sum to 1 (zero-safe), for cross-explainer
    comparison of *shares* of attributed importance."""
    importances = np.abs(np.asarray(importances, dtype=float))
    total = importances.sum()
    if total == 0:
        return np.zeros_like(importances)
    return importances / total
