"""Robustness to manipulation (paper Section IV.E)."""

from repro.manipulation.attack import ConcealedModel, ConcealmentAttack
from repro.manipulation.defense import (
    ManipulationReport,
    explainer_based_audit,
    manipulation_report,
    outcome_based_audit,
)
from repro.manipulation.explainers import (
    coefficient_importance,
    loco_importance,
    normalize_importances,
    permutation_importance,
)

__all__ = [
    "ConcealmentAttack",
    "ConcealedModel",
    "coefficient_importance",
    "permutation_importance",
    "loco_importance",
    "normalize_importances",
    "ManipulationReport",
    "explainer_based_audit",
    "outcome_based_audit",
    "manipulation_report",
]
