"""Defences against audit manipulation (paper Section IV.E).

Two audit strategies are compared:

* **explainer-based** — trust a feature-importance method: declare the
  model fair when the sensitive feature's importance share is small.
  This is the audit the concealment attack defeats.
* **outcome-based** — ignore the model's internals entirely and measure
  the disparity of its *outputs* (demographic parity / four-fifths).
  Concealment cannot move this number because preserving the outputs is
  the attack's own objective.

:func:`manipulation_report` runs both audits against a model and reports
whether their verdicts diverge — divergence being the manipulation
red flag the paper calls for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_probability
from repro.core.metrics import demographic_parity
from repro.manipulation.explainers import (
    coefficient_importance,
    normalize_importances,
)
from repro.models.logistic import LogisticRegression

__all__ = ["ManipulationReport", "explainer_based_audit", "outcome_based_audit", "manipulation_report"]


@dataclass(frozen=True)
class ManipulationReport:
    """Joint verdicts of the explainer-based and outcome-based audits."""

    explainer_share: float
    explainer_verdict_fair: bool
    outcome_gap: float
    outcome_verdict_fair: bool

    @property
    def verdicts_diverge(self) -> bool:
        """Explainer says fair but outcomes are biased — the attack signature."""
        return self.explainer_verdict_fair and not self.outcome_verdict_fair

    def summary(self) -> str:
        if self.verdicts_diverge:
            return (
                "MANIPULATION SUSPECTED: the explainer attributes only "
                f"{self.explainer_share:.1%} of importance to the sensitive "
                f"feature, yet the outcome gap is {self.outcome_gap:.3f}. "
                "Explanation-based audits are being evaded; trust the "
                "outcome audit (paper IV.E)."
            )
        if self.outcome_verdict_fair:
            return (
                "Both audits agree the model is fair on the measured "
                "criteria."
            )
        return (
            "Both audits agree the model is unfair; the sensitive "
            "reliance is visible to the explainer."
        )


def explainer_based_audit(
    model: LogisticRegression,
    sensitive_indices: list[int],
    importance_threshold: float = 0.05,
) -> tuple[float, bool]:
    """(sensitive importance share, fair-verdict) from coefficients."""
    check_probability(importance_threshold, "importance_threshold")
    shares = normalize_importances(coefficient_importance(model))
    share = float(shares[list(sensitive_indices)].sum())
    return share, share < importance_threshold


def outcome_based_audit(
    predictions,
    protected,
    tolerance: float = 0.05,
) -> tuple[float, bool]:
    """(demographic-parity gap, fair-verdict) from outputs alone."""
    result = demographic_parity(predictions, protected, tolerance=tolerance)
    return result.gap, result.satisfied


def manipulation_report(
    model: LogisticRegression,
    X,
    protected,
    sensitive_indices: list[int],
    importance_threshold: float = 0.05,
    gap_tolerance: float = 0.05,
) -> ManipulationReport:
    """Run both audits on one model and combine their verdicts."""
    share, explainer_fair = explainer_based_audit(
        model, sensitive_indices, importance_threshold
    )
    predictions = model.predict(np.asarray(X, dtype=float))
    gap, outcome_fair = outcome_based_audit(
        predictions, protected, tolerance=gap_tolerance
    )
    return ManipulationReport(
        explainer_share=share,
        explainer_verdict_fair=explainer_fair,
        outcome_gap=gap,
        outcome_verdict_fair=outcome_fair,
    )
